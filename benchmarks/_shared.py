"""Shared helpers for the figure-regeneration benchmarks.

Each ``test_fig*.py`` module regenerates one table or figure of the paper by
running the corresponding experiment cells through the harness and printing
the resulting series.  Cells are memoised here so that figures sharing runs
(e.g. Figure 5 and Figure 6 report time and sub-iso speedups of the *same*
experiments) only pay for them once per pytest session.
"""

from __future__ import annotations

import json
import platform
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Tuple

from repro.bench.harness import ExperimentResult, run_baseline, run_experiment
from repro.bench.scenarios import (
    bench_config,
    get_method,
    type_a_workload,
    type_b_workload,
)
from repro.methods.executor import QueryExecution

__all__ = [
    "workload_by_label",
    "experiment_cell",
    "baseline_for",
    "work_counters",
    "emit_bench_json",
    "WORKLOAD_LABELS",
]

#: The six workload groups used across the paper's figures.
WORKLOAD_LABELS = ("ZZ", "ZU", "UU", "0%", "20%", "50%")


def workload_by_label(dataset: str, label: str, alpha: float = 1.4):
    """Type A labels are 'ZZ'/'ZU'/'UU'; Type B labels are '0%'/'20%'/'50%'."""
    if label.endswith("%"):
        probability = float(label.rstrip("%")) / 100.0
        return type_b_workload(dataset, probability, alpha=alpha)
    return type_a_workload(dataset, label, alpha=alpha)


@lru_cache(maxsize=None)
def baseline_for(dataset: str, method_name: str, label: str, alpha: float = 1.4) -> Tuple[QueryExecution, ...]:
    """Memoised baseline run (plain Method M) for one dataset/method/workload."""
    method = get_method(dataset, method_name)
    workload = workload_by_label(dataset, label, alpha=alpha)
    config = bench_config()
    warmup = config.warmup_windows * config.window_size
    return tuple(run_baseline(method, workload, warmup_queries=warmup))


@lru_cache(maxsize=None)
def experiment_cell(
    dataset: str,
    method_name: str,
    label: str,
    policy: str = "hd",
    cache_capacity: int = 30,
    window_size: int = 10,
    admission_control: bool = False,
    alpha: float = 1.4,
    shards: int = 1,
    backend: str = "memory",
) -> ExperimentResult:
    """Memoised experiment cell: baseline vs GraphCache for one configuration.

    ``shards > 1`` runs the cell over a ShardedGraphCache (serial submission
    order, so counters stay deterministic); ``backend`` selects the storage
    backend — both produce distinct memo keys and distinct config labels.
    """
    method = get_method(dataset, method_name)
    workload = workload_by_label(dataset, label, alpha=alpha)
    config = bench_config(
        policy=policy,
        cache_capacity=cache_capacity,
        window_size=window_size,
        admission_control=admission_control,
        shards=shards,
        backend=backend,
    )
    return run_experiment(
        name=f"{dataset}/{method_name}/{label}",
        method=method,
        workload=workload,
        config=config,
        baseline_executions=baseline_for(dataset, method_name, label, alpha=alpha),
    )


def work_counters(cell: ExperimentResult) -> Dict[str, float]:
    """Deterministic work counters of one experiment cell.

    Figure *shape* checks should assert on these instead of wall-clock
    speedups: the counters are exact functions of the (seeded) workload and
    the cache configuration, so they are identical on every run and on every
    machine, while sub-second wall-clock ratios drown in scheduler noise.
    The wall-clock speedup tables stay in the printed output as the
    paper-facing (informational) figures.
    """
    runtime = cell.cache.runtime_statistics
    return {
        # Ratio of baseline to cached *sub-iso test counts* per query.
        "subiso_speedup": cell.subiso_speedup,
        # Dataset-graph sub-iso tests the cache did not have to run.
        "subiso_tests_alleviated": float(runtime.subiso_tests_alleviated),
        # Average per-query candidate-set reduction achieved by pruning.
        "candidate_reduction": (
            cell.speedups.baseline.avg_candidates - cell.speedups.cached.avg_candidates
        ),
        # GC-processor effort: real query-vs-query tests vs memoised verdicts.
        "containment_tests": float(runtime.containment_tests),
        "containment_memo_hits": float(runtime.containment_memo_hits),
    }


def emit_bench_json(name: str, payload: Dict[str, Any]) -> Path:
    """Write one ``BENCH_<name>.json`` artifact at the repository root.

    The artifact is the checked-in, machine-readable record of a benchmark
    run (the printed tables stay the human-facing output).  A small
    provenance block (python/platform) is added so a checked-in figure can
    be told apart from one regenerated on different hardware; measured
    wall-clock numbers inside ``payload`` are informational, while counter
    fields are exact and machine-independent.
    """
    root = Path(__file__).resolve().parent.parent
    target = root / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "provenance": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        **payload,
    }
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target
