"""Figure 4 — query-time speedups over CT-Index across replacement policies.

The paper's Figure 4 shows, for the AIDS and PDBS datasets and six workload
groups, the query-time speedup of GraphCache over CT-Index under each of the
five replacement policies (LRU, POP, PIN, PINC, HD).  The headline takeaway:
a GC-exclusive policy (PIN or PINC) always wins, and HD tracks the best.

This benchmark regenerates the same series at reproduction scale, using three
representative workload groups per dataset (ZZ, UU and the 20 % Type B mix)
to keep the suite's runtime reasonable.

The printed wall-clock speedup table is informational; the shape assertion
("HD tracks the best policy") runs on the deterministic sub-iso-test-count
speedups, which depend only on the seeded workload and each policy's caching
decisions — not on timing noise.
"""

from __future__ import annotations

from _shared import experiment_cell, work_counters
from repro.bench.reporting import print_figure

POLICIES = ("lru", "pop", "pin", "pinc", "hd")
WORKLOADS = ("ZZ", "UU", "20%")
DATASETS = ("aids", "pdbs")
METHOD = "ctindex"


def run_figure4():
    figures = {}
    counter_figures = {}
    for dataset in DATASETS:
        series = {policy.upper(): {} for policy in POLICIES}
        counter_series = {policy.upper(): {} for policy in POLICIES}
        for label in WORKLOADS:
            for policy in POLICIES:
                cell = experiment_cell(dataset, METHOD, label, policy=policy)
                series[policy.upper()][label] = cell.time_speedup
                counter_series[policy.upper()][label] = work_counters(cell)[
                    "subiso_speedup"
                ]
        figures[dataset] = series
        counter_figures[dataset] = counter_series
    return figures, counter_figures


def test_fig4_policy_speedups_over_ctindex(benchmark):
    figures, counter_figures = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    for dataset, series in figures.items():
        print_figure(
            "Figure 4",
            f"query-time speedup over CT-Index on {dataset.upper()} by replacement policy",
            series,
            note="paper shape: GC-exclusive policies (PIN/PINC) lead; HD is best or near-best",
        )
    for dataset, series in counter_figures.items():
        print_figure(
            "Figure 4 (work counters)",
            f"sub-iso-test speedup over CT-Index on {dataset.upper()} by replacement policy",
            series,
            note="deterministic shape check: HD within 25% of the best policy",
        )
    # Shape check: on every dataset/workload, HD must be within 25% of the
    # best policy (the paper's "always better or on par" claim), measured on
    # deterministic sub-iso test counts.
    for dataset, series in counter_figures.items():
        for label in WORKLOADS:
            best = max(series[p.upper()][label] for p in POLICIES)
            assert series["HD"][label] >= 0.75 * best, (dataset, label, series)
