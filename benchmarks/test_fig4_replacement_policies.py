"""Figure 4 — query-time speedups over CT-Index across replacement policies.

The paper's Figure 4 shows, for the AIDS and PDBS datasets and six workload
groups, the query-time speedup of GraphCache over CT-Index under each of the
five replacement policies (LRU, POP, PIN, PINC, HD).  The headline takeaway:
a GC-exclusive policy (PIN or PINC) always wins, and HD tracks the best.

This benchmark regenerates the same series at reproduction scale, using three
representative workload groups per dataset (ZZ, UU and the 20 % Type B mix)
to keep the suite's runtime reasonable.
"""

from __future__ import annotations

from _shared import experiment_cell

from repro.bench.reporting import print_figure

POLICIES = ("lru", "pop", "pin", "pinc", "hd")
WORKLOADS = ("ZZ", "UU", "20%")
DATASETS = ("aids", "pdbs")
METHOD = "ctindex"


def run_figure4():
    figures = {}
    for dataset in DATASETS:
        series = {policy.upper(): {} for policy in POLICIES}
        for label in WORKLOADS:
            for policy in POLICIES:
                cell = experiment_cell(dataset, METHOD, label, policy=policy)
                series[policy.upper()][label] = cell.time_speedup
        figures[dataset] = series
    return figures


def test_fig4_policy_speedups_over_ctindex(benchmark):
    figures = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    for dataset, series in figures.items():
        print_figure(
            "Figure 4",
            f"query-time speedup over CT-Index on {dataset.upper()} by replacement policy",
            series,
            note="paper shape: GC-exclusive policies (PIN/PINC) lead; HD is best or near-best",
        )
    # Shape check: on every dataset/workload, HD must be within 25% of the
    # best policy (the paper's "always better or on par" claim).
    for dataset, series in figures.items():
        for label in WORKLOADS:
            best = max(series[p.upper()][label] for p in POLICIES)
            assert series["HD"][label] >= 0.75 * best, (dataset, label, series)
