"""Figure 9 — cache admission control on the dense datasets (PCM, Synthetic).

The paper's Figure 9 compares GraphCache without ("C") and with ("C + AC")
the expensiveness-based admission control, against Grapes6, for Type B
workloads on the dense PCM and Synthetic datasets.  Panel (a) reports
query-time speedups, panel (b) the speedup in the number of sub-iso tests.

Paper shape: admission control raises the *time* speedup (expensive queries
are prioritised) even though the *sub-iso-count* speedup may drop.
"""

from __future__ import annotations

from _shared import experiment_cell
from repro.bench.reporting import print_figure

MIXES = ("0%", "20%", "50%")
DATASETS = ("pcm", "synthetic")
METHOD = "grapes6"
#: Smaller-than-default cache: pollution only shows when capacity is scarce.
CACHE_CAPACITY = 20


def run_figure9():
    cells = {}
    for dataset in DATASETS:
        for mix in MIXES:
            for admission in (False, True):
                cells[(dataset, mix, admission)] = experiment_cell(
                    dataset,
                    METHOD,
                    mix,
                    policy="hd",
                    cache_capacity=CACHE_CAPACITY,
                    admission_control=admission,
                )
    return cells


def test_fig9_admission_control(benchmark):
    cells = benchmark.pedantic(run_figure9, rounds=1, iterations=1)

    time_series = {}
    subiso_series = {}
    for dataset in DATASETS:
        for admission in (False, True):
            label = f"{dataset.upper()} {'C + AC' if admission else 'C'}"
            time_series[label] = {
                mix: cells[(dataset, mix, admission)].time_speedup for mix in MIXES
            }
            subiso_series[label] = {
                mix: cells[(dataset, mix, admission)].subiso_speedup for mix in MIXES
            }

    print_figure(
        "Figure 9(a)",
        "query-time speedup vs Grapes6, Type B workloads, admission control off/on",
        time_series,
        note="paper shape: C + AC ≥ C for query time on the dense datasets",
    )
    print_figure(
        "Figure 9(b)",
        "sub-iso-test speedup vs Grapes6, Type B workloads, admission control off/on",
        subiso_series,
        note="paper shape: the sub-iso-count speedup may drop when AC is enabled",
    )

    # Shape check: averaged over the workload mixes, admission control must
    # not hurt the time speedup materially.
    for dataset in DATASETS:
        base = sum(cells[(dataset, mix, False)].time_speedup for mix in MIXES) / len(MIXES)
        with_ac = sum(cells[(dataset, mix, True)].time_speedup for mix in MIXES) / len(MIXES)
        assert with_ac >= 0.85 * base, (dataset, base, with_ac)
