"""Replication benchmark: journal-fed read replicas + replay recovery.

Three cells around the PR-10 replication/recovery machinery, following the
repo convention (assertions on deterministic identities and counters; wall
clock printed and written to ``BENCH_replication.json`` for the humans):

1. **Replica identity grid** — on all 12 aids/pdbs × workload scenarios a
   primary runs the full cached workload with two thread-mode replicas
   attached; at *every* round boundary the replicas are synced and their
   per-shard digests (entries, statistics, window, serial counter, GCindex
   publication version) must equal the primary's byte for byte.  Lag
   statistics must read zero behind after the final sync.
2. **Recovery replay rate** — a checkpoint is taken mid-run, the rest of
   the run is "lost" in a crash, and :func:`recover_cache` replays the
   journal tail; the recovered digest must equal the digest captured at the
   last round boundary of the uninterrupted run (GCindex version excluded —
   a restore rebuilds once where the live run published per round).  The
   replayed-rounds-per-second figure is informational.
3. **Replica read fan-out QPS** — the same lookup stream served through
   round-robin replica sets of 1, 2 and 4 thread-mode followers vs the
   primary serving it directly.  Pure-Python threads share the GIL, so the
   QPS axis is informational (the process mode exists for real
   parallelism); the asserted part is answer identity on a sample.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

from _shared import WORKLOAD_LABELS, emit_bench_json, workload_by_label
from repro.bench.reporting import print_table
from repro.bench.scenarios import bench_config, get_method
from repro.core import recover_cache, save_cache
from repro.core.replication import ReplicaSet, cache_state_digest
from repro.core.sharding import build_cache

METHOD = "ctindex"
DATASETS = ("aids", "pdbs")
REPLICA_COUNTS = (1, 2, 4)
#: Lookups served per fan-out configuration in the QPS cell.
READ_REQUESTS = 60


def _journaled_config(tmp: str, **overrides):
    return replace(
        bench_config(**overrides),
        journal_path=str(Path(tmp) / "journal.jsonl"),
    )


# ---------------------------------------------------------------------- #
# Cell 1: replica identity on all 12 scenarios.
# ---------------------------------------------------------------------- #
def run_identity_grid() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for dataset in DATASETS:
        for label in WORKLOAD_LABELS:
            method = get_method(dataset, METHOD)
            workload = workload_by_label(dataset, label)
            with tempfile.TemporaryDirectory() as tmp:
                primary = build_cache(method, _journaled_config(tmp))
                boundaries_identical = 0
                rounds_seen = 0
                with ReplicaSet(primary, replicas=2) as replica_set:
                    for query in workload:
                        primary.query(query)
                        if primary.plan_journal.last_round == rounds_seen:
                            continue
                        rounds_seen = primary.plan_journal.last_round
                        replica_set.sync()
                        expected = replica_set.primary_digest()
                        if all(
                            digest == expected
                            for digest in replica_set.replica_digests()
                        ):
                            boundaries_identical += 1
                    replica_set.sync()
                    stats = replica_set.replication_statistics()
                primary.close()
            rows.append(
                {
                    "dataset": dataset,
                    "workload": label,
                    "rounds": rounds_seen,
                    "boundaries_identical": boundaries_identical,
                    "identical": boundaries_identical == rounds_seen > 0,
                    "max_rounds_behind": max(
                        entry["rounds_behind"] for entry in stats
                    ),
                    "bytes_shipped": stats[0]["bytes_shipped"],
                }
            )
    return rows


def test_replica_identity_grid(benchmark):
    rows = benchmark.pedantic(run_identity_grid, rounds=1, iterations=1)
    print_table(
        rows,
        title="Replica identity — 2 thread replicas, digest equality at "
        "every round boundary",
    )
    assert all(row["identical"] for row in rows), rows
    assert all(row["max_rounds_behind"] == 0 for row in rows), rows
    emit_bench_json(
        "replication",
        {
            "identity_grid": rows,
            "recovery": run_recovery_replay(),
            "read_fanout": run_read_fanout(),
        },
    )


# ---------------------------------------------------------------------- #
# Cell 2: recovery replay rate.
# ---------------------------------------------------------------------- #
def run_recovery_replay() -> Dict[str, object]:
    method = get_method("aids", METHOD)
    workload = workload_by_label("aids", "ZZ")
    with tempfile.TemporaryDirectory() as tmp:
        config = _journaled_config(tmp)
        checkpoint = Path(tmp) / "checkpoint.json"
        primary = build_cache(method, config)
        boundary_digest = None
        rounds_seen = 0
        for index, query in enumerate(workload):
            primary.query(query)
            if primary.plan_journal.last_round != rounds_seen:
                rounds_seen = primary.plan_journal.last_round
                boundary_digest = cache_state_digest(
                    primary, include_index_version=False
                )
            if index + 1 == len(workload) // 2:
                save_cache(primary, checkpoint)
        primary.close()

        started = time.perf_counter()
        recovered = recover_cache(checkpoint, method, journal=config.journal_path)
        elapsed = time.perf_counter() - started
        replayed = recovered.runtime_statistics.replay_rounds
        replayed_bytes = recovered.runtime_statistics.replay_bytes
        identical = (
            cache_state_digest(recovered, include_index_version=False)
            == boundary_digest
        )
        recovered.close()
    return {
        "rounds_total": rounds_seen,
        "rounds_replayed": replayed,
        "bytes_replayed": replayed_bytes,
        "recovered_identical": identical,
        "recover_time_s": round(elapsed, 6),
        "rounds_per_s": round(replayed / elapsed, 1) if elapsed else None,
    }


def test_recovery_replays_to_the_last_boundary(benchmark):
    row = benchmark.pedantic(run_recovery_replay, rounds=1, iterations=1)
    print_table([row], title="Crash recovery — journal replay past the checkpoint")
    assert row["recovered_identical"], row
    assert 0 < row["rounds_replayed"] <= row["rounds_total"], row
    assert row["bytes_replayed"] > 0, row


# ---------------------------------------------------------------------- #
# Cell 3: read fan-out QPS (informational).
# ---------------------------------------------------------------------- #
def run_read_fanout() -> List[Dict[str, object]]:
    method = get_method("aids", METHOD)
    workload = workload_by_label("aids", "ZZ")
    requests = list(workload)[:READ_REQUESTS]
    rows: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory() as tmp:
        primary = build_cache(method, _journaled_config(tmp))
        replica_sets = [
            ReplicaSet(primary, replicas=count) for count in REPLICA_COUNTS
        ]
        try:
            for query in workload:
                primary.query(query)
            started = time.perf_counter()
            baseline_answers = [primary.lookup(query) for query in requests]
            baseline_s = time.perf_counter() - started
            rows.append(
                {
                    "readers": "primary",
                    "requests": len(requests),
                    "wall_s": round(baseline_s, 4),
                    "qps": round(len(requests) / baseline_s, 1),
                    "answers_identical": True,
                }
            )
            for count, replica_set in zip(REPLICA_COUNTS, replica_sets):
                replica_set.sync()
                started = time.perf_counter()
                answers = [replica_set.lookup(query) for query in requests]
                elapsed = time.perf_counter() - started
                rows.append(
                    {
                        "readers": f"{count} replica(s)",
                        "requests": len(requests),
                        "wall_s": round(elapsed, 4),
                        "qps": round(len(requests) / elapsed, 1),
                        "answers_identical": answers == baseline_answers,
                    }
                )
        finally:
            for replica_set in replica_sets:
                replica_set.close()
            primary.close()
    return rows


def test_read_fanout_answers_are_identical(benchmark):
    rows = benchmark.pedantic(run_read_fanout, rounds=1, iterations=1)
    print_table(
        rows,
        title="Replica read fan-out — round-robin lookups vs the primary "
        "(QPS informational: thread mode shares the GIL)",
    )
    assert all(row["answers_identical"] for row in rows), rows
