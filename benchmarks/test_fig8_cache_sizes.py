"""Figure 8 — GraphCache speedups against GGSX for varying cache sizes.

The paper's Figure 8 shows query-time speedups over GGSX on AIDS and PDBS for
cache sizes c100/c300/c500 (window 20): bigger caches help, with diminishing
returns.  At reproduction scale the cache is c30/c90/c150 with window 10 —
the same 1×/3×/5× progression relative to the default.
"""

from __future__ import annotations

from _shared import experiment_cell

from repro.bench.reporting import print_figure

CACHE_SIZES = (30, 90, 150)
METHOD = "ggsx"
PANELS = {
    "AIDS / Type A": ("aids", ("ZZ", "ZU", "UU")),
    "AIDS / Type B": ("aids", ("0%", "20%", "50%")),
    "PDBS / Type A": ("pdbs", ("ZZ", "ZU", "UU")),
    "PDBS / Type B": ("pdbs", ("0%", "20%", "50%")),
}


def run_figure8():
    figures = {}
    for panel, (dataset, labels) in PANELS.items():
        series = {f"c{size}-b10": {} for size in CACHE_SIZES}
        for size in CACHE_SIZES:
            for label in labels:
                cell = experiment_cell(
                    dataset, METHOD, label, policy="hd", cache_capacity=size
                )
                series[f"c{size}-b10"][label] = cell.time_speedup
        figures[panel] = series
    return figures


def test_fig8_cache_size_sweep(benchmark):
    figures = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    for panel, series in figures.items():
        print_figure(
            "Figure 8",
            f"query-time speedup vs GGSX, varying cache size — {panel}",
            series,
            note="paper shape: larger caches improve performance (c500 ≥ c300 ≥ c100)",
        )
    # Shape check: the largest cache is never much worse than the smallest.
    for panel, series in figures.items():
        for label in series["c30-b10"]:
            assert series["c150-b10"][label] >= 0.8 * series["c30-b10"][label], (panel, label)
