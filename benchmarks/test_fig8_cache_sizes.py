"""Figure 8 — GraphCache speedups against GGSX for varying cache sizes.

The paper's Figure 8 shows query-time speedups over GGSX on AIDS and PDBS for
cache sizes c100/c300/c500 (window 20): bigger caches help, with diminishing
returns.  At reproduction scale the cache is c30/c90/c150 with window 10 —
the same 1×/3×/5× progression relative to the default.

The printed tables report the paper's wall-clock speedups (informational);
the *assertions* run on deterministic work counters (sub-iso tests alleviated
and candidate-set reductions), which encode the same "larger caches help"
shape without the measurement noise of sub-second timings.
"""

from __future__ import annotations

from _shared import experiment_cell, work_counters
from repro.bench.reporting import print_figure

CACHE_SIZES = (30, 90, 150)
METHOD = "ggsx"
PANELS = {
    "AIDS / Type A": ("aids", ("ZZ", "ZU", "UU")),
    "AIDS / Type B": ("aids", ("0%", "20%", "50%")),
    "PDBS / Type A": ("pdbs", ("ZZ", "ZU", "UU")),
    "PDBS / Type B": ("pdbs", ("0%", "20%", "50%")),
}


def run_figure8():
    figures = {}
    counters = {}
    for panel, (dataset, labels) in PANELS.items():
        series = {f"c{size}-b10": {} for size in CACHE_SIZES}
        counter_series = {size: {} for size in CACHE_SIZES}
        for size in CACHE_SIZES:
            for label in labels:
                cell = experiment_cell(
                    dataset, METHOD, label, policy="hd", cache_capacity=size
                )
                series[f"c{size}-b10"][label] = cell.time_speedup
                counter_series[size][label] = work_counters(cell)
        figures[panel] = series
        counters[panel] = counter_series
    return figures, counters


def test_fig8_cache_size_sweep(benchmark):
    figures, counters = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    for panel, series in figures.items():
        print_figure(
            "Figure 8",
            f"query-time speedup vs GGSX, varying cache size — {panel}",
            series,
            note="paper shape: larger caches improve performance (c500 ≥ c300 ≥ c100)",
        )
    for panel, counter_series in counters.items():
        print_figure(
            "Figure 8 (work counters)",
            f"sub-iso tests alleviated, varying cache size — {panel}",
            {
                f"c{size}-b10": {
                    label: cell["subiso_tests_alleviated"]
                    for label, cell in cells.items()
                }
                for size, cells in counter_series.items()
            },
            note="deterministic shape check: larger caches alleviate >= as many tests",
        )
    # Shape check on deterministic work counters: a larger cache must never
    # prune (much) less than the smallest one.  Counter values are exact
    # functions of the seeded workload, so these bounds cannot flake.
    for panel, counter_series in counters.items():
        for label in counter_series[CACHE_SIZES[0]]:
            small = counter_series[CACHE_SIZES[0]][label]
            large = counter_series[CACHE_SIZES[-1]][label]
            assert large["subiso_tests_alleviated"] >= 0.95 * small["subiso_tests_alleviated"], (
                panel,
                label,
                small,
                large,
            )
            assert large["subiso_speedup"] >= 0.95 * small["subiso_speedup"], (
                panel,
                label,
                small,
                large,
            )
