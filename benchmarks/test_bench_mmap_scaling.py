"""Packed storage scaling — zero-copy arena serving vs dict materialisation.

Five cells around the mmap arena backend (PRs: packed graph storage,
CSR-native matching):

1. **Build cost** — writing the bench workload into a sealed
   :class:`~repro.core.backends.arena.GraphArena` vs the same records into
   the sqlite store (informational wall clock; record counts asserted).
2. **Per-record decode** — the dict-materialising text codec
   (``CacheEntryCodec.decode``, the sqlite row format) vs the zero-copy
   ``PackedGraph.decode_graph`` route, plus the same comparison one level
   up at ``backend.get()`` granularity.
3. **Aggregate serving QPS at workers ∈ {1, 2, 4}** — ``k`` forked
   processes attach the sealed arena read-only and each serves its slice of
   the request stream through ``MmapBackend.get``; aggregate QPS is total
   requests over wall clock, fork and attach included.  The *single-process
   figure* is the same request stream served in-process through the
   dict-materialising sqlite route (the repo's durable backend before the
   arena existed).  On a single-core host the worker axis is flat by
   construction — the reported speedup is the zero-copy decode advantage,
   not parallelism — so the JSON records the host's CPU count next to the
   figures.
4. **Counter identity** — memory ≡ mmap on the full experiment pipeline,
   and sharded-memory ≡ multi-process-mmap runtime counters — with the
   pool run both in packed-match mode (zero-decode ``PackedGraphView``
   serving, ``decode_avoided`` pinned to the request count) and with
   ``packed_match="off"`` — on all 12 aids/pdbs scenario cells.
5. **Packed-match serve rate** — per-request ``get()`` + sub-iso match
   against the stored query, served CSR-native on memoised views vs
   decode-then-match through fresh ``Graph`` construction; the packed
   route must clear 1.5× on the same host.
6. **FTV index construction and serving** (PR: sealed shareable feature
   index) — CSR-native ``packed_path_features`` vs the decode-then-extract
   baseline over the bench payloads (the packed route must clear 2× in the
   same process), cold ``FeatureIndexArena.attach`` + content-hash
   handshake vs a full in-process index rebuild, and per-query filter rate
   through the in-process trie vs the sealed CSR postings — candidate sets
   asserted identical.
7. **FTV identity grid** — decoded-built vs CSR-native-built indexes for
   all three FTV methods on all 12 aids/pdbs scenarios: candidate sets per
   query, full-pipeline runtime counters, and zero ``Graph`` constructions
   while building over the packed dataset.

As established in PR 1, assertions run on deterministic counters and
round-trip equality only; wall-clock figures are printed and written to
``BENCH_mmap_scaling.json`` for the humans.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from functools import lru_cache
from typing import Dict, List, Tuple

from _shared import (
    WORKLOAD_LABELS,
    emit_bench_json,
    experiment_cell,
    work_counters,
    workload_by_label,
)
from repro.bench.reporting import format_table
from repro.bench.scenarios import bench_config, get_dataset, get_method
from repro.core import GraphCache, ProcessPoolCacheService, ShardedGraphCache
from repro.core.backends import create_backend
from repro.core.packed_dataset import PackedGraphDataset, seal_dataset
from repro.core.stores import CacheEntry, CacheEntryCodec
from repro.ftv.features import extract_label_paths, packed_path_features
from repro.ftv.ggsx import GraphGrepSX
from repro.ftv.index_arena import FeatureIndexArena, dataset_content_hash
from repro.graphs.graph import Graph, graph_constructions
from repro.graphs.packed import PackedGraph
from repro.isomorphism import matcher_by_name
from repro.methods import method_by_name

METHOD = "ggsx"
DATASETS = ("aids", "pdbs")
WORKER_COUNTS = (1, 2, 4)
IDENTITY_SHARDS = 2

#: Serving requests per storage configuration in the QPS cell — enough to
#: amortise fork+attach (~tens of ms) against sub-100µs per-request costs.
REQUESTS = 12000


def _runtime_counters(stats) -> Dict[str, int]:
    return {
        "queries_processed": stats.queries_processed,
        "cache_hits": stats.cache_hits,
        "exact_hits": stats.exact_hits,
        "subiso_tests": stats.subiso_tests,
        "subiso_tests_alleviated": stats.subiso_tests_alleviated,
        "containment_tests": stats.containment_tests,
        "containment_memo_hits": stats.containment_memo_hits,
    }


# ---------------------------------------------------------------------- #
# Cell 4: counter identity (memory ≡ mmap ≡ multi-process).
# ---------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def _identity_rows() -> Tuple[Dict[str, object], ...]:
    """One row per scenario: memory-vs-mmap cell counters and
    sharded-vs-multiprocess runtime counters."""
    rows: List[Dict[str, object]] = []
    for dataset in DATASETS:
        for label in WORKLOAD_LABELS:
            memory_cell = experiment_cell(dataset, METHOD, label)
            mmap_cell = experiment_cell(dataset, METHOD, label, backend="mmap")
            workload = workload_by_label(dataset, label)
            sharded = ShardedGraphCache(
                get_method(dataset, METHOD), bench_config(shards=IDENTITY_SHARDS)
            )
            for query in workload:
                sharded.query(query)
            sharded_counters = _runtime_counters(sharded.runtime_statistics)
            sharded.close()
            # Packed-match pool: the default "auto" resolves to zero-decode
            # PackedGraphView serving inside the forked workers.
            with ProcessPoolCacheService(
                get_method(dataset, METHOD),
                bench_config(shards=IDENTITY_SHARDS),
                workers=IDENTITY_SHARDS,
            ) as pool:
                packed_results = pool.run(list(workload))
                packed_stats = pool.runtime_statistics()
                pool_counters = _runtime_counters(packed_stats)
                packed_decode_avoided = packed_stats.decode_avoided
            with ProcessPoolCacheService(
                get_method(dataset, METHOD),
                bench_config(shards=IDENTITY_SHARDS).with_packed_match("off"),
                workers=IDENTITY_SHARDS,
            ) as pool:
                decode_results = pool.run(list(workload))
                pool_off_counters = _runtime_counters(pool.runtime_statistics())
            rows.append(
                {
                    "dataset": dataset,
                    "label": label,
                    "memory": work_counters(memory_cell),
                    "mmap": work_counters(mmap_cell),
                    "sharded": sharded_counters,
                    "multiprocess": pool_counters,
                    "multiprocess_decode": pool_off_counters,
                    "decode_avoided": packed_decode_avoided,
                    "requests": len(workload),
                    "answers_equal": [r.answer_ids for r in packed_results]
                    == [r.answer_ids for r in decode_results],
                }
            )
    return tuple(rows)


def test_mmap_counter_identity(benchmark):
    """memory ≡ mmap ≡ multi-process work counters on all 12 scenarios."""
    rows = benchmark.pedantic(_identity_rows, rounds=1, iterations=1)
    assert len(rows) == len(DATASETS) * len(WORKLOAD_LABELS)
    table_rows = []
    for row in rows:
        scenario = (row["dataset"], row["label"])
        assert row["memory"] == row["mmap"], scenario
        assert row["sharded"] == row["multiprocess"], scenario
        assert row["sharded"] == row["multiprocess_decode"], scenario
        assert row["answers_equal"], scenario
        # Zero Graph constructions in packed-match workers: every request
        # was served as a PackedGraphView.
        assert row["decode_avoided"] == row["requests"], scenario
        table_rows.append(
            {
                "scenario": f"{row['dataset']}/{row['label']}",
                "queries": row["sharded"]["queries_processed"],
                "hits": row["sharded"]["cache_hits"],
                "subiso": row["sharded"]["subiso_tests"],
                "decode_avoided": row["decode_avoided"],
                "mem≡mmap≡procs": "ok",
            }
        )
    print()
    print(format_table(table_rows))


# ---------------------------------------------------------------------- #
# Cells 1–3: build cost, decode cost, multi-worker serving QPS.
# ---------------------------------------------------------------------- #
def _bench_entries() -> List[CacheEntry]:
    """The scenario mix served by every storage configuration: the ZZ
    workloads of both datasets, one cache entry per query graph."""
    entries: List[CacheEntry] = []
    serial = 0
    for dataset in DATASETS:
        for query in workload_by_label(dataset, "ZZ"):
            serial += 1
            entries.append(CacheEntry(serial, query, frozenset({serial})))
    return entries


def _serve_arena(path: str, serials: List[int], done: "multiprocessing.Queue") -> None:
    """Worker body for the QPS cell (forked): attach the sealed arena
    read-only and serve one ``get`` per assigned request."""
    backend = create_backend("mmap", CacheEntryCodec(), path=path)
    served = 0
    order_sum = 0
    for serial in serials:
        entry = backend.get(serial)
        served += 1
        order_sum += entry.query.order
    backend.close()
    done.put((served, order_sum))


def _best_rate(fn, count: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return count / best


@lru_cache(maxsize=None)
def _storage_cells(tmp_root: str) -> Dict[str, object]:
    entries = _bench_entries()
    codec = CacheEntryCodec()
    records = [codec.encode(entry) for entry in entries]
    payloads = [entry.query.to_packed().to_bytes() for entry in entries]
    serials = [entry.serial for entry in entries]
    by_serial = {entry.serial: entry for entry in entries}

    # -- Cell 1: build cost (put every record, durable publish). ------- #
    sqlite_path = os.path.join(tmp_root, "store.db")
    arena_path = os.path.join(tmp_root, "store.arena")
    start = time.perf_counter()
    sqlite_backend = create_backend("sqlite", codec, path=sqlite_path)
    for entry in entries:
        sqlite_backend.put(entry.serial, entry)
    sqlite_build_s = time.perf_counter() - start
    start = time.perf_counter()
    mmap_backend = create_backend("mmap", codec, path=arena_path)
    for entry in entries:
        mmap_backend.put(entry.serial, entry)
    mmap_put_s = time.perf_counter() - start
    start = time.perf_counter()
    mmap_backend.seal()
    mmap_seal_s = time.perf_counter() - start
    assert sqlite_backend.count() == mmap_backend.count() == len(entries)
    mmap_backend.close()

    # -- Cell 2: per-record decode (codec level and backend level). ---- #
    expected_orders = sum(entry.query.order for entry in entries)
    for payload, entry in zip(payloads, entries):
        assert PackedGraph.decode_graph(payload) == entry.query
    dict_decode = _best_rate(
        lambda: [codec.decode(record) for record in records], len(records)
    )
    zero_copy_decode = _best_rate(
        lambda: [PackedGraph.decode_graph(payload) for payload in payloads],
        len(payloads),
    )
    attached = create_backend("mmap", codec, path=arena_path)
    sqlite_get = _best_rate(
        lambda: [sqlite_backend.get(serial) for serial in serials], len(serials)
    )
    mmap_get = _best_rate(
        lambda: [attached.get(serial) for serial in serials], len(serials)
    )
    assert all(attached.get(serial) == by_serial[serial] for serial in serials)
    attached.close()

    # -- Cell 5: packed-match serve rate vs decode-then-match. --------- #
    # Per request: fetch the stored entry and run one sub-iso match of a
    # small pattern against its query graph.  The decode route constructs a
    # fresh Graph (text-free CSR decode + bitmask core) every time; the
    # packed route matches CSR-native on the arena's memoised views, so
    # after the first touch per record the per-request decode cost is gone.
    pattern = Graph(labels=("C", "C"), edges=((0, 1),))
    matcher = matcher_by_name("vf2plus")
    match_stream = [serials[i % len(serials)] for i in range(REQUESTS)]
    decode_route = create_backend("mmap", codec, path=arena_path)
    packed_route = create_backend(
        "mmap", codec, path=arena_path, packed_views=True
    )
    for serial in serials:  # answer identity between the two routes
        assert (
            matcher.match(pattern, decode_route.get(serial).query).matched
            == matcher.match(pattern, packed_route.get(serial).query).matched
        )
    decode_then_match = _best_rate(
        lambda: [
            matcher.match(
                pattern, decode_route.get(serial).query, want_embedding=False
            )
            for serial in match_stream
        ],
        REQUESTS,
    )
    packed_match_rate = _best_rate(
        lambda: [
            matcher.match(
                pattern, packed_route.get(serial).query, want_embedding=False
            )
            for serial in match_stream
        ],
        REQUESTS,
    )
    decode_route.close()
    packed_route.close()

    # -- Cell 3: aggregate serving QPS, workers ∈ {1, 2, 4}. ----------- #
    request_stream = [serials[i % len(serials)] for i in range(REQUESTS)]
    start = time.perf_counter()
    for serial in request_stream:
        sqlite_backend.get(serial)
    single_process_qps = REQUESTS / (time.perf_counter() - start)
    sqlite_backend.close()

    context = multiprocessing.get_context("fork")
    worker_qps: Dict[int, float] = {}
    per_request_order = [by_serial[serial].query.order for serial in request_stream]
    for workers in WORKER_COUNTS:
        slices: List[List[int]] = [
            request_stream[w::workers] for w in range(workers)
        ]
        done: multiprocessing.Queue = context.Queue()
        start = time.perf_counter()
        processes = [
            context.Process(target=_serve_arena, args=(arena_path, part, done))
            for part in slices
        ]
        for process in processes:
            process.start()
        tallies = [done.get() for _ in processes]
        wall = time.perf_counter() - start
        for process in processes:
            process.join()
        assert sum(served for served, _ in tallies) == REQUESTS
        assert sum(orders for _, orders in tallies) == sum(per_request_order)
        worker_qps[workers] = REQUESTS / wall

    return {
        "build": {
            "records": len(entries),
            "sqlite_build_s": sqlite_build_s,
            "mmap_put_s": mmap_put_s,
            "mmap_seal_s": mmap_seal_s,
        },
        "decode": {
            "records": len(records),
            "dict_codec_per_s": dict_decode,
            "zero_copy_per_s": zero_copy_decode,
            "sqlite_get_per_s": sqlite_get,
            "mmap_get_per_s": mmap_get,
        },
        "qps": {
            "requests": REQUESTS,
            "single_process_dict_materializing": single_process_qps,
            "workers": {str(k): qps for k, qps in worker_qps.items()},
        },
        "packed_match": {
            "requests": REQUESTS,
            "decode_then_match_per_s": decode_then_match,
            "packed_match_per_s": packed_match_rate,
            "ratio_packed_vs_decode": packed_match_rate / decode_then_match,
        },
        "expected_orders": expected_orders,
    }


# ---------------------------------------------------------------------- #
# Cells 6–7: FTV index construction, sealed-index serving, identity grid.
# ---------------------------------------------------------------------- #
FTV_METHODS = ("ggsx", "grapes1", "ctindex")
FTV_PATH_LENGTH = 4


@lru_cache(maxsize=1)
def _ftv_root() -> str:
    """Shared scratch directory for the FTV cells (sealed segments)."""
    return tempfile.mkdtemp(prefix="bench_ftv_")


@lru_cache(maxsize=None)
def _ftv_packed_dataset(dataset: str) -> PackedGraphDataset:
    path = os.path.join(_ftv_root(), f"{dataset}.dataset.arena")
    if not os.path.exists(path):
        seal_dataset(get_dataset(dataset), path)
    return PackedGraphDataset.attach(path, name=get_dataset(dataset).name)


@lru_cache(maxsize=1)
def _ftv_index_cells() -> Dict[str, object]:
    """Build-rate, cold-attach-vs-rebuild, and filter-rate cells (aids)."""
    dataset = get_dataset("aids")
    payloads = [graph.to_packed().to_bytes() for graph in dataset]

    # -- Build rate: decode-then-extract vs CSR-native, same process. -- #
    for payload in payloads:  # Counter identity before any timing
        assert packed_path_features(
            PackedGraph.from_bytes(payload), FTV_PATH_LENGTH
        ) == extract_label_paths(
            PackedGraph.decode_graph(payload), FTV_PATH_LENGTH
        )
    # The two routes are timed interleaved (decoded, CSR, decoded, CSR, …)
    # so host-level noise — frequency scaling, a neighbour stealing the
    # core — hits both sides alike and the ratio stays fair.
    decoded_best = csr_best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for payload in payloads:
            extract_label_paths(PackedGraph.decode_graph(payload), FTV_PATH_LENGTH)
        decoded_best = min(decoded_best, time.perf_counter() - start)
        start = time.perf_counter()
        for payload in payloads:
            packed_path_features(PackedGraph.from_bytes(payload), FTV_PATH_LENGTH)
        csr_best = min(csr_best, time.perf_counter() - start)
    decoded_rate = len(payloads) / decoded_best
    csr_rate = len(payloads) / csr_best

    # -- Cold attach + handshake vs full in-process index rebuild. ----- #
    # A forked worker inherits the parent's built method, so the cold cost
    # it pays for a serving-ready filter is exactly attach + content-hash
    # handshake; a from-scratch process without the segment pays the full
    # CSR-native build instead.
    packed_ds = _ftv_packed_dataset("aids")
    index_path = os.path.join(_ftv_root(), "aids.ftv.arena")
    if not os.path.exists(index_path):
        GraphGrepSX(dataset).seal_feature_index(index_path)
    rebuild_start = time.perf_counter()
    trie_method = GraphGrepSX(packed_ds)
    rebuild_s = time.perf_counter() - rebuild_start
    attach_s = float("inf")
    expected_hash = dataset_content_hash(packed_ds)
    for _ in range(5):
        start = time.perf_counter()
        arena = FeatureIndexArena.attach(index_path)
        assert arena.dataset_hash == expected_hash
        attach_s = min(attach_s, time.perf_counter() - start)

    # -- Per-query filter rate: in-process trie vs sealed postings. ---- #
    attached_method = GraphGrepSX(packed_ds)
    assert attached_method.attach_feature_index(index_path) is True
    workload = list(workload_by_label("aids", "ZZ"))
    for query in workload:  # candidate identity before any timing
        assert trie_method.candidates(query) == attached_method.candidates(query)
    trie_filter_rate = _best_rate(
        lambda: [trie_method.candidates(query) for query in workload],
        len(workload),
    )
    index_filter_rate = _best_rate(
        lambda: [attached_method.candidates(query) for query in workload],
        len(workload),
    )

    return {
        "build_rate": {
            "graphs": len(payloads),
            "max_path_length": FTV_PATH_LENGTH,
            "decoded_graphs_per_s": decoded_rate,
            "csr_native_graphs_per_s": csr_rate,
            "ratio_csr_vs_decoded": csr_rate / decoded_rate,
        },
        "startup": {
            "rebuild_index_s": rebuild_s,
            "cold_attach_s": attach_s,
            "ratio_rebuild_vs_attach": rebuild_s / attach_s,
        },
        "filter_rate": {
            "queries": len(workload),
            "trie_queries_per_s": trie_filter_rate,
            "sealed_index_queries_per_s": index_filter_rate,
        },
    }


@lru_cache(maxsize=1)
def _ftv_identity_rows() -> Tuple[Dict[str, object], ...]:
    """One row per (dataset, method, label): decoded-built vs
    CSR-native-built index — candidate sets and pipeline counters."""
    rows: List[Dict[str, object]] = []
    for dataset_name in DATASETS:
        dataset = get_dataset(dataset_name)
        packed_ds = _ftv_packed_dataset(dataset_name)
        for method_name in FTV_METHODS:
            decoded_method = method_by_name(method_name, dataset)
            before = graph_constructions()
            packed_method = method_by_name(method_name, packed_ds)
            packed_build_constructions = graph_constructions() - before
            for label in WORKLOAD_LABELS:
                workload = workload_by_label(dataset_name, label)
                candidates_equal = all(
                    decoded_method.candidates(query)
                    == packed_method.candidates(query)
                    for query in workload
                )
                counters = []
                for method in (decoded_method, packed_method):
                    cache = GraphCache(method, bench_config())
                    for query in workload:
                        cache.query(query)
                    counters.append(_runtime_counters(cache.runtime_statistics))
                    cache.close()
                rows.append(
                    {
                        "dataset": dataset_name,
                        "method": method_name,
                        "label": label,
                        "candidates_equal": candidates_equal,
                        "decoded": counters[0],
                        "packed": counters[1],
                        "packed_build_constructions": packed_build_constructions,
                    }
                )
    return tuple(rows)


def test_ftv_index_build_attach_and_filter(benchmark):
    """CSR-native build ≥ 2× decoded; attach beats rebuild; filter identity."""
    cells = benchmark.pedantic(_ftv_index_cells, rounds=1, iterations=1)
    build, startup = cells["build_rate"], cells["startup"]
    filter_rate = cells["filter_rate"]
    # The acceptance bar of the CSR-native extraction rewrite: both routes
    # are measured back-to-back in this process, so the ratio is host-fair.
    assert build["ratio_csr_vs_decoded"] >= 2.0
    assert startup["cold_attach_s"] < startup["rebuild_index_s"]
    print()
    print(
        format_table(
            [
                {"ftv cell": "decode-then-extract build",
                 "rate": f"{build['decoded_graphs_per_s']:.0f} graphs/s"},
                {"ftv cell": "CSR-native build",
                 "rate": f"{build['csr_native_graphs_per_s']:.0f} graphs/s"},
                {"ftv cell": "CSR / decoded",
                 "rate": f"{build['ratio_csr_vs_decoded']:.2f}x"},
                {"ftv cell": "index rebuild startup",
                 "rate": f"{startup['rebuild_index_s'] * 1e3:.1f} ms"},
                {"ftv cell": "sealed-index cold attach",
                 "rate": f"{startup['cold_attach_s'] * 1e3:.1f} ms"},
                {"ftv cell": "trie filter",
                 "rate": f"{filter_rate['trie_queries_per_s']:.0f} queries/s"},
                {"ftv cell": "sealed-index filter",
                 "rate": f"{filter_rate['sealed_index_queries_per_s']:.0f} queries/s"},
            ]
        )
    )


def test_ftv_index_identity_grid(benchmark):
    """Decoded-built ≡ CSR-native-built on all scenarios × FTV methods."""
    rows = benchmark.pedantic(_ftv_identity_rows, rounds=1, iterations=1)
    assert len(rows) == len(DATASETS) * len(FTV_METHODS) * len(WORKLOAD_LABELS)
    table_rows = []
    for row in rows:
        scenario = (row["dataset"], row["method"], row["label"])
        assert row["candidates_equal"], scenario
        assert row["decoded"] == row["packed"], scenario
        # Decode-free startup: building over the packed dataset went through
        # the CSR-native extractors without materialising a single Graph.
        assert row["packed_build_constructions"] == 0, scenario
        table_rows.append(
            {
                "scenario": f"{row['dataset']}/{row['method']}/{row['label']}",
                "queries": row["decoded"]["queries_processed"],
                "subiso": row["decoded"]["subiso_tests"],
                "decoded≡csr": "ok",
            }
        )
    print()
    print(format_table(table_rows))


def test_mmap_build_decode_and_worker_scaling(benchmark, tmp_path):
    """Build/decode/QPS cells; writes ``BENCH_mmap_scaling.json``."""
    cells = benchmark.pedantic(
        _storage_cells, args=(str(tmp_path),), rounds=1, iterations=1
    )
    build, decode, qps = cells["build"], cells["decode"], cells["qps"]
    packed = cells["packed_match"]
    single = qps["single_process_dict_materializing"]
    ratio = qps["workers"]["4"] / single
    # Wall-clock figures are informational; the sanity floors pin that the
    # zero-copy route is not *slower* than materialising dicts and that
    # CSR-native matching clears its acceptance bar.
    assert decode["zero_copy_per_s"] > decode["dict_codec_per_s"]
    assert packed["ratio_packed_vs_decode"] >= 1.5
    if (os.cpu_count() or 1) > 1:
        assert ratio > 1.0
    else:
        # Single-core host: the worker axis is flat by construction, so the
        # ratio is informational only (recorded in the JSON either way).
        print(f"[1-core host] 4-worker/single-process ratio: {ratio:.2f}x")

    print()
    print(
        format_table(
            [
                {"cell": "sqlite build", "records": build["records"],
                 "seconds": f"{build['sqlite_build_s']:.3f}"},
                {"cell": "arena put", "records": build["records"],
                 "seconds": f"{build['mmap_put_s']:.3f}"},
                {"cell": "arena seal", "records": build["records"],
                 "seconds": f"{build['mmap_seal_s']:.3f}"},
            ]
        )
    )
    print(
        format_table(
            [
                {"decode route": "dict codec (text)",
                 "records/s": f"{decode['dict_codec_per_s']:.0f}"},
                {"decode route": "zero-copy packed",
                 "records/s": f"{decode['zero_copy_per_s']:.0f}"},
                {"decode route": "sqlite get()",
                 "records/s": f"{decode['sqlite_get_per_s']:.0f}"},
                {"decode route": "mmap get()",
                 "records/s": f"{decode['mmap_get_per_s']:.0f}"},
            ]
        )
    )
    print(
        format_table(
            [
                {"match route": "decode-then-match (fresh Graph)",
                 "requests/s": f"{packed['decode_then_match_per_s']:.0f}"},
                {"match route": "packed-match (CSR views)",
                 "requests/s": f"{packed['packed_match_per_s']:.0f}"},
                {"match route": "packed / decode",
                 "requests/s": f"{packed['ratio_packed_vs_decode']:.2f}x"},
            ]
        )
    )
    print(
        format_table(
            [{"serving configuration": "single-process dict (sqlite)",
              "aggregate qps": f"{single:.0f}"}]
            + [
                {"serving configuration": f"{k} worker(s), sealed arena",
                 "aggregate qps": f"{qps['workers'][str(k)]:.0f}"}
                for k in WORKER_COUNTS
            ]
            + [{"serving configuration": "4-worker / single-process",
                "aggregate qps": f"{ratio:.2f}x"}]
        )
    )

    identity = _identity_rows()
    ftv_cells = _ftv_index_cells()
    ftv_rows = _ftv_identity_rows()
    emit_bench_json(
        "mmap_scaling",
        {
            "cpu_count": os.cpu_count(),
            "method": METHOD,
            "scenario_mix": [f"{dataset}/ZZ" for dataset in DATASETS],
            "notes": (
                "single_process_dict_materializing serves the request stream "
                "through the sqlite text-codec route in-process; worker rows "
                "fork k processes that attach the sealed arena read-only. "
                "On a single-core host the worker axis is flat and the "
                "speedup is the zero-copy decode advantage."
            ),
            "build": build,
            "decode": decode,
            "qps": {
                **qps,
                "ratio_4workers_vs_single_process": ratio,
            },
            "packed_match": packed,
            "identity": {
                "scenarios": len(identity),
                "memory_eq_mmap": all(
                    row["memory"] == row["mmap"] for row in identity
                ),
                "sharded_eq_multiprocess": all(
                    row["sharded"] == row["multiprocess"] for row in identity
                ),
                "packed_eq_decode_pool": all(
                    row["multiprocess"] == row["multiprocess_decode"]
                    and row["answers_equal"]
                    for row in identity
                ),
                "decode_avoided_pinned": all(
                    row["decode_avoided"] == row["requests"]
                    for row in identity
                ),
            },
            "ftv_index": {
                **ftv_cells,
                "notes": (
                    "build/attach/filter rates are measured back-to-back in "
                    "one process (the host is timing-noisy across "
                    "processes); on a single-core host the sealed index "
                    "still removes per-worker rebuild work but adds no "
                    "parallel speedup."
                ),
                "identity_grid": {
                    "scenarios": len(ftv_rows),
                    "methods": list(FTV_METHODS),
                    "candidates_equal": all(
                        row["candidates_equal"] for row in ftv_rows
                    ),
                    "counters_equal": all(
                        row["decoded"] == row["packed"] for row in ftv_rows
                    ),
                    "packed_build_graph_constructions": sum(
                        row["packed_build_constructions"] for row in ftv_rows
                    ),
                },
            },
        },
    )
