"""Packed storage scaling — zero-copy arena serving vs dict materialisation.

Five cells around the mmap arena backend (PRs: packed graph storage,
CSR-native matching):

1. **Build cost** — writing the bench workload into a sealed
   :class:`~repro.core.backends.arena.GraphArena` vs the same records into
   the sqlite store (informational wall clock; record counts asserted).
2. **Per-record decode** — the dict-materialising text codec
   (``CacheEntryCodec.decode``, the sqlite row format) vs the zero-copy
   ``PackedGraph.decode_graph`` route, plus the same comparison one level
   up at ``backend.get()`` granularity.
3. **Aggregate serving QPS at workers ∈ {1, 2, 4}** — ``k`` forked
   processes attach the sealed arena read-only and each serves its slice of
   the request stream through ``MmapBackend.get``; aggregate QPS is total
   requests over wall clock, fork and attach included.  The *single-process
   figure* is the same request stream served in-process through the
   dict-materialising sqlite route (the repo's durable backend before the
   arena existed).  On a single-core host the worker axis is flat by
   construction — the reported speedup is the zero-copy decode advantage,
   not parallelism — so the JSON records the host's CPU count next to the
   figures.
4. **Counter identity** — memory ≡ mmap on the full experiment pipeline,
   and sharded-memory ≡ multi-process-mmap runtime counters — with the
   pool run both in packed-match mode (zero-decode ``PackedGraphView``
   serving, ``decode_avoided`` pinned to the request count) and with
   ``packed_match="off"`` — on all 12 aids/pdbs scenario cells.
5. **Packed-match serve rate** — per-request ``get()`` + sub-iso match
   against the stored query, served CSR-native on memoised views vs
   decode-then-match through fresh ``Graph`` construction; the packed
   route must clear 1.5× on the same host.

As established in PR 1, assertions run on deterministic counters and
round-trip equality only; wall-clock figures are printed and written to
``BENCH_mmap_scaling.json`` for the humans.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from functools import lru_cache
from typing import Dict, List, Tuple

from _shared import (
    WORKLOAD_LABELS,
    emit_bench_json,
    experiment_cell,
    work_counters,
    workload_by_label,
)
from repro.bench.reporting import format_table
from repro.bench.scenarios import bench_config, get_method
from repro.core import ProcessPoolCacheService, ShardedGraphCache
from repro.core.backends import create_backend
from repro.core.stores import CacheEntry, CacheEntryCodec
from repro.graphs.graph import Graph
from repro.graphs.packed import PackedGraph
from repro.isomorphism import matcher_by_name

METHOD = "ggsx"
DATASETS = ("aids", "pdbs")
WORKER_COUNTS = (1, 2, 4)
IDENTITY_SHARDS = 2

#: Serving requests per storage configuration in the QPS cell — enough to
#: amortise fork+attach (~tens of ms) against sub-100µs per-request costs.
REQUESTS = 12000


def _runtime_counters(stats) -> Dict[str, int]:
    return {
        "queries_processed": stats.queries_processed,
        "cache_hits": stats.cache_hits,
        "exact_hits": stats.exact_hits,
        "subiso_tests": stats.subiso_tests,
        "subiso_tests_alleviated": stats.subiso_tests_alleviated,
        "containment_tests": stats.containment_tests,
        "containment_memo_hits": stats.containment_memo_hits,
    }


# ---------------------------------------------------------------------- #
# Cell 4: counter identity (memory ≡ mmap ≡ multi-process).
# ---------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def _identity_rows() -> Tuple[Dict[str, object], ...]:
    """One row per scenario: memory-vs-mmap cell counters and
    sharded-vs-multiprocess runtime counters."""
    rows: List[Dict[str, object]] = []
    for dataset in DATASETS:
        for label in WORKLOAD_LABELS:
            memory_cell = experiment_cell(dataset, METHOD, label)
            mmap_cell = experiment_cell(dataset, METHOD, label, backend="mmap")
            workload = workload_by_label(dataset, label)
            sharded = ShardedGraphCache(
                get_method(dataset, METHOD), bench_config(shards=IDENTITY_SHARDS)
            )
            for query in workload:
                sharded.query(query)
            sharded_counters = _runtime_counters(sharded.runtime_statistics)
            sharded.close()
            # Packed-match pool: the default "auto" resolves to zero-decode
            # PackedGraphView serving inside the forked workers.
            with ProcessPoolCacheService(
                get_method(dataset, METHOD),
                bench_config(shards=IDENTITY_SHARDS),
                workers=IDENTITY_SHARDS,
            ) as pool:
                packed_results = pool.run(list(workload))
                packed_stats = pool.runtime_statistics()
                pool_counters = _runtime_counters(packed_stats)
                packed_decode_avoided = packed_stats.decode_avoided
            with ProcessPoolCacheService(
                get_method(dataset, METHOD),
                bench_config(shards=IDENTITY_SHARDS).with_packed_match("off"),
                workers=IDENTITY_SHARDS,
            ) as pool:
                decode_results = pool.run(list(workload))
                pool_off_counters = _runtime_counters(pool.runtime_statistics())
            rows.append(
                {
                    "dataset": dataset,
                    "label": label,
                    "memory": work_counters(memory_cell),
                    "mmap": work_counters(mmap_cell),
                    "sharded": sharded_counters,
                    "multiprocess": pool_counters,
                    "multiprocess_decode": pool_off_counters,
                    "decode_avoided": packed_decode_avoided,
                    "requests": len(workload),
                    "answers_equal": [r.answer_ids for r in packed_results]
                    == [r.answer_ids for r in decode_results],
                }
            )
    return tuple(rows)


def test_mmap_counter_identity(benchmark):
    """memory ≡ mmap ≡ multi-process work counters on all 12 scenarios."""
    rows = benchmark.pedantic(_identity_rows, rounds=1, iterations=1)
    assert len(rows) == len(DATASETS) * len(WORKLOAD_LABELS)
    table_rows = []
    for row in rows:
        scenario = (row["dataset"], row["label"])
        assert row["memory"] == row["mmap"], scenario
        assert row["sharded"] == row["multiprocess"], scenario
        assert row["sharded"] == row["multiprocess_decode"], scenario
        assert row["answers_equal"], scenario
        # Zero Graph constructions in packed-match workers: every request
        # was served as a PackedGraphView.
        assert row["decode_avoided"] == row["requests"], scenario
        table_rows.append(
            {
                "scenario": f"{row['dataset']}/{row['label']}",
                "queries": row["sharded"]["queries_processed"],
                "hits": row["sharded"]["cache_hits"],
                "subiso": row["sharded"]["subiso_tests"],
                "decode_avoided": row["decode_avoided"],
                "mem≡mmap≡procs": "ok",
            }
        )
    print()
    print(format_table(table_rows))


# ---------------------------------------------------------------------- #
# Cells 1–3: build cost, decode cost, multi-worker serving QPS.
# ---------------------------------------------------------------------- #
def _bench_entries() -> List[CacheEntry]:
    """The scenario mix served by every storage configuration: the ZZ
    workloads of both datasets, one cache entry per query graph."""
    entries: List[CacheEntry] = []
    serial = 0
    for dataset in DATASETS:
        for query in workload_by_label(dataset, "ZZ"):
            serial += 1
            entries.append(CacheEntry(serial, query, frozenset({serial})))
    return entries


def _serve_arena(path: str, serials: List[int], done: "multiprocessing.Queue") -> None:
    """Worker body for the QPS cell (forked): attach the sealed arena
    read-only and serve one ``get`` per assigned request."""
    backend = create_backend("mmap", CacheEntryCodec(), path=path)
    served = 0
    order_sum = 0
    for serial in serials:
        entry = backend.get(serial)
        served += 1
        order_sum += entry.query.order
    backend.close()
    done.put((served, order_sum))


def _best_rate(fn, count: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return count / best


@lru_cache(maxsize=None)
def _storage_cells(tmp_root: str) -> Dict[str, object]:
    entries = _bench_entries()
    codec = CacheEntryCodec()
    records = [codec.encode(entry) for entry in entries]
    payloads = [entry.query.to_packed().to_bytes() for entry in entries]
    serials = [entry.serial for entry in entries]
    by_serial = {entry.serial: entry for entry in entries}

    # -- Cell 1: build cost (put every record, durable publish). ------- #
    sqlite_path = os.path.join(tmp_root, "store.db")
    arena_path = os.path.join(tmp_root, "store.arena")
    start = time.perf_counter()
    sqlite_backend = create_backend("sqlite", codec, path=sqlite_path)
    for entry in entries:
        sqlite_backend.put(entry.serial, entry)
    sqlite_build_s = time.perf_counter() - start
    start = time.perf_counter()
    mmap_backend = create_backend("mmap", codec, path=arena_path)
    for entry in entries:
        mmap_backend.put(entry.serial, entry)
    mmap_put_s = time.perf_counter() - start
    start = time.perf_counter()
    mmap_backend.seal()
    mmap_seal_s = time.perf_counter() - start
    assert sqlite_backend.count() == mmap_backend.count() == len(entries)
    mmap_backend.close()

    # -- Cell 2: per-record decode (codec level and backend level). ---- #
    expected_orders = sum(entry.query.order for entry in entries)
    for payload, entry in zip(payloads, entries):
        assert PackedGraph.decode_graph(payload) == entry.query
    dict_decode = _best_rate(
        lambda: [codec.decode(record) for record in records], len(records)
    )
    zero_copy_decode = _best_rate(
        lambda: [PackedGraph.decode_graph(payload) for payload in payloads],
        len(payloads),
    )
    attached = create_backend("mmap", codec, path=arena_path)
    sqlite_get = _best_rate(
        lambda: [sqlite_backend.get(serial) for serial in serials], len(serials)
    )
    mmap_get = _best_rate(
        lambda: [attached.get(serial) for serial in serials], len(serials)
    )
    assert all(attached.get(serial) == by_serial[serial] for serial in serials)
    attached.close()

    # -- Cell 5: packed-match serve rate vs decode-then-match. --------- #
    # Per request: fetch the stored entry and run one sub-iso match of a
    # small pattern against its query graph.  The decode route constructs a
    # fresh Graph (text-free CSR decode + bitmask core) every time; the
    # packed route matches CSR-native on the arena's memoised views, so
    # after the first touch per record the per-request decode cost is gone.
    pattern = Graph(labels=("C", "C"), edges=((0, 1),))
    matcher = matcher_by_name("vf2plus")
    match_stream = [serials[i % len(serials)] for i in range(REQUESTS)]
    decode_route = create_backend("mmap", codec, path=arena_path)
    packed_route = create_backend(
        "mmap", codec, path=arena_path, packed_views=True
    )
    for serial in serials:  # answer identity between the two routes
        assert (
            matcher.match(pattern, decode_route.get(serial).query).matched
            == matcher.match(pattern, packed_route.get(serial).query).matched
        )
    decode_then_match = _best_rate(
        lambda: [
            matcher.match(
                pattern, decode_route.get(serial).query, want_embedding=False
            )
            for serial in match_stream
        ],
        REQUESTS,
    )
    packed_match_rate = _best_rate(
        lambda: [
            matcher.match(
                pattern, packed_route.get(serial).query, want_embedding=False
            )
            for serial in match_stream
        ],
        REQUESTS,
    )
    decode_route.close()
    packed_route.close()

    # -- Cell 3: aggregate serving QPS, workers ∈ {1, 2, 4}. ----------- #
    request_stream = [serials[i % len(serials)] for i in range(REQUESTS)]
    start = time.perf_counter()
    for serial in request_stream:
        sqlite_backend.get(serial)
    single_process_qps = REQUESTS / (time.perf_counter() - start)
    sqlite_backend.close()

    context = multiprocessing.get_context("fork")
    worker_qps: Dict[int, float] = {}
    per_request_order = [by_serial[serial].query.order for serial in request_stream]
    for workers in WORKER_COUNTS:
        slices: List[List[int]] = [
            request_stream[w::workers] for w in range(workers)
        ]
        done: multiprocessing.Queue = context.Queue()
        start = time.perf_counter()
        processes = [
            context.Process(target=_serve_arena, args=(arena_path, part, done))
            for part in slices
        ]
        for process in processes:
            process.start()
        tallies = [done.get() for _ in processes]
        wall = time.perf_counter() - start
        for process in processes:
            process.join()
        assert sum(served for served, _ in tallies) == REQUESTS
        assert sum(orders for _, orders in tallies) == sum(per_request_order)
        worker_qps[workers] = REQUESTS / wall

    return {
        "build": {
            "records": len(entries),
            "sqlite_build_s": sqlite_build_s,
            "mmap_put_s": mmap_put_s,
            "mmap_seal_s": mmap_seal_s,
        },
        "decode": {
            "records": len(records),
            "dict_codec_per_s": dict_decode,
            "zero_copy_per_s": zero_copy_decode,
            "sqlite_get_per_s": sqlite_get,
            "mmap_get_per_s": mmap_get,
        },
        "qps": {
            "requests": REQUESTS,
            "single_process_dict_materializing": single_process_qps,
            "workers": {str(k): qps for k, qps in worker_qps.items()},
        },
        "packed_match": {
            "requests": REQUESTS,
            "decode_then_match_per_s": decode_then_match,
            "packed_match_per_s": packed_match_rate,
            "ratio_packed_vs_decode": packed_match_rate / decode_then_match,
        },
        "expected_orders": expected_orders,
    }


def test_mmap_build_decode_and_worker_scaling(benchmark, tmp_path):
    """Build/decode/QPS cells; writes ``BENCH_mmap_scaling.json``."""
    cells = benchmark.pedantic(
        _storage_cells, args=(str(tmp_path),), rounds=1, iterations=1
    )
    build, decode, qps = cells["build"], cells["decode"], cells["qps"]
    packed = cells["packed_match"]
    single = qps["single_process_dict_materializing"]
    ratio = qps["workers"]["4"] / single
    # Wall-clock figures are informational; the sanity floors pin that the
    # zero-copy route is not *slower* than materialising dicts and that
    # CSR-native matching clears its acceptance bar.
    assert decode["zero_copy_per_s"] > decode["dict_codec_per_s"]
    assert packed["ratio_packed_vs_decode"] >= 1.5
    if (os.cpu_count() or 1) > 1:
        assert ratio > 1.0
    else:
        # Single-core host: the worker axis is flat by construction, so the
        # ratio is informational only (recorded in the JSON either way).
        print(f"[1-core host] 4-worker/single-process ratio: {ratio:.2f}x")

    print()
    print(
        format_table(
            [
                {"cell": "sqlite build", "records": build["records"],
                 "seconds": f"{build['sqlite_build_s']:.3f}"},
                {"cell": "arena put", "records": build["records"],
                 "seconds": f"{build['mmap_put_s']:.3f}"},
                {"cell": "arena seal", "records": build["records"],
                 "seconds": f"{build['mmap_seal_s']:.3f}"},
            ]
        )
    )
    print(
        format_table(
            [
                {"decode route": "dict codec (text)",
                 "records/s": f"{decode['dict_codec_per_s']:.0f}"},
                {"decode route": "zero-copy packed",
                 "records/s": f"{decode['zero_copy_per_s']:.0f}"},
                {"decode route": "sqlite get()",
                 "records/s": f"{decode['sqlite_get_per_s']:.0f}"},
                {"decode route": "mmap get()",
                 "records/s": f"{decode['mmap_get_per_s']:.0f}"},
            ]
        )
    )
    print(
        format_table(
            [
                {"match route": "decode-then-match (fresh Graph)",
                 "requests/s": f"{packed['decode_then_match_per_s']:.0f}"},
                {"match route": "packed-match (CSR views)",
                 "requests/s": f"{packed['packed_match_per_s']:.0f}"},
                {"match route": "packed / decode",
                 "requests/s": f"{packed['ratio_packed_vs_decode']:.2f}x"},
            ]
        )
    )
    print(
        format_table(
            [{"serving configuration": "single-process dict (sqlite)",
              "aggregate qps": f"{single:.0f}"}]
            + [
                {"serving configuration": f"{k} worker(s), sealed arena",
                 "aggregate qps": f"{qps['workers'][str(k)]:.0f}"}
                for k in WORKER_COUNTS
            ]
            + [{"serving configuration": "4-worker / single-process",
                "aggregate qps": f"{ratio:.2f}x"}]
        )
    )

    identity = _identity_rows()
    emit_bench_json(
        "mmap_scaling",
        {
            "cpu_count": os.cpu_count(),
            "method": METHOD,
            "scenario_mix": [f"{dataset}/ZZ" for dataset in DATASETS],
            "notes": (
                "single_process_dict_materializing serves the request stream "
                "through the sqlite text-codec route in-process; worker rows "
                "fork k processes that attach the sealed arena read-only. "
                "On a single-core host the worker axis is flat and the "
                "speedup is the zero-copy decode advantage."
            ),
            "build": build,
            "decode": decode,
            "qps": {
                **qps,
                "ratio_4workers_vs_single_process": ratio,
            },
            "packed_match": packed,
            "identity": {
                "scenarios": len(identity),
                "memory_eq_mmap": all(
                    row["memory"] == row["mmap"] for row in identity
                ),
                "sharded_eq_multiprocess": all(
                    row["sharded"] == row["multiprocess"] for row in identity
                ),
                "packed_eq_decode_pool": all(
                    row["multiprocess"] == row["multiprocess_decode"]
                    and row["answers_equal"]
                    for row in identity
                ),
                "decode_avoided_pinned": all(
                    row["decode_avoided"] == row["requests"]
                    for row in identity
                ),
            },
        },
    )
