"""Matcher-core microbenchmark: seconds per verified candidate.

Verification dominates every figure of the paper, so the per-candidate cost
of the sub-iso matcher is the single most important constant in the suite.
This benchmark measures it for the bitmask VF2+ core against a faithful
re-implementation of the seed's set-based candidate generation (kept here,
out of the library, precisely so the comparison survives the refactor), on
the same query-vs-dataset-graph pairs the figure benchmarks verify.

The asserted bound is the PR's acceptance criterion: the bitmask core must
spend at most half the seconds per verified candidate of the set-based core.
Both cores run in the same process on the same pairs, so the ratio is stable
even on noisy machines.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.bench.scenarios import get_dataset, type_a_workload
from repro.graphs.graph import Graph
from repro.isomorphism.base import SearchBudget
from repro.isomorphism.vf2_plus import VF2PlusMatcher


class _LegacySetVF2Plus(VF2PlusMatcher):
    """The seed's set-based VF2(+) search, verbatim, for A/B comparison."""

    name = "vf2plus-legacy-sets"

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        order = self._order(pattern, target)
        n = len(order)
        mapping: Dict[int, int] = {}
        used_targets: set = set()

        position_of = {vertex: pos for pos, vertex in enumerate(order)}
        mapped_neighbors: List[List[int]] = []
        for pos, vertex in enumerate(order):
            mapped_neighbors.append(
                [nb for nb in pattern.neighbors(vertex) if position_of[nb] < pos]
            )

        def candidates(pos: int) -> List[int]:
            vertex = order[pos]
            anchors = mapped_neighbors[pos]
            if anchors:
                sets = sorted(
                    (target.neighbors(mapping[a]) for a in anchors), key=len
                )
                result = set(sets[0])
                for other in sets[1:]:
                    result &= other
                    if not result:
                        break
                pool = result
            else:
                pool = range(target.order)
            label = pattern.label(vertex)
            degree = pattern.degree(vertex)
            return [
                t
                for t in pool
                if t not in used_targets
                and target.label(t) == label
                and target.degree(t) >= degree
            ]

        def feasible(vertex: int, candidate: int) -> bool:
            for neighbour in pattern.neighbors(vertex):
                image = mapping.get(neighbour)
                if image is not None and not target.has_edge(candidate, image):
                    return False
            unmapped_pattern = sum(
                1 for nb in pattern.neighbors(vertex) if nb not in mapping
            )
            unmapped_target = sum(
                1 for nb in target.neighbors(candidate) if nb not in used_targets
            )
            return unmapped_target >= unmapped_pattern

        def backtrack(pos: int) -> bool:
            if pos == n:
                return True
            vertex = order[pos]
            for candidate in candidates(pos):
                budget.tick()
                if not feasible(vertex, candidate):
                    continue
                mapping[vertex] = candidate
                used_targets.add(candidate)
                if backtrack(pos + 1):
                    return True
                del mapping[vertex]
                used_targets.discard(candidate)
            return False

        if backtrack(0):
            return dict(mapping)
        return None


def _verification_pairs(limit: int = 2000):
    """Query-vs-dataset-graph pairs as the figure benchmarks verify them.

    Workloads repeat query structures (Zipf skew) and always verify against
    the same dataset graphs, so pairs recur; the round-based measurement
    below reflects that access pattern.
    """
    dataset = get_dataset("aids")
    workload = type_a_workload("aids", "ZZ")
    pairs = []
    for query in workload:
        for graph in dataset:
            pairs.append((query, graph))
            if len(pairs) >= limit:
                return pairs
    return pairs


def _seconds_per_candidate(matcher, pairs, rounds: int = 3) -> float:
    started = time.perf_counter()
    matched = 0
    for _ in range(rounds):
        for pattern, target in pairs:
            matched += matcher.is_subgraph(pattern, target)
    elapsed = time.perf_counter() - started
    assert matched > 0, "degenerate pair set: nothing matched"
    return elapsed / (len(pairs) * rounds)


def test_bench_matcher_seconds_per_verified_candidate(benchmark):
    pairs = _verification_pairs()
    legacy = _LegacySetVF2Plus()
    bitmask = VF2PlusMatcher()

    # Verdict parity first: the two cores must agree on every pair.
    for pattern, target in pairs[:50]:
        assert legacy.is_subgraph(pattern, target) == bitmask.is_subgraph(pattern, target)

    # One untimed warm-up pass each (interpreter warm-up; also fills the
    # bitmask core's plan cache, as a real workload run would).
    _seconds_per_candidate(legacy, pairs, rounds=1)
    _seconds_per_candidate(bitmask, pairs, rounds=1)

    legacy_cost = _seconds_per_candidate(legacy, pairs)
    bitmask_cost = benchmark.pedantic(
        _seconds_per_candidate, args=(bitmask, pairs), rounds=1, iterations=1
    )
    ratio = legacy_cost / bitmask_cost
    print(
        f"\nseconds per verified candidate: legacy sets {legacy_cost * 1e6:.1f} us, "
        f"bitmask core {bitmask_cost * 1e6:.1f} us, ratio {ratio:.2f}x"
    )
    assert ratio >= 2.0, (
        f"bitmask core is only {ratio:.2f}x faster per verified candidate "
        f"(acceptance floor: 2.0x)"
    )
