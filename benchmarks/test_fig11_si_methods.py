"""Figure 11 — GraphCache speedups over direct SI methods (VF2+, GraphQL).

The paper's Figure 11 shows GraphCache's query-time speedups when Method M is
a plain subgraph-isomorphism algorithm with no index — VF2+ and GraphQL — on
the AIDS and PDBS datasets for the Type A workloads.  The point: GC is a new,
algorithm-agnostic way to expedite sub-iso testing itself.

Paper shape: clear speedups (>1) on every workload, larger for the skewed
ones; the UU column still benefits thanks to sub/supergraph (not just exact)
hits.
"""

from __future__ import annotations

from _shared import experiment_cell, work_counters
from repro.bench.reporting import print_figure

METHODS = ("vf2plus", "graphql")
DATASETS = ("aids", "pdbs")
WORKLOADS = ("ZZ", "ZU", "UU")


def run_figure11():
    series = {}
    counter_series = {}
    for dataset in DATASETS:
        for method in METHODS:
            key = f"{dataset.upper()} / {method}"
            cells = {
                label: experiment_cell(dataset, method, label, policy="hd")
                for label in WORKLOADS
            }
            series[key] = {label: cell.time_speedup for label, cell in cells.items()}
            counter_series[key] = {
                label: work_counters(cell)["subiso_speedup"]
                for label, cell in cells.items()
            }
    return series, counter_series


def test_fig11_si_method_speedups(benchmark):
    series, counter_series = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    print_figure(
        "Figure 11",
        "GraphCache query-time speedups over SI methods (Type A workloads)",
        series,
        note="paper shape: GC expedites plain SI algorithms on every workload",
    )
    print_figure(
        "Figure 11 (work counters)",
        "GraphCache sub-iso-test speedups over SI methods (Type A workloads)",
        counter_series,
        note="deterministic shape check: the skewed ZZ workload prunes the most",
    )
    # Shape check on deterministic test-count speedups: the skewed ZZ
    # workload gains at least as much as UU, and every ZZ speedup is above 1.
    for key, values in counter_series.items():
        assert values["ZZ"] >= 1.0, (key, values)
        assert values["ZZ"] >= 0.9 * values["UU"], (key, values)
