"""Figure 7 — speedups for Type B workloads on AIDS under varying Zipf skew.

The paper's Figure 7 shows GraphCache's query-time speedup for Type B
workloads (0 %, 20 %, 50 % no-answer queries) on the AIDS dataset, with the
query-popularity Zipf parameter set to 1.1, 1.4 and 1.7, for each FTV method.

Paper shape: the more skewed the distribution, the higher the gains
(α = 1.7 > 1.4 > 1.1), for every workload mix — caches feed on locality.
This benchmark reproduces the CT-Index and GGSX panels.
"""

from __future__ import annotations

from _shared import experiment_cell, work_counters
from repro.bench.reporting import print_figure

ALPHAS = (1.1, 1.4, 1.7)
MIXES = ("0%", "20%", "50%")
METHODS = ("ctindex", "ggsx")
DATASET = "aids"


def run_figure7():
    figures = {}
    counter_figures = {}
    for method in METHODS:
        series = {f"zipf {alpha}": {} for alpha in ALPHAS}
        counter_series = {f"zipf {alpha}": {} for alpha in ALPHAS}
        for alpha in ALPHAS:
            for mix in MIXES:
                cell = experiment_cell(DATASET, method, mix, policy="hd", alpha=alpha)
                series[f"zipf {alpha}"][mix] = cell.time_speedup
                counter_series[f"zipf {alpha}"][mix] = work_counters(cell)[
                    "subiso_speedup"
                ]
        figures[method] = series
        counter_figures[method] = counter_series
    return figures, counter_figures


def test_fig7_skew_sensitivity(benchmark):
    figures, counter_figures = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    for method, series in figures.items():
        print_figure(
            "Figure 7",
            f"query-time speedup vs Zipf skew, Type B workloads on AIDS, {method}",
            series,
            note="paper shape: higher skew → higher speedup; uniform-ish workloads still gain",
        )
    for method, series in counter_figures.items():
        print_figure(
            "Figure 7 (work counters)",
            f"sub-iso-test speedup vs Zipf skew, Type B workloads on AIDS, {method}",
            series,
            note="deterministic shape check: higher skew prunes at least as many tests",
        )
    # Shape check on deterministic test-count speedups: for each method and
    # mix, the most skewed workload must prune at least as well as the least
    # skewed one (within a small tolerance).
    for method, series in counter_figures.items():
        for mix in MIXES:
            assert series["zipf 1.7"][mix] >= 0.85 * series["zipf 1.1"][mix], (method, mix, series)
