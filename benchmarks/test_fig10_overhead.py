"""Figure 10 — per-query time and cache-maintenance overhead breakdown.

The paper's Figure 10 shows, for the 20 % Type B workload on AIDS and for
each of CT-Index, GGSX and Grapes6, the average query time of the plain
method, of GraphCache over it (for cache sizes c100/c300/c500), and the
average per-query cache-maintenance overhead (window/replacement/re-indexing
work, which runs off the query's critical path).

Paper shape: the overhead is a trivial fraction of the query time, and grows
mildly with the cache size while the query time shrinks.
"""

from __future__ import annotations

from _shared import experiment_cell
from repro.bench.reporting import print_table

METHODS = ("ctindex", "ggsx", "grapes6")
CACHE_SIZES = (30, 90, 150)
DATASET = "aids"
WORKLOAD = "20%"


def run_figure10():
    rows = []
    for method in METHODS:
        baseline_cell = experiment_cell(DATASET, method, WORKLOAD, policy="hd")
        rows.append(
            {
                "method": method,
                "config": "Method M (no cache)",
                "avg query ms": round(baseline_cell.speedups.baseline.avg_time_s * 1000, 3),
                "overhead ms": 0.0,
            }
        )
        for size in CACHE_SIZES:
            cell = experiment_cell(
                DATASET, method, WORKLOAD, policy="hd", cache_capacity=size
            )
            rows.append(
                {
                    "method": method,
                    "config": f"GC c{size}-b10",
                    "avg query ms": round(cell.speedups.cached.avg_time_s * 1000, 3),
                    "overhead ms": round(cell.speedups.cached.avg_maintenance_s * 1000, 3),
                }
            )
    return rows


def test_fig10_overhead_breakdown(benchmark):
    rows = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    print_table(
        rows,
        title="Figure 10 — average query time and cache-maintenance overhead "
        f"(20% Type B workload on AIDS)",
    )
    # Shape check: maintenance overhead stays below the average query time of
    # the plain method for every configuration (it is "trivial" in the paper).
    for method in METHODS:
        method_rows = [row for row in rows if row["method"] == method]
        baseline_ms = method_rows[0]["avg query ms"]
        for row in method_rows[1:]:
            assert row["overhead ms"] <= max(baseline_ms, 1.0) * 2.0, row
