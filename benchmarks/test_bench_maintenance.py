"""Maintenance-engine benchmark: O(window) deltas + heap-vs-oracle identity.

Two deterministic, counter-based claims about the unified maintenance
subsystem (ISSUE-4):

1. **O(window), not O(cache).**  A cache-update round performs a bounded
   number of GCindex mutations and storage-backend row operations —
   at most ``2 × window`` each (evict + admit) — and the bound does not
   move when the cache capacity grows 8×.  The seed rewrote the whole
   store (``replace_contents``) and rebuilt the whole index every round,
   so its per-round ops grew linearly with the cache.

2. **Incremental ≡ oracle.**  The utility heap's victim selection is
   identical to the full-snapshot re-scoring oracle on every maintenance
   round of all 12 aids/pdbs × workload scenarios (HD policy, which
   exercises the PIN/PINC delegates), and for all five paper policies on
   the aids/ZZ scenario.  The engine's ``cross_check`` mode runs both
   paths on every round and records any divergence.

Both claims are asserted on work counters, never wall-clock, per the repo
convention; the printed tables are informational.
"""

from __future__ import annotations

from _shared import WORKLOAD_LABELS, workload_by_label
from repro.bench.reporting import print_table
from repro.bench.scenarios import bench_config, get_method
from repro.core.sharding import build_cache

POLICIES = ("lru", "pop", "pin", "pinc", "hd")
WINDOW_SIZE = 10
SMALL_CAPACITY = 25
LARGE_CAPACITY = 200  # 8x the small configuration


def run_maintenance_rounds(dataset, label, policy="hd", cache_capacity=30,
                           backend="memory", cross_check=False):
    """Run one cached workload and return (cache, maintenance reports)."""
    method = get_method(dataset, "ctindex")
    workload = workload_by_label(dataset, label)
    config = bench_config(
        policy=policy,
        cache_capacity=cache_capacity,
        window_size=WINDOW_SIZE,
        backend=backend,
    )
    cache = build_cache(method, config)
    cache.maintenance_engine.cross_check = cross_check
    for query in workload:
        cache.query(query)
    reports = cache.window_manager.reports
    return cache, reports


def run_delta_scaling():
    """Per-round op ceilings for a small and an 8x-larger cache, per backend."""
    rows = []
    for backend in ("memory", "sqlite"):
        for capacity in (SMALL_CAPACITY, LARGE_CAPACITY):
            cache, reports = run_maintenance_rounds(
                "aids", "ZZ", cache_capacity=capacity, backend=backend
            )
            rows.append(
                {
                    "backend": backend,
                    "capacity": capacity,
                    "rounds": len(reports),
                    "max_index_ops": max(r.index_ops for r in reports),
                    "max_row_ops": max(r.backend_row_ops for r in reports),
                    "evictions": sum(len(r.evicted_serials) for r in reports),
                }
            )
            cache.close()
    return rows


def test_maintenance_deltas_are_o_window(benchmark):
    rows = benchmark.pedantic(run_delta_scaling, rounds=1, iterations=1)
    print_table(
        rows,
        title="Maintenance deltas — per-round op ceilings while the cache "
        f"grows {LARGE_CAPACITY // SMALL_CAPACITY}x (window = {WINDOW_SIZE})",
    )
    by_key = {(row["backend"], row["capacity"]): row for row in rows}
    for backend in ("memory", "sqlite"):
        small = by_key[(backend, SMALL_CAPACITY)]
        large = by_key[(backend, LARGE_CAPACITY)]
        for row in (small, large):
            # Each round admits <= window entries and evicts <= window
            # victims: 2*window index mutations / backend row ops, tops.
            assert row["max_index_ops"] <= 2 * WINDOW_SIZE, row
            assert row["max_row_ops"] <= 2 * WINDOW_SIZE, row
        # The ceiling is a function of the window, not the cache: growing
        # the cache 8x must not grow the per-round ops (the seed's rewrite
        # path scaled them with the capacity).
        assert large["max_index_ops"] <= small["max_index_ops"], (small, large)
        assert large["max_row_ops"] <= small["max_row_ops"], (small, large)
        # The small cache must actually have exercised eviction rounds.
        assert small["evictions"] > 0, small


def run_oracle_identity():
    """Cross-check every maintenance round of the 12 aids/pdbs scenarios."""
    rows = []
    for dataset in ("aids", "pdbs"):
        for label in WORKLOAD_LABELS:
            cache, reports = run_maintenance_rounds(
                dataset, label, policy="hd", cross_check=True
            )
            engines = (
                cache.maintenance_engines()
                if hasattr(cache, "maintenance_engines")
                else [cache.maintenance_engine]
            )
            mismatches = sum(len(e.oracle_mismatches) for e in engines)
            rows.append(
                {
                    "dataset": dataset,
                    "workload": label,
                    "policy": "hd",
                    "rounds": len(reports),
                    "eviction_rounds": sum(
                        1 for r in reports if r.evicted_serials
                    ),
                    "oracle_mismatches": mismatches,
                }
            )
            cache.close()
    for policy in POLICIES:
        cache, reports = run_maintenance_rounds(
            "aids", "ZZ", policy=policy, cross_check=True
        )
        rows.append(
            {
                "dataset": "aids",
                "workload": "ZZ",
                "policy": policy,
                "rounds": len(reports),
                "eviction_rounds": sum(1 for r in reports if r.evicted_serials),
                "oracle_mismatches": len(
                    cache.maintenance_engine.oracle_mismatches
                ),
            }
        )
        cache.close()
    return rows


def test_incremental_heap_matches_full_rescore_oracle(benchmark):
    rows = benchmark.pedantic(run_oracle_identity, rounds=1, iterations=1)
    print_table(
        rows,
        title="Incremental utility heap vs full-rescore oracle "
        "(12 aids/pdbs scenarios + all five policies on aids/ZZ)",
    )
    for row in rows:
        assert row["oracle_mismatches"] == 0, row
        # The identity claim is vacuous unless evictions actually happened.
        assert row["eviction_rounds"] > 0, row
