"""Figure 12 — GraphCache over a plain SI method pitched against a full FTV method.

The paper's Figure 12 asks: if both an FTV index and GraphCache work by
shrinking the candidate set, can GC on top of a *simple* SI method (VF2+)
replace a full-blown FTV method (CT-Index, which also verifies with VF2+)?
It reports the ratio of CT-Index's average query time to GC/VF2+'s average
query time on AIDS and PDBS, Type A workloads, for the default and the large
cache.

Paper shape: with the small cache GC/VF2+ is competitive (on par or better in
most cells); with the large cache it matches or outperforms CT-Index across
the board — for a fraction of the space and with no pre-processing.
"""

from __future__ import annotations

from _shared import experiment_cell
from repro.bench.reporting import print_figure

DATASETS = ("aids", "pdbs")
WORKLOADS = ("ZZ", "ZU", "UU")
CACHE_SIZES = (30, 150)


def run_figure12():
    series = {}
    subiso_series = {}
    sizes = {}
    for dataset in DATASETS:
        for cache_capacity in CACHE_SIZES:
            key = f"{dataset.upper()} c{cache_capacity}-b10"
            values = {}
            subiso_values = {}
            for label in WORKLOADS:
                gc_over_vf2 = experiment_cell(
                    dataset, "vf2plus", label, policy="hd", cache_capacity=cache_capacity
                )
                ctindex_alone = experiment_cell(dataset, "ctindex", label, policy="hd")
                values[label] = (
                    ctindex_alone.speedups.baseline.avg_time_s
                    / max(1e-12, gc_over_vf2.speedups.cached.avg_time_s)
                )
                # Deterministic twin of the wall-clock ratio: sub-iso tests
                # CT-Index alone runs per query vs sub-iso tests GC over
                # plain VF2+ still runs (both verify with VF2+).
                subiso_values[label] = (
                    ctindex_alone.speedups.baseline.avg_subiso_tests
                    / max(1e-12, gc_over_vf2.speedups.cached.avg_subiso_tests)
                )
                sizes[(dataset, cache_capacity)] = (
                    gc_over_vf2.cache.cache_size_bytes(),
                    ctindex_alone.cache.method.index_size_bytes(),
                )
            series[key] = values
            subiso_series[key] = subiso_values
    return series, subiso_series, sizes


def test_fig12_gc_vs_ctindex(benchmark):
    series, subiso_series, sizes = benchmark.pedantic(
        run_figure12, rounds=1, iterations=1
    )
    print_figure(
        "Figure 12",
        "GC over VF2+ vs CT-Index alone (ratio of CT-Index time to GC/VF2+ time)",
        series,
        note="values > 1 mean GraphCache over plain VF2+ beats the full FTV method",
    )
    for (dataset, cache_capacity), (gc_bytes, index_bytes) in sorted(sizes.items()):
        print(
            f"space: {dataset.upper()} c{cache_capacity} — GC ≈ {gc_bytes / 1024:.0f} KiB "
            f"vs CT-Index index ≈ {index_bytes / 1024:.0f} KiB"
        )
    # Shape check on deterministic work counters (the wall-clock ratio table
    # above is informational, per the repo convention — sub-second timing
    # ratios drown in scheduler noise): the larger cache alleviates at least
    # as many sub-iso tests, so its CT-Index-vs-GC test-count ratio is at
    # least as competitive as the small cache's.
    for dataset in DATASETS:
        small = subiso_series[f"{dataset.upper()} c30-b10"]
        large = subiso_series[f"{dataset.upper()} c150-b10"]
        mean_small = sum(small.values()) / len(small)
        mean_large = sum(large.values()) / len(large)
        assert mean_large >= mean_small, (dataset, small, large)
