"""Shard scaling — the sharded cache is work-counter-neutral and scales out.

Two deterministic invariants of :class:`~repro.core.sharding.ShardedGraphCache`
are asserted at benchmark scale (plus informational wall-clock tables):

1. **Counter identity at shards=1** — ``ShardedGraphCache(shards=1,
   backend="memory")`` produces byte-identical per-query results and work
   counters to the plain ``GraphCache`` on the bench scenarios (the routing
   layer adds zero work).
2. **Work-counter-neutral routing** — for ``shards > 1``, driving the shards
   concurrently (``query_many(jobs=N)``) leaves every per-shard counter
   identical to a serial loop over the same sharded cache, and no query is
   lost or double-counted (aggregate ``queries_processed`` equals the
   workload size).

As established in PR 1, assertions run on deterministic work counters only;
wall-clock numbers are printed for the humans.
"""

from __future__ import annotations

import time

from _shared import WORKLOAD_LABELS, experiment_cell, work_counters, workload_by_label
from repro.bench.reporting import format_table
from repro.bench.scenarios import bench_config, get_method
from repro.core import GraphCacheService, ShardedGraphCache

METHOD = "ggsx"
DATASETS = ("aids", "pdbs")
SHARD_COUNTS = (1, 2, 4)


def _result_fields(result):
    return (
        result.answer_ids,
        result.method_candidates,
        result.final_candidates,
        result.subiso_tests,
        result.containment_tests,
        result.shortcut,
    )


def _runtime_counters(cache):
    runtime = cache.runtime_statistics
    return {
        "queries_processed": runtime.queries_processed,
        "subiso_tests": runtime.subiso_tests,
        "subiso_tests_alleviated": runtime.subiso_tests_alleviated,
        "containment_tests": runtime.containment_tests,
        "containment_memo_hits": runtime.containment_memo_hits,
        "cache_hits": runtime.cache_hits,
    }


def test_shards1_counter_identical_to_plain_cache(benchmark):
    """ShardedGraphCache(shards=1, backend='memory') ≡ plain GraphCache."""

    def run():
        comparisons = []
        for dataset in DATASETS:
            for label in WORKLOAD_LABELS:
                plain_cell = experiment_cell(dataset, METHOD, label)
                workload = workload_by_label(dataset, label)
                sharded = ShardedGraphCache(
                    get_method(dataset, METHOD), bench_config(shards=1)
                )
                sharded_results = [sharded.query(query) for query in workload]
                comparisons.append(
                    (dataset, label, plain_cell, sharded, sharded_results)
                )
        return comparisons

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for dataset, label, plain_cell, sharded, sharded_results in comparisons:
        workload = workload_by_label(dataset, label)
        plain_cache = plain_cell.cache
        plain_results = plain_cache.results()
        assert len(plain_results) == len(workload) == len(sharded_results)
        for mine, theirs in zip(sharded_results, plain_results, strict=True):
            assert _result_fields(mine) == _result_fields(theirs), (dataset, label)
        assert _runtime_counters(sharded) == _runtime_counters(plain_cache), (
            dataset,
            label,
        )
        counters = work_counters(plain_cell)
        rows.append(
            {
                "scenario": f"{dataset}/{METHOD}/{label}",
                "queries": len(workload),
                "subiso_alleviated": int(counters["subiso_tests_alleviated"]),
                "containment_tests": int(counters["containment_tests"]),
                "identical": "yes",
            }
        )
    print()
    print("Shards=1 counter identity (sharded front end adds zero work):")
    print(format_table(rows))


def test_shard_scaling_microbenchmark(benchmark):
    """Routing is work-counter-neutral; concurrency only moves wall-clock."""
    dataset, label = "aids", "ZZ"
    workload = list(workload_by_label(dataset, label))

    def run():
        rows = []
        for shards in SHARD_COUNTS:
            config = bench_config(shards=shards)
            serial = ShardedGraphCache(get_method(dataset, METHOD), config)
            serial_results = [serial.query(query) for query in workload]

            concurrent = ShardedGraphCache(get_method(dataset, METHOD), config)
            started = time.perf_counter()
            concurrent_results = GraphCacheService(concurrent).query_many(
                workload, jobs=shards
            )
            elapsed = time.perf_counter() - started
            rows.append(
                (shards, serial, serial_results, concurrent, concurrent_results, elapsed)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for shards, serial, serial_results, concurrent, concurrent_results, elapsed in rows:
        # Work-counter-neutral routing: the concurrent drive of the shards
        # changes no per-query result and no per-shard counter.
        for mine, theirs in zip(concurrent_results, serial_results, strict=True):
            assert _result_fields(mine) == _result_fields(theirs), shards
        assert [
            _runtime_counters(shard) for shard in concurrent.shards
        ] == [_runtime_counters(shard) for shard in serial.shards], shards
        aggregate = concurrent.runtime_statistics
        assert aggregate.queries_processed == len(workload)
        per_shard = [s.queries_processed for s in concurrent.shard_statistics()]
        assert sum(per_shard) == len(workload)
        table.append(
            {
                "shards": shards,
                "jobs": shards,
                "queries": len(workload),
                "per_shard_queries": "/".join(str(n) for n in per_shard),
                "subiso_alleviated": aggregate.subiso_tests_alleviated,
                "wall_ms (informational)": round(elapsed * 1000.0, 1),
            }
        )
    print()
    print("Shard-scaling microbenchmark (counters exact, wall-clock informational):")
    print(format_table(table))


def test_sharded_scenario_rows(benchmark):
    """Sharded + sqlite experiment cells render as ordinary scenario rows."""

    def run():
        return [
            experiment_cell("aids", METHOD, "ZZ"),
            experiment_cell("aids", METHOD, "ZZ", shards=4),
            experiment_cell("aids", METHOD, "ZZ", backend="sqlite"),
        ]

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    plain, sharded, sqlite_cell = cells
    # The sqlite backend is a pure storage swap: counter-identical to memory.
    assert work_counters(sqlite_cell) == work_counters(plain)
    # The sharded cell answers every query identically (correctness is
    # cache-structure independent); its counters differ because each shard
    # prunes with its own cache contents.
    for mine, theirs in zip(sharded.cached_results, plain.cached_results, strict=True):
        assert mine.answer_ids == theirs.answer_ids
    rows = [cell.summary_row() for cell in cells]
    print()
    print("Scenario rows (config label carries -sN / -sqlite):")
    print(format_table(rows))
    labels = [row["config"] for row in rows]
    assert labels == ["c30-b10", "c30-b10-s4", "c30-b10-sqlite"]
