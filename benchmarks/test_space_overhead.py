"""Space-overhead ablation (§7.3 prose): GC's footprint vs FTV index sizes.

The paper reports that GraphCache achieves its speedups for a negligible
space overhead — for AIDS, just over 1 % of the space required by the FTV
indexes — and that enlarging the FTV feature size (the alternative way to buy
performance) roughly doubles index size for ≈10 % faster queries.

This benchmark measures (a) each FTV method's index size on the stand-in
datasets, (b) GraphCache's total data footprint after a workload, and (c) the
index-size cost of increasing GGSX's path length by one.
"""

from __future__ import annotations

from _shared import experiment_cell
from repro.bench.reporting import print_table
from repro.bench.scenarios import get_dataset, get_method
from repro.ftv import GraphGrepSX

DATASETS = ("aids", "pdbs")
METHODS = ("ctindex", "ggsx", "grapes1")


def run_space_report():
    rows = []
    for dataset in DATASETS:
        cell = experiment_cell(dataset, "ctindex", "ZZ", policy="hd")
        gc_bytes = cell.cache.cache_size_bytes()
        for method_name in METHODS:
            method = get_method(dataset, method_name)
            index_bytes = method.index_size_bytes()
            rows.append(
                {
                    "dataset": dataset.upper(),
                    "structure": f"{method_name} index",
                    "size KiB": round(index_bytes / 1024, 1),
                    "GC cache KiB": round(gc_bytes / 1024, 1),
                    "GC / index": f"{gc_bytes / max(1, index_bytes):.2%}",
                }
            )
    return rows


def run_feature_size_ablation():
    dataset = get_dataset("aids")
    rows = []
    for path_length in (3, 4, 5):
        method = GraphGrepSX(dataset, max_path_length=path_length)
        rows.append(
            {
                "GGSX max path length": path_length,
                "index size KiB": round(method.index_size_bytes() / 1024, 1),
                "build time s": round(method.build_time_s, 2),
            }
        )
    return rows


def test_space_overhead_vs_ftv_indexes(benchmark):
    rows = benchmark.pedantic(run_space_report, rounds=1, iterations=1)
    print_table(rows, title="Space overhead: GraphCache data vs FTV index sizes (§7.3)")
    # GC's footprint must stay well below the path-trie FTV indexes.
    for row in rows:
        if "ggsx" in row["structure"] or "grapes" in row["structure"]:
            assert row["GC cache KiB"] <= row["size KiB"], row


def test_ftv_feature_size_ablation(benchmark):
    rows = benchmark.pedantic(run_feature_size_ablation, rounds=1, iterations=1)
    print_table(rows, title="Ablation: enlarging GGSX features (longer paths) vs index size")
    sizes = [row["index size KiB"] for row in rows]
    assert sizes[0] < sizes[1] < sizes[2]
