"""Table 1 — running example of the cache replacement policies (§6.3).

Reproduces the paper's Table 1 exactly: six cached queries with the published
statistics, replacement invoked at serial 100 to evict two entries.  The
expected victims are those stated in the paper's §6.3 prose:
LRU → {13, 37}, POP → {11, 53}, PIN → {13, 91}, PINC → {53, 82},
HD → CoV(R) ≈ 0.65 < 1 → PINC's choice {53, 82}.
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.core.policies import policy_by_name, squared_coefficient_of_variation
from repro.core.statistics import CachedQueryStats

TABLE_1 = [
    CachedQueryStats(serial=11, hits=23, last_hit_serial=91, cs_reduction=170, cost_reduction=2600),
    CachedQueryStats(serial=13, hits=32, last_hit_serial=51, cs_reduction=80, cost_reduction=1200),
    CachedQueryStats(serial=37, hits=26, last_hit_serial=69, cs_reduction=76, cost_reduction=780),
    CachedQueryStats(serial=53, hits=13, last_hit_serial=78, cs_reduction=210, cost_reduction=360),
    CachedQueryStats(serial=82, hits=5, last_hit_serial=90, cs_reduction=120, cost_reduction=150),
    CachedQueryStats(serial=91, hits=4, last_hit_serial=95, cs_reduction=10, cost_reduction=270),
]
CURRENT_SERIAL = 100
PAPER_EVICTIONS = {
    "lru": {13, 37},
    "pop": {11, 53},
    "pin": {13, 91},
    "pinc": {53, 82},
    "hd": {53, 82},
}


def reproduce_table1():
    rows = []
    for name in ("lru", "pop", "pin", "pinc", "hd"):
        policy = policy_by_name(name)
        utilities = policy.utilities(TABLE_1, CURRENT_SERIAL)
        victims = set(policy.select_victims(TABLE_1, 2, CURRENT_SERIAL))
        rows.append(
            {
                "policy": name.upper(),
                "evicted (paper)": sorted(PAPER_EVICTIONS[name]),
                "evicted (measured)": sorted(victims),
                "match": "yes" if victims == PAPER_EVICTIONS[name] else "NO",
                "lowest utilities": ", ".join(
                    f"{serial}:{utilities[serial]:.3g}"
                    for serial in sorted(victims)
                ),
            }
        )
    return rows


def test_table1_replacement_policy_evictions(benchmark):
    rows = benchmark.pedantic(reproduce_table1, rounds=1, iterations=1)
    cov = squared_coefficient_of_variation([s.cs_reduction for s in TABLE_1]) ** 0.5
    print_table(rows, title="Table 1 — replacement policy running example (evict 2 at serial 100)")
    print(f"HD decision: CoV(R) = {cov:.2f} < 1  →  use PINC (as in the paper)")
    for row in rows:
        assert row["match"] == "yes", f"{row['policy']} diverges from the paper"
