"""Background-maintenance benchmark: off-the-query-path scheduling (ISSUE-5).

Three deterministic, counter-based claims about the maintenance scheduler
(no wall-clock assertions, per the repo convention — printed tables are
informational):

1. **barrier ≡ sync, byte for byte.**  Under ``barrier`` scheduling the
   rounds execute on the worker thread, yet the committing query waits — so
   on all 12 aids/pdbs × workload scenarios the plan journal is
   byte-identical to ``sync`` and the deterministic work counters
   (``subiso_tests_alleviated``, ``containment_tests``, per-round
   ``index_ops``/``backend_row_ops``) match exactly.

2. **Zero decide-phase ops on the query thread.**  In ``background`` (and
   ``barrier``) mode every round runs on the scheduler's worker: the
   scheduler counters record 0 inline rounds and the query thread's ident
   never appears among the decide-thread idents.

3. **Held-apply snapshot reads.**  With an apply parked mid-flight (store
   delta done, GCindex batch unpublished), lookups keep reading the
   previously published GCindex snapshot: the publication version is
   unchanged, the in-flight admissions are invisible, and answers are
   correct.
"""

from __future__ import annotations

import threading
from dataclasses import replace

from _shared import WORKLOAD_LABELS, workload_by_label
from repro.bench.reporting import print_table
from repro.bench.scenarios import bench_config, get_method
from repro.core.sharding import build_cache

WINDOW_SIZE = 10
CACHE_CAPACITY = 30


def run_scheduled(dataset, label, mode):
    """One cached workload under the given maintenance mode; fully drained."""
    method = get_method(dataset, "ctindex")
    workload = workload_by_label(dataset, label)
    config = replace(
        bench_config(cache_capacity=CACHE_CAPACITY, window_size=WINDOW_SIZE),
        maintenance_mode=mode,
    )
    cache = build_cache(method, config)
    for query in workload:
        cache.query(query)
    cache.drain_maintenance()
    return cache


def scenario_fingerprint(cache):
    """The deterministic counters the barrier ≡ sync identity pins."""
    runtime = cache.runtime_statistics
    reports = cache.window_manager.reports
    return {
        "subiso_tests_alleviated": runtime.subiso_tests_alleviated,
        "containment_tests": runtime.containment_tests,
        "rounds": len(reports),
        "index_ops": sum(r.index_ops for r in reports),
        "backend_row_ops": sum(r.backend_row_ops for r in reports),
    }


def run_barrier_vs_sync():
    rows = []
    for dataset in ("aids", "pdbs"):
        for label in WORKLOAD_LABELS:
            sync_cache = run_scheduled(dataset, label, "sync")
            barrier_cache = run_scheduled(dataset, label, "barrier")
            sync_counters = scenario_fingerprint(sync_cache)
            barrier_counters = scenario_fingerprint(barrier_cache)
            rows.append(
                {
                    "dataset": dataset,
                    "workload": label,
                    "rounds": sync_counters["rounds"],
                    "index_ops": sync_counters["index_ops"],
                    "row_ops": sync_counters["backend_row_ops"],
                    "alleviated": sync_counters["subiso_tests_alleviated"],
                    "counters_equal": sync_counters == barrier_counters,
                    "journal_equal": (
                        sync_cache.plan_journal.dumps()
                        == barrier_cache.plan_journal.dumps()
                    ),
                    "journal_rounds": len(sync_cache.plan_journal),
                }
            )
            sync_cache.close()
            barrier_cache.close()
    return rows


def test_barrier_scheduling_matches_sync_byte_for_byte(benchmark):
    rows = benchmark.pedantic(run_barrier_vs_sync, rounds=1, iterations=1)
    print_table(
        rows,
        title="Maintenance scheduling — barrier (worker-thread rounds) vs "
        "sync plan-journal/counter identity on all 12 scenarios",
    )
    for row in rows:
        assert row["counters_equal"], row
        assert row["journal_equal"], row
        # The identity claim is vacuous without actual rounds.
        assert row["rounds"] > 0, row
        assert row["journal_rounds"] == row["rounds"], row


def run_background_thread_accounting():
    method = get_method("aids", "ctindex")
    workload = workload_by_label("aids", "ZZ")
    rows = []
    for mode in ("background", "barrier"):
        config = replace(
            bench_config(cache_capacity=CACHE_CAPACITY, window_size=WINDOW_SIZE),
            maintenance_mode=mode,
        )
        cache = build_cache(method, config)
        query_thread = threading.get_ident()
        for query in workload:
            cache.query(query)
        cache.drain_maintenance()
        counters = cache.maintenance_scheduler.counters
        rows.append(
            {
                "mode": mode,
                "queries": len(workload),
                "rounds": counters.rounds,
                "inline_rounds": counters.inline_rounds,
                "worker_rounds": counters.worker_rounds,
                "query_thread_decided": query_thread
                in counters.decide_thread_idents,
                "expected_rounds": len(workload) // WINDOW_SIZE,
            }
        )
        cache.close()
    return rows


def test_zero_decide_phase_ops_on_the_query_thread(benchmark):
    rows = benchmark.pedantic(run_background_thread_accounting, rounds=1, iterations=1)
    print_table(
        rows,
        title="Scheduler thread accounting — every decide/apply round runs "
        "on the worker, never on the query thread",
    )
    for row in rows:
        assert row["rounds"] == row["expected_rounds"], row
        assert row["inline_rounds"] == 0, row
        assert row["worker_rounds"] == row["rounds"], row
        assert row["query_thread_decided"] is False, row


def run_held_apply_snapshot_reads():
    method = get_method("aids", "ctindex")
    workload = list(workload_by_label("aids", "ZZ"))
    config = replace(
        bench_config(cache_capacity=CACHE_CAPACITY, window_size=WINDOW_SIZE),
        maintenance_mode="background",
    )
    cache = build_cache(method, config)
    index = cache.pipeline.stages[1].processors.index

    held = threading.Event()
    release = threading.Event()
    held_plans = []

    def hold_first_apply(plan):
        if not held_plans:
            held_plans.append(plan)
            held.set()
            assert release.wait(timeout=60), "benchmark did not release the apply"

    cache.maintenance_engine.apply_hold_hook = hold_first_apply
    feed = iter(workload)
    try:
        while not held.is_set():
            cache.query(next(feed))
        version_held = index.version
        plan = held_plans[0]
        admissions_invisible = all(
            serial not in index.serials() for serial in plan.admitted_serials
        )
        # Queries served while the apply is held: answered, and from the
        # previously published snapshot (version never moves).
        served_mid_apply = 0
        versions = set()
        for query in list(feed)[:3 * WINDOW_SIZE]:
            versions.add(index.version)
            cache.query(query)
            served_mid_apply += 1
        version_still_held = index.version
    finally:
        release.set()
        cache.maintenance_engine.apply_hold_hook = None
    cache.drain_maintenance()
    row = {
        "served_mid_apply": served_mid_apply,
        "admissions_invisible": admissions_invisible,
        "version_during_hold": version_held,
        "versions_read": sorted(versions),
        "version_after_hold": version_still_held,
        "version_after_drain": index.version,
        "rounds": cache.maintenance_scheduler.counters.rounds,
    }
    cache.close()
    return [row]


def test_lookups_during_held_apply_read_previous_snapshot(benchmark):
    rows = benchmark.pedantic(run_held_apply_snapshot_reads, rounds=1, iterations=1)
    print_table(
        rows,
        title="Held apply — lookups keep reading the previously published "
        "GCindex snapshot",
    )
    (row,) = rows
    assert row["served_mid_apply"] > 0, row
    assert row["admissions_invisible"], row
    assert row["versions_read"] == [row["version_during_hold"]], row
    assert row["version_after_hold"] == row["version_during_hold"], row
    assert row["version_after_drain"] > row["version_during_hold"], row
    assert row["rounds"] > 0, row
