"""Figures 5 & 6 — GraphCache speedups on PDBS across all FTV methods.

Figure 5 reports the query-time speedup and Figure 6 the speedup in the
number of sub-iso tests, for GraphCache (HD policy, default cache) over each
bundled FTV method — CT-Index, GGSX, Grapes1, Grapes6 — across the six
workload groups on the PDBS dataset.  Both figures come from the same
experiment runs, so they share memoised cells here.

Paper shape: every speedup is >= 1; reductions in sub-iso tests do not
translate one-to-one into time reductions (Figure 5 vs Figure 6).
"""

from __future__ import annotations

from _shared import WORKLOAD_LABELS, experiment_cell
from repro.bench.reporting import print_figure

METHODS = ("ctindex", "ggsx", "grapes1", "grapes6")
DATASET = "pdbs"


def run_cells():
    cells = {}
    for method in METHODS:
        for label in WORKLOAD_LABELS:
            cells[(method, label)] = experiment_cell(DATASET, method, label, policy="hd")
    return cells


def test_fig5_query_time_speedups(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    series = {
        method: {label: cells[(method, label)].time_speedup for label in WORKLOAD_LABELS}
        for method in METHODS
    }
    print_figure(
        "Figure 5",
        "GraphCache query-time speedup on PDBS across FTV methods (HD policy)",
        series,
        note="paper values range 1.6x-42x on the full-size dataset; see EXPERIMENTS.md",
    )
    assert all(value > 0 for values in series.values() for value in values.values())


def test_fig6_subiso_count_speedups(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    series = {
        method: {label: cells[(method, label)].subiso_speedup for label in WORKLOAD_LABELS}
        for method in METHODS
    }
    print_figure(
        "Figure 6",
        "GraphCache sub-iso-test speedup on PDBS across FTV methods (HD policy)",
        series,
        note="the cache can only remove sub-iso tests, so every value is >= 1",
    )
    for method in METHODS:
        for label in WORKLOAD_LABELS:
            assert series[method][label] >= 1.0
