"""Pytest configuration for the benchmark suite.

The benchmarks live outside the unit-test tree and are meant to be run as::

    pytest benchmarks/ --benchmark-only

Each benchmark uses ``benchmark.pedantic(..., rounds=1)`` — the experiments
inside are full workload runs (seconds each), so statistical repetition is
neither needed nor affordable; the regenerated figure tables printed on
stdout are the primary output.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent

# Make the sibling ``_shared`` helper importable regardless of rootdir.
sys.path.insert(0, str(_BENCH_DIR))


def pytest_collection_modifyitems(items):
    """Mark everything under ``benchmarks/`` with the ``bench`` marker.

    The fast tier (CI, local unit feedback) deselects the figure benchmarks
    with ``-m "not bench"`` without having to know the directory layout.
    """
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)
