"""Pytest configuration for the benchmark suite.

The benchmarks live outside the unit-test tree and are meant to be run as::

    pytest benchmarks/ --benchmark-only

Each benchmark uses ``benchmark.pedantic(..., rounds=1)`` — the experiments
inside are full workload runs (seconds each), so statistical repetition is
neither needed nor affordable; the regenerated figure tables printed on
stdout are the primary output.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling ``_shared`` helper importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
