"""Command-line interface (``graphcache`` / ``python -m repro.cli``)."""

from .main import build_parser, main

__all__ = ["build_parser", "main"]
