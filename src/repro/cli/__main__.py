"""Allow ``python -m repro.cli``."""

import sys

from .main import main

sys.exit(main())
