"""Command-line interface for the GraphCache reproduction.

The CLI exposes the workflows a downstream user needs most often without
writing Python:

* ``graphcache info`` — list bundled datasets, methods, matchers and policies;
* ``graphcache dataset`` — generate a stand-in dataset, print its statistics,
  optionally save it in transaction format;
* ``graphcache workload`` — generate a Type A or Type B workload from a
  dataset and save it;
* ``graphcache run`` — run one experiment (plain Method M vs GraphCache) and
  print the speedup report (``--jobs N`` prefetches Method M filtering on N
  threads through the batched service facade);
* ``graphcache batch`` — push a workload through ``GraphCacheService.
  query_many`` and print the per-stage pipeline breakdown and work counters;
* ``graphcache policies`` — compare the five replacement policies on one
  configuration (a one-command miniature of the paper's Figure 4);
* ``graphcache maintenance`` — inspect per-round maintenance decisions: run
  an experiment and print every round's ``MaintenanceReport`` (counts, policy
  rationale, admitted/evicted serials), or decode an append-only plan-journal
  file written by ``--journal-path``.

Every command accepts ``--seed`` so results are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..bench.harness import run_baseline, run_experiment
from ..bench.metrics import (
    aggregate_baseline,
    aggregate_cached,
    aggregate_stage_times,
    speedup,
)
from ..bench.reporting import format_table
from ..core.backends import AVAILABLE_BACKENDS
from ..core.config import GraphCacheConfig
from ..exceptions import CacheError
from ..core.pipeline import STAGE_NAMES
from ..core.policies import (
    SCHEDULER_MODES,
    MaintenancePlan,
    PlanJournal,
    available_admission_controllers,
    available_policies,
)
from ..core.replication import ReplicaSet
from ..core.service import GraphCacheService
from ..core.sharding import build_cache
from ..core.workers import ProcessPoolCacheService
from ..graphs.generators import DATASET_FACTORIES, dataset_by_name
from ..graphs.io import save_dataset
from ..isomorphism.registry import available_matchers
from ..methods.registry import available_methods, method_by_name
from ..workloads.io import load_workload, save_workload
from ..workloads.type_a import SMALL_DATASET_QUERY_SIZES, TypeAWorkloadGenerator
from ..workloads.type_b import QueryPools, TypeBWorkloadGenerator

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="graphcache",
        description="GraphCache (EDBT 2017) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # info ------------------------------------------------------------------ #
    subparsers.add_parser("info", help="list bundled datasets, methods, matchers and policies")

    # dataset --------------------------------------------------------------- #
    dataset = subparsers.add_parser("dataset", help="generate a stand-in dataset")
    dataset.add_argument("name", choices=sorted(DATASET_FACTORIES), help="dataset family")
    dataset.add_argument("--scale", type=float, default=1.0, help="size multiplier (default 1.0)")
    dataset.add_argument("--seed", type=int, default=None, help="generation seed")
    dataset.add_argument("--output", type=Path, default=None, help="save in transaction format")

    # workload --------------------------------------------------------------- #
    workload = subparsers.add_parser("workload", help="generate a query workload")
    workload.add_argument("dataset", choices=sorted(DATASET_FACTORIES), help="dataset family")
    workload.add_argument("--scale", type=float, default=1.0, help="dataset size multiplier")
    workload.add_argument("--kind", choices=["ZZ", "ZU", "UU", "B"], default="ZZ",
                          help="Type A category or 'B' for a Type B workload")
    workload.add_argument("--queries", type=int, default=200, help="number of queries")
    workload.add_argument("--sizes", type=int, nargs="+", default=list(SMALL_DATASET_QUERY_SIZES),
                          help="query sizes in edges")
    workload.add_argument("--alpha", type=float, default=1.4, help="Zipf skew parameter")
    workload.add_argument("--no-answer", type=float, default=0.2,
                          help="Type B only: probability of a no-answer query")
    workload.add_argument("--seed", type=int, default=0, help="generation seed")
    workload.add_argument("--output", type=Path, required=True, help="output file (.queries)")

    # run --------------------------------------------------------------------- #
    run = subparsers.add_parser("run", help="run one experiment (Method M vs GraphCache)")
    _add_experiment_arguments(run)
    run.add_argument("--policy", choices=available_policies(), default="hd",
                     help="cache replacement policy")
    run.add_argument("--jobs", type=int, default=1,
                     help="threads prefetching Method M filtering (answers and "
                          "work counters are identical to --jobs 1, except "
                          "under --admission-control, whose threshold "
                          "calibrates on measured wall-clock times)")

    # batch -------------------------------------------------------------------- #
    batch = subparsers.add_parser(
        "batch",
        help="answer a workload through the batched GraphCacheService facade "
             "and print the per-stage pipeline breakdown",
    )
    _add_experiment_arguments(batch)
    batch.add_argument("--policy", choices=available_policies(), default="hd",
                       help="cache replacement policy")
    batch.add_argument("--jobs", type=int, default=4,
                       help="threads prefetching Method M filtering")
    batch.add_argument("--parallel-stages", action="store_true",
                       help="also run Mfilter concurrently with the GC "
                            "processors inside each query (Figure 2)")
    batch.add_argument("--workers", type=int, default=1,
                       help="fork N worker processes serving crc32-routed "
                            "shards over a sealed mmap arena (forces "
                            "--backend mmap; counters are identical to a "
                            "single-process sharded cache)")

    # policies ----------------------------------------------------------------- #
    policies = subparsers.add_parser(
        "policies", help="compare all replacement policies on one configuration"
    )
    _add_experiment_arguments(policies)

    # maintenance --------------------------------------------------------------- #
    maintenance = subparsers.add_parser(
        "maintenance",
        help="inspect per-round maintenance reports of a run, or decode an "
             "append-only plan-journal file",
    )
    _add_experiment_arguments(maintenance, dataset_required=False)
    maintenance.add_argument("--policy", choices=available_policies(), default="hd",
                             help="cache replacement policy")
    maintenance.add_argument("--journal", type=Path, default=None,
                             help="decode this plan-journal file instead of "
                                  "running an experiment")
    maintenance.add_argument("--serials", action="store_true",
                             help="also print per-round admitted/evicted "
                                  "serials and victim utilities")
    maintenance.add_argument("--tail", type=int, default=None, metavar="N",
                             help="with --journal: show only the last N rounds")
    maintenance.add_argument("--since-round", type=int, default=None,
                             metavar="R",
                             help="with --journal: show only rounds >= R "
                                  "(e.g. past a checkpoint's watermark)")
    maintenance.add_argument("--replicas", type=int, default=0,
                             help="feed N journal-driven read replicas during "
                                  "the run and print their replication-lag "
                                  "metrics (rounds behind, bytes shipped, "
                                  "apply time)")

    # analyze -------------------------------------------------------------------- #
    analyze = subparsers.add_parser(
        "analyze",
        help="run the static lock-discipline & plan-purity analyzer "
             "(rules REPRO001-REPRO008) over the repro package",
    )
    analyze.add_argument("paths", nargs="*", type=Path,
                         help="files or directories to scan "
                              "(default: the installed repro package)")
    analyze.add_argument("--format", choices=("text", "json"), default="text",
                         help="report format (default: text)")
    analyze.add_argument("--baseline", type=Path, default=None,
                         help="baseline file of accepted finding fingerprints "
                              "(default: the checked-in baseline)")
    analyze.add_argument("--no-baseline", action="store_true",
                         help="ignore the baseline and report every finding")
    analyze.add_argument("--write-baseline", action="store_true",
                         help="accept the current findings into the baseline")

    return parser


def _add_experiment_arguments(
    parser: argparse.ArgumentParser, dataset_required: bool = True
) -> None:
    if dataset_required:
        parser.add_argument("dataset", choices=sorted(DATASET_FACTORIES),
                            help="dataset family")
    else:
        parser.add_argument("dataset", nargs="?", default=None,
                            choices=sorted(DATASET_FACTORIES),
                            help="dataset family (omit with --journal)")
    parser.add_argument("--scale", type=float, default=0.5, help="dataset size multiplier")
    parser.add_argument("--method", choices=available_methods(), default="ggsx",
                        help="Method M to expedite")
    parser.add_argument("--workload", type=Path, default=None,
                        help="workload file produced by 'graphcache workload' "
                             "(generated on the fly when omitted)")
    parser.add_argument("--kind", choices=["ZZ", "ZU", "UU"], default="ZZ",
                        help="Type A category used when no workload file is given")
    parser.add_argument("--queries", type=int, default=150, help="number of queries")
    parser.add_argument("--alpha", type=float, default=1.4, help="Zipf skew parameter")
    parser.add_argument("--cache-size", type=int, default=30, help="cache capacity")
    parser.add_argument("--window-size", type=int, default=10, help="window size")
    parser.add_argument("--admission-control", action="store_true",
                        help="enable the expensiveness-based admission filter")
    parser.add_argument("--admission", choices=available_admission_controllers(),
                        default="threshold",
                        help="admission controller kind: the quantile-"
                             "calibrated threshold filter or the adaptive "
                             "(hill-climbing) variant")
    parser.add_argument("--backend", choices=list(AVAILABLE_BACKENDS), default="memory",
                        help="storage backend of the cache/window stores "
                             "(sqlite = write-through, larger-than-RAM)")
    parser.add_argument("--backend-path", type=Path, default=None,
                        help="sqlite database file / mmap arena base path "
                             "for a durable cache (default: in-memory)")
    parser.add_argument("--packed-match", choices=["on", "off", "auto"],
                        default="auto",
                        help="CSR-native matching on packed views: 'on' "
                             "serves mmap-backed entries as zero-decode "
                             "PackedGraphView objects, 'off' always decodes "
                             "to Graph, 'auto' (default) decodes in-process "
                             "but switches on inside forked workers")
    parser.add_argument("--shards", type=int, default=1,
                        help="split the cache into N independent shards; "
                             "with --jobs > 1 full GC pipelines run "
                             "concurrently, one per shard")
    parser.add_argument("--maintenance-mode", choices=list(SCHEDULER_MODES),
                        default="sync",
                        help="where cache-update rounds execute: inline on "
                             "the committing thread (sync), on a worker "
                             "thread off the query path (background), or on "
                             "the worker behind a completion barrier — the "
                             "deterministic test mode (barrier)")
    parser.add_argument("--journal-path", type=Path, default=None,
                        help="append every applied maintenance plan to this "
                             "file (one JSON line per round; sharded caches "
                             "write one file per shard)")
    parser.add_argument("--journal-fsync", action="store_true",
                        help="flush and fsync every journal append before the "
                             "round returns (the crash-recovery durability "
                             "mode; default: rely on the OS page cache)")
    parser.add_argument("--compaction-threshold", type=float, default=None,
                        help="automatic mmap-arena compaction: after each "
                             "delta publish, fold any backend whose "
                             "dead/live byte ratio crosses this value "
                             "(default: never compact automatically)")
    parser.add_argument("--seed", type=int, default=0, help="generation seed")


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _command_info(_: argparse.Namespace) -> int:
    print("datasets  :", ", ".join(sorted(DATASET_FACTORIES)))
    print("methods   :", ", ".join(available_methods()))
    print("matchers  :", ", ".join(available_matchers()))
    print("policies  :", ", ".join(available_policies()))
    print("admission :", ", ".join(available_admission_controllers()))
    return 0


def _command_dataset(args: argparse.Namespace) -> int:
    dataset = dataset_by_name(args.name, scale=args.scale, seed=args.seed)
    stats = dataset.statistics()
    rows = [{"statistic": key, "value": round(value, 3) if isinstance(value, float) else value}
            for key, value in stats.as_dict().items()]
    print(format_table(rows))
    if args.output is not None:
        save_dataset(dataset, args.output)
        print(f"saved {len(dataset)} graphs to {args.output}")
    return 0


def _command_workload(args: argparse.Namespace) -> int:
    dataset = dataset_by_name(args.dataset, scale=args.scale, seed=args.seed)
    if args.kind == "B":
        pools = QueryPools(
            dataset,
            query_sizes=tuple(args.sizes),
            answer_pool_size=max(20, args.queries // 3),
            no_answer_pool_size=max(8, args.queries // 10),
            seed=args.seed,
        )
        generator = TypeBWorkloadGenerator(
            pools, no_answer_probability=args.no_answer, alpha=args.alpha, seed=args.seed
        )
        workload = generator.generate(args.queries, dataset_name=dataset.name)
    else:
        generator = TypeAWorkloadGenerator(
            dataset,
            category=args.kind,
            query_sizes=tuple(args.sizes),
            alpha=args.alpha,
            seed=args.seed,
        )
        workload = generator.generate(args.queries)
    save_workload(workload, args.output)
    print(f"saved workload {workload.describe()} to {args.output}")
    return 0


def _build_experiment(args: argparse.Namespace):
    dataset = dataset_by_name(args.dataset, scale=args.scale, seed=args.seed)
    method = method_by_name(args.method, dataset)
    if args.workload is not None:
        workload = load_workload(args.workload)
    else:
        generator = TypeAWorkloadGenerator(
            dataset,
            category=args.kind,
            query_sizes=SMALL_DATASET_QUERY_SIZES,
            alpha=args.alpha,
            seed=args.seed,
        )
        workload = generator.generate(args.queries)
    return method, workload


def _experiment_config(
    args: argparse.Namespace,
    policy: Optional[str] = None,
    execution_mode: str = "serial",
) -> GraphCacheConfig:
    """GraphCache configuration shared by the experiment subcommands."""
    return GraphCacheConfig(
        cache_capacity=args.cache_size,
        window_size=args.window_size,
        replacement_policy=policy if policy is not None else args.policy,
        admission_control=args.admission_control,
        admission_kind=args.admission,
        execution_mode=execution_mode,
        backend=args.backend,
        backend_path=None if args.backend_path is None else str(args.backend_path),
        shards=args.shards,
        maintenance_mode=args.maintenance_mode,
        packed_match=args.packed_match,
        journal_path=None if args.journal_path is None else str(args.journal_path),
        journal_fsync=args.journal_fsync,
        compaction_threshold=args.compaction_threshold,
    )


def _command_run(args: argparse.Namespace) -> int:
    method, workload = _build_experiment(args)
    config = _experiment_config(args)
    result = run_experiment("cli-run", method, workload, config, jobs=args.jobs)
    print(format_table([result.summary_row()]))
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    method, workload = _build_experiment(args)
    config = _experiment_config(
        args, execution_mode="parallel" if args.parallel_stages else "serial"
    )
    if args.workers > 1:
        return _batch_multiprocess(args, method, workload, config)
    service = GraphCacheService.for_method(method, config)
    results = service.query_many(list(workload), jobs=args.jobs)
    service.drain_maintenance()

    count = len(results)
    runtime = service.cache.runtime_statistics
    stages = aggregate_stage_times(results)
    maintenance = service.maintenance_reports()
    row = {
        "queries": count,
        "jobs": args.jobs,
        "shards": args.shards,
        "backend": args.backend,
        "hit_rate": round(runtime.cache_hits / max(1, count), 3),
        "subiso_tests": runtime.subiso_tests,
        "subiso_alleviated": runtime.subiso_tests_alleviated,
        "containment_tests": runtime.containment_tests,
        "decode_avoided": runtime.decode_avoided,
        # Maintenance-engine evidence: rounds run and the delta work they
        # did (index add/remove + backend row ops — O(window) per round).
        "gc_rounds": len(maintenance),
        "gc_index_ops": sum(report.index_ops for report in maintenance),
        "gc_row_ops": sum(report.backend_row_ops for report in maintenance),
        "gc_evicted": sum(len(report.evicted_serials) for report in maintenance),
    }
    for stage in STAGE_NAMES:
        row[f"{stage}_ms"] = round(stages.get(stage, 0.0) * 1000.0, 3)
    print(format_table([row]))
    service.close()
    return 0


def _batch_multiprocess(args, method, workload, config) -> int:
    """Serve the workload through N forked workers over a sealed mmap arena."""
    service = ProcessPoolCacheService(method, config, workers=args.workers)
    try:
        queries = list(workload)
        if config.compaction_threshold is not None:
            # Interleave delta publishes with the workload so churn can
            # cross the threshold and the automatic folds have a chance
            # to run (and show up in the report) within one batch.
            half = len(queries) // 2
            results = service.run(queries[:half])
            service.reseal()
            results += service.run(queries[half:])
            service.reseal()
        else:
            results = service.run(queries)
        runtime = service.runtime_statistics()
        count = len(results)
        stages = aggregate_stage_times(results)
        row = {
            "queries": count,
            "workers": args.workers,
            "shards": service.shard_count,
            "backend": service.config.backend,
            "hit_rate": round(runtime.cache_hits / max(1, count), 3),
            "subiso_tests": runtime.subiso_tests,
            "subiso_alleviated": runtime.subiso_tests_alleviated,
            "containment_tests": runtime.containment_tests,
            "decode_avoided": runtime.decode_avoided,
        }
        for stage in STAGE_NAMES:
            row[f"{stage}_ms"] = round(stages.get(stage, 0.0) * 1000.0, 3)
        print(format_table([row]))
        stats = service.arena_statistics()
        for line in _arena_stat_lines(stats):
            print(line)
        for line in _compaction_lines(stats.get("compaction_events", [])):
            print(line)
    finally:
        service.close()
    return 0


def _arena_stat_lines(stats) -> list:
    """Render pool/cache arena occupancy as indented report lines."""
    lines = [
        "arena: live_bytes={} dead_bytes={} delta_segments={}".format(
            stats["live_bytes"], stats["dead_bytes"], stats["delta_segments"]
        )
    ]
    for shard, shard_stats in sorted(stats.get("shards", {}).items()):
        for table in shard_stats.get("tables", []):
            for segment in table.get("segments", []):
                lines.append(
                    "  shard {} {} {}: kind={} bytes={} live={} dead={}".format(
                        shard,
                        table["table"],
                        segment["segment"],
                        segment["kind"],
                        segment["bytes"],
                        segment["live_bytes"],
                        segment["dead_bytes"],
                    )
                )
    return lines


def _compaction_lines(events) -> list:
    """Render automatic-compaction events as indented report lines."""
    if not events:
        return []
    lines = [f"compaction: {len(events)} fold(s)"]
    for event in events:
        lines.append(
            "  table {}: trigger_ratio={:.3f} bytes_reclaimed={} "
            "segments_folded={}".format(
                event["table"],
                event["trigger_ratio"],
                event["bytes_reclaimed"],
                event["segments_folded"],
            )
        )
    return lines


def _command_policies(args: argparse.Namespace) -> int:
    method, workload = _build_experiment(args)
    warmup = args.window_size
    baseline = run_baseline(method, workload, warmup_queries=warmup)
    baseline_aggregate = aggregate_baseline(baseline)
    rows = []
    for policy in available_policies():
        config = _experiment_config(args, policy=policy)
        if config.backend_path is not None:
            # Each policy must start cold: a shared durable database would
            # warm-start every run after the first from its predecessor's
            # write-through leftovers and invalidate the comparison.
            config = config.with_backend(
                config.backend, f"{config.backend_path}.{policy}"
            )
        if config.journal_path is not None:
            # One decision stream per policy, for the same reason.
            config = config.with_maintenance_mode(
                config.maintenance_mode, f"{config.journal_path}.{policy}"
            )
        cache = build_cache(method, config)
        results = [cache.query(query) for query in workload]
        cache.close()
        report = speedup(baseline_aggregate, aggregate_cached(results[warmup:]))
        rows.append(
            {
                "policy": policy.upper(),
                "time speedup": round(report.time_speedup, 2),
                "subiso speedup": round(report.subiso_speedup, 2),
                "hit rate": round(report.cached.cache_hit_rate, 2),
            }
        )
    print(format_table(rows))
    return 0


def _plan_rows(plans, with_serials: bool, rounds=None):
    """Table rows (and optional serial-detail lines) for a plan stream.

    ``rounds`` supplies the journal's real round numbers (a filtered or
    compacted stream does not start at 1); omitted, rounds are enumerated.
    """
    rows = []
    details = []
    if rounds is None:
        rounds = range(1, len(plans) + 1)
    for round_no, plan in zip(rounds, plans, strict=True):
        threshold = plan.admission_threshold
        rows.append(
            {
                "round": round_no,
                "at_serial": plan.current_serial,
                "window": len(plan.window_serials),
                "admitted": len(plan.admitted_serials),
                "rejected": len(plan.rejected_serials),
                "evicted": len(plan.evicted_serials),
                "policy": plan.policy,
                "delegate": plan.policy_delegate or "-",
                "threshold": "-" if threshold is None else round(threshold, 4),
            }
        )
        if with_serials:
            victims = ", ".join(
                f"{serial} (u={utility:.4g})"
                for serial, utility in plan.victim_utilities
            )
            details.append(
                f"round {round_no}: admitted "
                f"[{', '.join(map(str, plan.admitted_serials)) or '-'}]; "
                f"rejected [{', '.join(map(str, plan.rejected_serials)) or '-'}]; "
                f"evicted [{victims or '-'}]"
            )
    return rows, details


def _command_analyze(args: argparse.Namespace) -> int:
    # Imported lazily: the analyzer is a dev-facing tool and the rest of the
    # CLI should not pay for it (or depend on it) at import time.
    from ..analysis.run import main as analysis_main

    argv = [str(path) for path in args.paths]
    argv += ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", str(args.baseline)]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    return analysis_main(argv)


def _command_maintenance(args: argparse.Namespace) -> int:
    if args.journal is not None:
        try:
            records = PlanJournal.read_records(
                args.journal, since_round=args.since_round, tail=args.tail
            )
        except FileNotFoundError:
            print(
                f"graphcache maintenance: journal file not found: {args.journal}",
                file=sys.stderr,
            )
            return 2
        except OSError as exc:
            print(
                f"graphcache maintenance: cannot read journal "
                f"{args.journal}: {exc}",
                file=sys.stderr,
            )
            return 2
        except CacheError as exc:
            print(f"graphcache maintenance: {exc}", file=sys.stderr)
            return 2
        plans = [MaintenancePlan.from_record(record) for record in records]
        rows, details = _plan_rows(
            plans, args.serials, rounds=[record["round"] for record in records]
        )
        if not rows:
            print(f"{args.journal}: empty journal (no rounds applied)")
            return 0
        print(format_table(rows))
        for line in details:
            print(line)
        return 0

    if args.dataset is None:
        print(
            "graphcache maintenance: provide a dataset to run, "
            "or --journal FILE to decode a plan journal",
            file=sys.stderr,
        )
        return 2

    method, workload = _build_experiment(args)
    config = _experiment_config(args)
    service = GraphCacheService.for_method(method, config)
    replica_set = (
        ReplicaSet(service.cache, replicas=args.replicas)
        if args.replicas > 0
        else None
    )
    queries = list(workload)
    if config.compaction_threshold is not None:
        # Publish the arena tails mid-run: dead bytes only accrue when
        # *sealed* records are later evicted, so the second half's churn is
        # what pushes the dead/live ratio over the threshold.
        half = len(queries) // 2
        service.query_many(queries[:half], jobs=1)
        service.drain_maintenance()
        service.cache.seal_delta_storage()
        service.query_many(queries[half:], jobs=1)
    else:
        service.query_many(queries, jobs=1)
    service.drain_maintenance()
    # Filter reports and plans together so the per-round op columns can
    # never shift onto the wrong row if a plan-less report ever appears.
    reports = [r for r in service.maintenance_reports() if r.plan is not None]
    rows, details = _plan_rows([report.plan for report in reports], args.serials)
    for row, report in zip(rows, reports, strict=True):
        row["cache_size"] = report.cache_size_after
        row["index_ops"] = report.index_ops
        row["row_ops"] = report.backend_row_ops
    if not rows:
        print("no maintenance rounds ran (window never filled)")
        if replica_set is not None:
            replica_set.close()
        service.close()
        return 0
    print(format_table(rows))
    for line in details:
        print(line)
    runtime = service.cache.runtime_statistics
    print(f"decode_avoided: {runtime.decode_avoided}")
    if replica_set is not None:
        replica_set.sync()
        for line in _replication_lines(replica_set.replication_statistics()):
            print(line)
        replica_set.close()
    cache = service.cache
    if config.compaction_threshold is not None:
        # Publish the arena tails so churn from the run above can trigger
        # the automatic fold; the stats below then show the post-fold state.
        cache.seal_delta_storage()
        cache.drain_maintenance()
    for line in _cache_arena_lines(cache):
        print(line)
    for line in _compaction_lines(getattr(cache, "compaction_events", [])):
        print(line)
    service.close()
    return 0


def _replication_lines(stats) -> list:
    """Render per-replica replication-lag metrics as report lines."""
    if not stats:
        return []
    lines = [f"replication: {len(stats)} replica(s), mode={stats[0]['mode']}"]
    for entry in stats:
        lines.append(
            "  {}: rounds_applied={} rounds_behind={} bytes_shipped={} "
            "apply_ms={:.3f}".format(
                entry["replica"],
                entry["rounds_applied"],
                entry["rounds_behind"],
                entry["bytes_shipped"],
                entry["apply_time_s"] * 1000.0,
            )
        )
    return lines


def _cache_arena_lines(cache) -> list:
    """Per-segment arena occupancy of an in-process cache (mmap only)."""
    storage_backends = getattr(cache, "storage_backends", None)
    if storage_backends is None:
        return []
    lines = []
    for backend in storage_backends():
        arena_statistics = getattr(backend, "arena_statistics", None)
        if arena_statistics is None:
            continue
        table = arena_statistics()
        lines.append(
            "arena {}: live_bytes={} dead_bytes={} delta_segments={}".format(
                table["table"], table["live_bytes"], table["dead_bytes"],
                table["delta_segments"],
            )
        )
        for segment in table["segments"]:
            lines.append(
                "  {}: kind={} bytes={} live={} dead={}".format(
                    segment["segment"], segment["kind"], segment["bytes"],
                    segment["live_bytes"], segment["dead_bytes"],
                )
            )
    return lines


_COMMANDS = {
    "info": _command_info,
    "dataset": _command_dataset,
    "workload": _command_workload,
    "run": _command_run,
    "batch": _command_batch,
    "policies": _command_policies,
    "maintenance": _command_maintenance,
    "analyze": _command_analyze,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
