"""Cheap structural summaries and necessary-condition checks.

Subgraph isomorphism is NP-complete, so every layer of the system first
applies *necessary conditions* that are cheap to evaluate:

* a query cannot be contained in a dataset graph that has fewer vertices,
  fewer edges, or fewer occurrences of some vertex label;
* degree sequences must dominate element-wise after sorting;
* per-label degree profiles must be matchable.

These checks can only ever rule containment *out* — they never prove it — and
are used by the SI matchers as a fast pre-filter and by tests as sanity
oracles.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .graph import Graph

__all__ = [
    "could_be_subgraph",
    "label_histogram_dominates",
    "degree_sequence_dominates",
    "vertex_signature",
    "graph_signature",
]


def label_histogram_dominates(small: Graph, large: Graph) -> bool:
    """Return ``True`` if ``large`` has at least as many vertices of every label of ``small``.

    Compares the precomputed interned-label histograms: no dict copies and no
    label-object hashing on this per-match-call hot path.
    """
    large_counts = large.label_id_histogram
    for label_id, count in small.label_id_histogram.items():
        if large_counts.get(label_id, 0) < count:
            return False
    return True


def degree_sequence_dominates(small: Graph, large: Graph) -> bool:
    """Return ``True`` if ``large``'s degree sequence dominates ``small``'s.

    For non-induced subgraph isomorphism, the i-th largest degree of the
    pattern can never exceed the i-th largest degree of the target.
    """
    small_seq = small.degree_sequence()
    large_seq = large.degree_sequence()
    if len(small_seq) > len(large_seq):
        return False
    return all(s <= l for s, l in zip(small_seq, large_seq, strict=False))


def could_be_subgraph(pattern: Graph, target: Graph) -> bool:
    """Fast necessary-condition check for ``pattern ⊆ target``.

    Returns ``False`` only when containment is provably impossible; ``True``
    means "maybe" and must be confirmed by a full sub-iso test.
    """
    if pattern.order > target.order or pattern.size > target.size:
        return False
    if not label_histogram_dominates(pattern, target):
        return False
    if not degree_sequence_dominates(pattern, target):
        return False
    return True


def vertex_signature(graph: Graph, vertex: int) -> Tuple[object, int, Tuple[object, ...]]:
    """Signature of a vertex: (label, degree, sorted multiset of neighbour labels).

    Used by GraphQL-style pruning: a pattern vertex can only map onto a target
    vertex whose signature *covers* it (same label, ≥ degree, neighbour-label
    multiset containment).
    """
    neighbour_labels = tuple(sorted(repr(graph.label(n)) for n in graph.neighbors(vertex)))
    return (graph.label(vertex), graph.degree(vertex), neighbour_labels)


def graph_signature(graph: Graph) -> Dict[str, object]:
    """Order-invariant structural summary of a graph.

    Two isomorphic graphs always produce equal signatures (the converse does
    not hold).  Used in tests and as a cheap bucketing key.
    """
    label_hist = tuple(sorted((repr(k), v) for k, v in graph.label_histogram.items()))
    return {
        "order": graph.order,
        "size": graph.size,
        "degree_sequence": graph.degree_sequence(),
        "label_histogram": label_hist,
    }
