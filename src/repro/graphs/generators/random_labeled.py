"""Random labelled-graph generators (GraphGen-like substrate).

The paper's Synthetic dataset was produced with GraphGen [3]; the real-world
datasets (AIDS, PDBS, PCM) are not redistributable here.  This module provides
the generator primitives used by :mod:`repro.graphs.generators.datasets` to
build stand-in datasets whose structural statistics (graph count, vertex/edge
counts, average degree, label alphabet) match the figures reported in §7.2 of
the paper, at a scale tractable for pure-Python sub-iso testing.

All generators are deterministic given a :class:`random.Random` seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ...exceptions import GraphError
from ..graph import Graph

__all__ = [
    "random_connected_graph",
    "random_tree",
    "random_labels",
    "zipfian_label_weights",
]


def zipfian_label_weights(alphabet_size: int, skew: float = 1.0) -> List[float]:
    """Return Zipf-like weights for a label alphabet.

    Real molecule datasets have highly skewed label distributions (carbon
    dominates AIDS); ``skew=0`` gives uniform weights.
    """
    if alphabet_size <= 0:
        raise GraphError("alphabet_size must be positive")
    if skew <= 0:
        return [1.0] * alphabet_size
    weights = [1.0 / (rank ** skew) for rank in range(1, alphabet_size + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def random_labels(
    count: int,
    alphabet: Sequence[object],
    rng: random.Random,
    weights: Optional[Sequence[float]] = None,
) -> List[object]:
    """Draw ``count`` labels from ``alphabet`` (optionally weighted)."""
    if not alphabet:
        raise GraphError("label alphabet must not be empty")
    if weights is None:
        return [rng.choice(alphabet) for _ in range(count)]
    return rng.choices(list(alphabet), weights=list(weights), k=count)


def random_tree(order: int, rng: random.Random) -> List[tuple]:
    """Return the edge list of a uniformly random labelled tree skeleton.

    Uses the random-attachment construction: vertex ``i`` (``i >= 1``) attaches
    to a uniformly chosen earlier vertex.  This guarantees connectivity with
    exactly ``order - 1`` edges.
    """
    if order <= 0:
        raise GraphError("order must be positive")
    return [(rng.randrange(0, i), i) for i in range(1, order)]


def random_connected_graph(
    order: int,
    average_degree: float,
    alphabet: Sequence[object],
    rng: random.Random,
    label_weights: Optional[Sequence[float]] = None,
    graph_id: object | None = None,
) -> Graph:
    """Generate a random connected labelled graph.

    The graph starts from a random spanning tree (guaranteeing connectivity)
    and adds uniformly random extra edges until the requested average degree
    is reached (or the graph becomes complete).

    Parameters
    ----------
    order:
        Number of vertices (must be >= 1).
    average_degree:
        Target average vertex degree ``2m/n``.
    alphabet:
        Vertex label alphabet.
    rng:
        Source of randomness (deterministic given its seed).
    label_weights:
        Optional sampling weights over ``alphabet``.
    graph_id:
        Optional id recorded on the generated graph.
    """
    if order <= 0:
        raise GraphError("order must be positive")
    labels = random_labels(order, alphabet, rng, label_weights)
    if order == 1:
        return Graph(labels=labels, edges=[], graph_id=graph_id)

    edges = set(random_tree(order, rng))
    target_edges = max(order - 1, int(round(average_degree * order / 2.0)))
    max_edges = order * (order - 1) // 2
    target_edges = min(target_edges, max_edges)

    # Dense targets: sample from the full edge population to avoid rejection
    # stalls; sparse targets: rejection sampling is cheaper than materialising
    # the O(n^2) population.
    if target_edges > max_edges * 0.4 and order <= 2048:
        population = [
            (u, v) for u in range(order) for v in range(u + 1, order) if (u, v) not in edges
        ]
        rng.shuffle(population)
        for edge in population[: target_edges - len(edges)]:
            edges.add(edge)
    else:
        attempts = 0
        attempt_budget = 20 * target_edges + 100
        while len(edges) < target_edges and attempts < attempt_budget:
            attempts += 1
            u = rng.randrange(order)
            v = rng.randrange(order)
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in edges:
                continue
            edges.add(edge)
    return Graph(labels=labels, edges=sorted(edges), graph_id=graph_id)
