"""Family-based dataset generation: graphs derived from shared templates.

Real graph datasets are not collections of independent random graphs:
molecules share scaffolds, proteins share folds, contact maps share domain
structure.  That shared structure is what makes filter-then-verify candidate
sets strictly larger than answer sets (filters cannot tell family members
apart) and what creates subgraph/supergraph relationships between queries —
the two phenomena GraphCache exploits.

This module builds datasets as *families*: a small pool of template graphs is
generated first, and every dataset graph is a perturbed copy of one template —
some vertices relabelled, a few edges rewired, and a random "decoration"
subtree attached.  The result preserves the aggregate statistics requested by
the caller (size, degree, label alphabet) while giving the dataset the
cross-graph structural similarity of its real-world counterpart.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ...exceptions import GraphError
from ..graph import Graph
from .random_labeled import random_connected_graph

__all__ = ["perturb_graph", "family_dataset_graphs"]


def perturb_graph(
    template: Graph,
    rng: random.Random,
    alphabet: Sequence[object],
    label_weights: Optional[Sequence[float]] = None,
    relabel_fraction: float = 0.08,
    rewire_fraction: float = 0.05,
    extra_vertex_fraction: float = 0.25,
    graph_id: object | None = None,
) -> Graph:
    """Return a structural variant of ``template``.

    The perturbation keeps most of the template intact (so family members
    share features) while changing enough to make each graph distinct:

    * ``relabel_fraction`` of the vertices get a fresh label from the alphabet,
    * ``rewire_fraction`` of the edges are replaced by random new edges,
    * up to ``extra_vertex_fraction`` × |V| new vertices are attached to random
      existing vertices (each also receives a couple of extra edges so dense
      templates stay dense).
    """
    labels = list(template.labels)
    edges = set(template.edges)
    order = len(labels)
    if order == 0:
        raise GraphError("cannot perturb an empty template")

    def draw_label() -> object:
        if label_weights is None:
            return rng.choice(list(alphabet))
        return rng.choices(list(alphabet), weights=list(label_weights), k=1)[0]

    # 1. Relabel a fraction of the vertices.
    for vertex in rng.sample(range(order), k=max(0, int(relabel_fraction * order))):
        labels[vertex] = draw_label()

    # 2. Rewire a fraction of the edges (remove one, add one elsewhere).
    rewire_count = max(0, int(rewire_fraction * len(edges)))
    edge_list = sorted(edges)
    for edge in rng.sample(edge_list, k=min(rewire_count, len(edge_list))):
        edges.discard(edge)
    attempts = 0
    while len(edges) < len(edge_list) and attempts < 20 * rewire_count + 10:
        attempts += 1
        u, v = rng.randrange(order), rng.randrange(order)
        if u == v:
            continue
        edges.add((u, v) if u < v else (v, u))

    # 3. Attach decoration vertices.
    average_degree = template.average_degree()
    extra = rng.randint(0, max(0, int(extra_vertex_fraction * order)))
    for _ in range(extra):
        new_vertex = len(labels)
        labels.append(draw_label())
        anchor = rng.randrange(new_vertex)
        edges.add((anchor, new_vertex))
        # Dense templates get denser decorations.
        extra_links = max(0, int(round(average_degree / 2.0)) - 1)
        for _ in range(extra_links):
            other = rng.randrange(new_vertex)
            if other != new_vertex:
                edges.add((min(other, new_vertex), max(other, new_vertex)))

    return Graph(labels=labels, edges=sorted(edges), graph_id=graph_id)


def family_dataset_graphs(
    graph_count: int,
    template_count: int,
    template_order: int,
    order_spread: int,
    average_degree: float,
    alphabet: Sequence[object],
    rng: random.Random,
    label_weights: Optional[Sequence[float]] = None,
) -> List[Graph]:
    """Generate ``graph_count`` graphs drawn from ``template_count`` families.

    Each template is a random connected graph of ``template_order`` ±
    ``order_spread`` vertices with the requested average degree; dataset
    graphs are perturbed copies of a uniformly chosen template.
    """
    if graph_count <= 0:
        raise GraphError("graph_count must be positive")
    if template_count <= 0:
        raise GraphError("template_count must be positive")
    templates = []
    for _ in range(template_count):
        low = max(3, template_order - order_spread)
        high = max(low, template_order + order_spread)
        templates.append(
            random_connected_graph(
                order=rng.randint(low, high),
                average_degree=average_degree,
                alphabet=alphabet,
                rng=rng,
                label_weights=label_weights,
            )
        )
    graphs: List[Graph] = []
    for index in range(graph_count):
        template = templates[index % len(templates)]
        graphs.append(
            perturb_graph(
                template,
                rng=rng,
                alphabet=alphabet,
                label_weights=label_weights,
                graph_id=index,
            )
        )
    return graphs
