"""Stand-in datasets mirroring the paper's evaluation datasets (§7.2).

The paper evaluates GraphCache on three real-world datasets (AIDS, PDBS, PCM)
and one GraphGen synthetic dataset.  Those exact files are not redistributable
and would be intractably large for pure-Python sub-iso verification, so this
module generates *structurally analogous* datasets:

============  ==================  =======================================
Paper         Factory             Preserved characteristics
============  ==================  =======================================
AIDS          :func:`aids_like`   many small sparse graphs, avg degree ≈2,
                                  large skewed label alphabet (molecules)
PDBS          :func:`pdbs_like`   few large sparse graphs, avg degree ≈2,
                                  small label alphabet (DNA/RNA/protein)
PCM           :func:`pcm_like`    few medium dense graphs, high avg degree
                                  (protein contact maps)
Synthetic     :func:`synthetic_like`  like PCM but more, larger graphs
============  ==================  =======================================

Every factory accepts a ``scale`` multiplier for the number of graphs and a
``seed``; the defaults are sized so that the complete benchmark suite runs on
a laptop.  The relative shape (AIDS small/sparse/label-rich vs PCM dense) is
what GraphCache's behaviour depends on — see DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

import random
from typing import List

from ..dataset import GraphDataset
from ..graph import Graph
from .families import family_dataset_graphs
from .random_labeled import zipfian_label_weights

__all__ = [
    "aids_like",
    "pdbs_like",
    "pcm_like",
    "synthetic_like",
    "dataset_by_name",
    "DATASET_FACTORIES",
]

#: Chemical-element-style alphabet used by the molecule-like datasets.  Real
#: molecule datasets are dominated by a handful of elements (C, N, O), which
#: the Zipf label skew of each factory reproduces.
_ATOM_LABELS = [
    "C", "N", "O", "S", "P", "F", "Cl", "Br", "I", "H", "Na", "K", "Ca", "Zn",
]

#: Residue/nucleotide-class alphabet used by the protein-structure-like
#: dataset (PDBS mixes DNA, RNA and protein graphs with few label classes).
_BACKBONE_LABELS = ["CA", "CB", "N", "O", "P", "S"]

#: Residue-class alphabet used by the contact-map-like datasets.
_RESIDUE_LABELS = ["ALA", "GLY", "LEU", "SER", "VAL", "GLU", "LYS", "ASP"]


def _build(
    name: str,
    graph_count: int,
    mean_order: int,
    order_spread: int,
    average_degree: float,
    alphabet: List[str],
    label_skew: float,
    seed: int,
    template_count: int | None = None,
) -> GraphDataset:
    """Shared generator body for all dataset factories.

    Graphs are generated as *families* (perturbed copies of shared templates,
    see :mod:`repro.graphs.generators.families`) so that, as in the real
    datasets, different graphs share substructure: FTV candidate sets then
    genuinely exceed answer sets and queries exhibit subgraph/supergraph
    relationships for GraphCache to exploit.
    """
    rng = random.Random(seed)
    weights = zipfian_label_weights(len(alphabet), skew=label_skew)
    if template_count is None:
        template_count = max(3, graph_count // 12)
    graphs: List[Graph] = family_dataset_graphs(
        graph_count=graph_count,
        template_count=template_count,
        template_order=mean_order,
        order_spread=order_spread,
        average_degree=average_degree,
        alphabet=alphabet,
        rng=rng,
        label_weights=weights,
    )
    return GraphDataset(graphs, name=name)


def aids_like(scale: float = 1.0, seed: int = 7) -> GraphDataset:
    """AIDS-like dataset: many small, sparse, label-rich molecule graphs.

    Paper statistics: 40,000 graphs, ≈45 vertices, ≈47 edges, avg degree ≈2.09.
    Default stand-in: ``200 * scale`` graphs of 22–62 vertices, avg degree ≈2.1,
    20 atom-style labels with a strongly Zipf-skewed distribution (carbon
    dominates, as in real molecules).
    """
    return _build(
        name="AIDS-like",
        graph_count=max(4, int(200 * scale)),
        mean_order=42,
        order_spread=20,
        average_degree=2.1,
        alphabet=_ATOM_LABELS,
        label_skew=2.2,
        seed=seed,
    )


def pdbs_like(scale: float = 1.0, seed: int = 11) -> GraphDataset:
    """PDBS-like dataset: few larger, sparse graphs with a small label alphabet.

    Paper statistics: 600 graphs, ≈2,939 vertices, avg degree ≈2.13.
    Default stand-in: ``60 * scale`` graphs of 280–520 vertices, avg degree ≈2.1,
    6 backbone-style labels.  The graphs are an order of magnitude larger than
    the AIDS-like ones (as in the paper), which is what makes each sub-iso
    verification against PDBS expensive.
    """
    return _build(
        name="PDBS-like",
        graph_count=max(4, int(60 * scale)),
        mean_order=400,
        order_spread=120,
        average_degree=2.1,
        alphabet=_BACKBONE_LABELS,
        label_skew=0.8,
        seed=seed,
    )


def pcm_like(scale: float = 1.0, seed: int = 13) -> GraphDataset:
    """PCM-like dataset: few medium, *dense* protein-contact-map graphs.

    Paper statistics: 200 graphs, ≈377 vertices, ≈4,340 edges, avg degree ≈22.4.
    Default stand-in: ``40 * scale`` graphs of 55–105 vertices, avg degree ≈10,
    8 residue-style labels.  Density (relative to the sparse datasets) is the
    property that matters: it is what triggers cache pollution (§6.2, Fig. 9).
    """
    return _build(
        name="PCM-like",
        graph_count=max(4, int(40 * scale)),
        mean_order=80,
        order_spread=25,
        average_degree=10.0,
        alphabet=_RESIDUE_LABELS,
        label_skew=0.5,
        seed=seed,
    )


def synthetic_like(scale: float = 1.0, seed: int = 17) -> GraphDataset:
    """Synthetic dataset: a larger, denser counterpart to PCM (GraphGen-style).

    Paper statistics: 1,000 graphs, ≈892 vertices, avg degree ≈19.5.
    Default stand-in: ``60 * scale`` graphs of 80–140 vertices, avg degree ≈10
    (more and larger graphs than PCM-like, as in the paper).
    """
    return _build(
        name="Synthetic",
        graph_count=max(4, int(60 * scale)),
        mean_order=110,
        order_spread=30,
        average_degree=10.0,
        alphabet=_RESIDUE_LABELS,
        label_skew=0.3,
        seed=seed,
    )


DATASET_FACTORIES = {
    "aids": aids_like,
    "pdbs": pdbs_like,
    "pcm": pcm_like,
    "synthetic": synthetic_like,
}


def dataset_by_name(name: str, scale: float = 1.0, seed: int | None = None) -> GraphDataset:
    """Build a stand-in dataset by (case-insensitive) paper name."""
    key = name.strip().lower()
    try:
        factory = DATASET_FACTORIES[key]
    except KeyError:
        known = ", ".join(sorted(DATASET_FACTORIES))
        raise ValueError(f"unknown dataset {name!r}; known datasets: {known}") from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
