"""Random graph and stand-in dataset generators."""

from .datasets import (
    DATASET_FACTORIES,
    aids_like,
    dataset_by_name,
    pcm_like,
    pdbs_like,
    synthetic_like,
)
from .random_labeled import (
    random_connected_graph,
    random_labels,
    random_tree,
    zipfian_label_weights,
)

__all__ = [
    "DATASET_FACTORIES",
    "aids_like",
    "dataset_by_name",
    "pcm_like",
    "pdbs_like",
    "synthetic_like",
    "random_connected_graph",
    "random_labels",
    "random_tree",
    "zipfian_label_weights",
]
