"""Graph dataset container.

A *graph dataset* in the subgraph-query setting (AIDS, PDBS, PCM, ...) is an
ordered collection of labelled graphs, each addressed by an integer graph id.
Both FTV methods and GraphCache treat the dataset as read-only: FTV methods
index it once, SI methods iterate over it per query, and GC only manipulates
sets of graph ids (candidate sets and answer sets).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence

from ..exceptions import DatasetError
from .graph import Graph

__all__ = ["GraphDataset", "DatasetStatistics"]


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics of a dataset, mirroring Table-style stats in §7.2."""

    graph_count: int
    mean_vertices: float
    std_vertices: float
    max_vertices: int
    mean_edges: float
    std_edges: float
    max_edges: int
    mean_degree: float
    distinct_labels: int

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (for reports)."""
        return {
            "graph_count": self.graph_count,
            "mean_vertices": self.mean_vertices,
            "std_vertices": self.std_vertices,
            "max_vertices": self.max_vertices,
            "mean_edges": self.mean_edges,
            "std_edges": self.std_edges,
            "max_edges": self.max_edges,
            "mean_degree": self.mean_degree,
            "distinct_labels": self.distinct_labels,
        }


class GraphDataset:
    """An immutable, indexable collection of labelled graphs.

    Graph ids are the positions ``0..n-1`` of the graphs in the dataset; every
    stored graph's :attr:`~repro.graphs.graph.Graph.graph_id` is rewritten to
    its position so that answer sets and candidate sets can be represented as
    plain ``frozenset[int]`` everywhere in the library.

    Parameters
    ----------
    graphs:
        The member graphs, in dataset order.
    name:
        Human-readable dataset name used in reports (e.g. ``"AIDS-like"``).
    """

    def __init__(self, graphs: Sequence[Graph], name: str = "dataset") -> None:
        if not graphs:
            raise DatasetError("a dataset must contain at least one graph")
        self._name = name
        self._graphs: List[Graph] = [
            graph.with_id(graph_id) for graph_id, graph in enumerate(graphs)
        ]
        self._all_ids = frozenset(range(len(self._graphs)))

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable name of the dataset."""
        return self._name

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs)

    def __getitem__(self, graph_id: int) -> Graph:
        try:
            return self._graphs[graph_id]
        except IndexError:
            raise DatasetError(
                f"graph id {graph_id} not in dataset of {len(self._graphs)} graphs"
            ) from None

    def graph(self, graph_id: int) -> Graph:
        """Return the graph with the given id (alias of ``dataset[id]``)."""
        return self[graph_id]

    def graphs(self, graph_ids: Iterable[int]) -> List[Graph]:
        """Return the graphs for an iterable of ids, preserving order."""
        return [self[graph_id] for graph_id in graph_ids]

    @property
    def graph_ids(self) -> frozenset:
        """Frozen set of every graph id in the dataset."""
        return self._all_ids

    # ------------------------------------------------------------------ #
    def statistics(self) -> DatasetStatistics:
        """Compute dataset summary statistics (vertex/edge counts, degree)."""
        vertex_counts = [g.order for g in self._graphs]
        edge_counts = [g.size for g in self._graphs]
        labels = set()
        for g in self._graphs:
            labels.update(g.distinct_labels())
        degree_total = sum(g.average_degree() * 1.0 for g in self._graphs)
        return DatasetStatistics(
            graph_count=len(self._graphs),
            mean_vertices=statistics.fmean(vertex_counts),
            std_vertices=statistics.pstdev(vertex_counts) if len(vertex_counts) > 1 else 0.0,
            max_vertices=max(vertex_counts),
            mean_edges=statistics.fmean(edge_counts),
            std_edges=statistics.pstdev(edge_counts) if len(edge_counts) > 1 else 0.0,
            max_edges=max(edge_counts),
            mean_degree=degree_total / len(self._graphs),
            distinct_labels=len(labels),
        )

    def label_alphabet(self) -> frozenset:
        """Union of all vertex labels appearing in the dataset."""
        labels = set()
        for g in self._graphs:
            labels.update(g.distinct_labels())
        return frozenset(labels)

    def total_vertices(self) -> int:
        """Total number of vertices across all member graphs."""
        return sum(g.order for g in self._graphs)

    def total_edges(self) -> int:
        """Total number of edges across all member graphs."""
        return sum(g.size for g in self._graphs)

    def __repr__(self) -> str:
        return f"<GraphDataset {self._name!r} graphs={len(self._graphs)}>"
