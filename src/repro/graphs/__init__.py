"""Labelled-graph substrate: graph type, datasets, I/O, generators."""

from .builder import GraphBuilder
from .dataset import DatasetStatistics, GraphDataset
from .graph import Graph
from .packed import PackedGraph
from .io import (
    graph_from_text,
    graph_to_text,
    load_dataset,
    read_transaction_text,
    save_dataset,
    write_transaction_text,
)
from .signatures import (
    could_be_subgraph,
    degree_sequence_dominates,
    graph_signature,
    label_histogram_dominates,
    vertex_signature,
)

__all__ = [
    "Graph",
    "PackedGraph",
    "GraphBuilder",
    "GraphDataset",
    "DatasetStatistics",
    "graph_from_text",
    "graph_to_text",
    "load_dataset",
    "save_dataset",
    "read_transaction_text",
    "write_transaction_text",
    "could_be_subgraph",
    "degree_sequence_dominates",
    "graph_signature",
    "label_histogram_dominates",
    "vertex_signature",
]
