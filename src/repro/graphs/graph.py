"""Core labelled-graph data structure.

GraphCache (and the whole subgraph-query literature it builds on) operates on
*undirected vertex-labelled graphs*: each vertex carries a label drawn from a
finite alphabet, edges are unlabelled and undirected.  This module provides an
immutable-after-freeze :class:`Graph` optimised for the access patterns of the
library:

* adjacency lookups (``graph.neighbors(u)``) during subgraph-isomorphism search,
* label lookups (``graph.label(u)``) and per-label vertex lists,
* cheap structural summaries (degree sequence, label histogram) used by
  filtering heuristics,
* hashing / equality on the *structure* (used by caches, pools and tests).

Vertices are integers ``0..n-1``; this keeps the matchers simple and fast and
mirrors the representation used by the native tools the paper plugs in
(GraphGrepSX, Grapes, VF2).  Use :class:`repro.graphs.builder.GraphBuilder`
for incremental construction with arbitrary vertex names.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..analysis.runtime import make_lock
from ..exceptions import GraphError

__all__ = ["Graph", "graph_constructions", "intern_label"]

Edge = Tuple[int, int]

#: Process-wide count of fully materialised ``Graph`` objects (constructor
#: and CSR decode paths alike; packed views are *not* counted — they defer
#: materialisation).  Tests pin "decode-free" claims as a zero delta of this
#: counter across the section under test.
_CONSTRUCTIONS = 0


def graph_constructions() -> int:
    """Number of ``Graph`` objects materialised in this process so far."""
    return _CONSTRUCTIONS

#: Process-wide label intern table.  Labels may be arbitrary hashable values;
#: interning maps each distinct label to a small integer id shared by *all*
#: graphs, so matchers can compare labels across a (pattern, target) pair with
#: a single int comparison instead of re-hashing the label objects.
_LABEL_INTERN: Dict[object, int] = {}
_LABEL_INTERN_LOCK = make_lock("label.intern")

#: Below this vertex count the packed attach path builds its bitmask core
#: with scalar Python bit arithmetic; above it, the vectorised numpy scatter
#: wins (numpy's per-call overhead crosses over around a few mask words).
_CSR_SCALAR_CUTOFF = 128


def intern_label(label: object) -> int:
    """Return the process-wide integer id of ``label`` (assigning one if new).

    Thread-safe: graphs may be constructed from concurrent pipeline workers,
    and two threads must never assign different ids to the same label.  The
    hot path (label already interned) stays lock-free — under the GIL a dict
    probe is atomic, and interned entries are never removed or reassigned.
    """
    label_id = _LABEL_INTERN.get(label)
    if label_id is None:
        with _LABEL_INTERN_LOCK:
            label_id = _LABEL_INTERN.get(label)
            if label_id is None:
                label_id = len(_LABEL_INTERN)
                _LABEL_INTERN[label] = label_id
    return label_id


@lru_cache(maxsize=65536)
def _intern_table(labels: Tuple[object, ...]) -> Tuple[int, ...]:
    """Interned ids of a whole label table, memoised on the table itself.

    Packed records repeat a dataset's handful of distinct label tables across
    millions of graphs; caching the id tuple turns per-record interning into
    one cache probe (``lru_cache`` is thread-safe, and interned ids are
    process-stable, so a cached tuple can never go stale).
    """
    return tuple(intern_label(label) for label in labels)


def _normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """An undirected, vertex-labelled graph with integer vertices.

    Parameters
    ----------
    labels:
        Sequence of vertex labels; vertex ``i`` gets ``labels[i]``.  Labels may
        be any hashable value but are typically short strings (atom symbols,
        protein residue classes, ...).
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < len(labels)``.
        Self-loops and duplicate edges are rejected.
    graph_id:
        Optional identifier used by datasets and result sets.  It does not
        participate in equality or hashing.

    Examples
    --------
    >>> g = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
    >>> g.order, g.size
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.label(2)
    'O'
    """

    __slots__ = (
        "_labels",
        "_adjacency",
        "_edges",
        "_graph_id",
        "_label_histogram",
        "_vertices_by_label",
        "_hash",
        "_neighbor_masks",
        "_label_ids",
        "_label_masks",
        "_degree_sequence",
        "_degree_prefix_masks",
        "_nbr_label_ge_masks",
        "_label_id_counts",
    )

    def __init__(
        self,
        labels: Sequence[object],
        edges: Iterable[Tuple[int, int]] = (),
        graph_id: object | None = None,
    ) -> None:
        global _CONSTRUCTIONS
        _CONSTRUCTIONS += 1
        self._labels: Tuple[object, ...] = tuple(labels)
        n = len(self._labels)
        adjacency: List[set] = [set() for _ in range(n)]
        edge_set: set = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references a vertex outside 0..{n - 1}")
            if u == v:
                raise GraphError(f"self-loop on vertex {u} is not allowed")
            e = _normalize_edge(u, v)
            if e in edge_set:
                raise GraphError(f"duplicate edge ({u}, {v})")
            edge_set.add(e)
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency: Tuple[frozenset, ...] = tuple(frozenset(a) for a in adjacency)
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_set))
        self._graph_id = graph_id
        self._label_histogram: Dict[object, int] = dict(Counter(self._labels))
        by_label: Dict[object, List[int]] = {}
        for vertex, label in enumerate(self._labels):
            by_label.setdefault(label, []).append(vertex)
        self._vertices_by_label: Dict[object, Tuple[int, ...]] = {
            label: tuple(vertices) for label, vertices in by_label.items()
        }
        self._hash: int | None = None
        self._init_bitmask_core(adjacency)

    def _init_bitmask_core(self, adjacency: Sequence[Iterable[int]]) -> None:
        """Precompute the integer-bitmask views used by the matcher hot paths.

        * ``_neighbor_masks[v]`` — one Python int per vertex with bit ``t`` set
          iff ``t`` is adjacent to ``v``;
        * ``_label_ids[v]`` — process-wide interned id of ``labels[v]``;
        * ``_label_masks[label_id]`` — bitmask of the vertices carrying a label;
        * ``_degree_prefix_masks[d]`` — bitmask of the vertices of degree >= d.
        """
        masks: List[int] = []
        for neighbours in adjacency:
            mask = 0
            for t in neighbours:
                mask |= 1 << t
            masks.append(mask)
        self._neighbor_masks: Tuple[int, ...] = tuple(masks)
        self._label_ids: Tuple[int, ...] = tuple(
            intern_label(label) for label in self._labels
        )
        label_masks: Dict[int, int] = {}
        for vertex, label_id in enumerate(self._label_ids):
            label_masks[label_id] = label_masks.get(label_id, 0) | (1 << vertex)
        self._label_masks: Dict[int, int] = label_masks
        self._label_id_counts: Dict[int, int] = {
            label_id: mask.bit_count() for label_id, mask in label_masks.items()
        }
        degrees = [mask.bit_count() for mask in self._neighbor_masks]
        self._degree_sequence: Tuple[int, ...] = tuple(sorted(degrees, reverse=True))
        max_degree = max(degrees, default=0)
        prefix: List[int] = [0] * (max_degree + 2)
        for vertex, degree in enumerate(degrees):
            prefix[degree] |= 1 << vertex
        # Suffix-OR so that prefix[d] covers every vertex of degree >= d.
        for d in range(max_degree - 1, -1, -1):
            prefix[d] |= prefix[d + 1]
        self._degree_prefix_masks: Tuple[int, ...] = tuple(prefix)
        # Lazily-built per-label neighbour-count threshold masks (GraphQL-style
        # 1-hop profile pruning); dataset graphs are matched against many
        # queries, so the table amortises across calls.
        self._nbr_label_ge_masks: Dict[int, Tuple[int, ...]] | None = None

    def _init_bitmask_core_scalar_csr(
        self,
        ptr: Sequence[int],
        rows: Sequence[Sequence[int]],
        per_code: Sequence[Sequence[int]],
        label_table: Sequence[object],
    ) -> None:
        """Scalar bitmask core from CSR row lists (the small-graph fast path).

        For graphs whose masks fit a handful of machine words, plain Python
        bit arithmetic over the (already materialised) CSR rows beats the
        vectorised scatter of :meth:`_init_bitmask_core_from_csr` — numpy's
        per-call overhead outweighs the loop for ``n`` below the cutoff.
        Produces field-identical results to both sibling constructors.
        """
        masks: List[int] = []
        for row in rows:
            mask = 0
            for t in row:
                mask |= 1 << t
            masks.append(mask)
        self._neighbor_masks = tuple(masks)
        table_ids = _intern_table(tuple(label_table))
        label_ids: List[int] = [0] * len(rows)
        label_masks: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for code, vertices in enumerate(per_code):
            if not vertices:
                continue
            label_id = table_ids[code]
            mask = 0
            for vertex in vertices:
                mask |= 1 << vertex
                label_ids[vertex] = label_id
            label_masks[label_id] = mask
            counts[label_id] = len(vertices)
        self._label_ids = tuple(label_ids)
        self._label_masks = label_masks
        self._label_id_counts = counts
        degrees = [ptr[v + 1] - ptr[v] for v in range(len(rows))]
        self._degree_sequence = tuple(sorted(degrees, reverse=True))
        max_degree = max(degrees, default=0)
        prefix: List[int] = [0] * (max_degree + 2)
        for vertex, degree in enumerate(degrees):
            prefix[degree] |= 1 << vertex
        for d in range(max_degree - 1, -1, -1):
            prefix[d] |= prefix[d + 1]
        self._degree_prefix_masks = tuple(prefix)
        self._nbr_label_ge_masks = None

    def _init_bitmask_core_from_csr(self, indptr, indices, label_codes, label_table) -> None:
        """Bitmask core built from CSR slices — no per-vertex Python lists.

        The packed attach path (:meth:`from_packed`): neighbour masks, label
        masks and degree-prefix masks are assembled as vectorised bit-matrix
        rows (`numpy` ``bitwise_or.at`` scatter into ``uint8`` rows, one
        ``int.from_bytes`` per mask), so rehydrating an arena-backed graph
        costs O(n·n/8) byte ops instead of a Python loop per adjacency entry.
        Produces field-identical results to :meth:`_init_bitmask_core`.
        """
        import numpy as np

        n = len(label_codes)
        nbytes = (n + 7) // 8
        degrees = np.diff(indptr)
        # Per-vertex adjacency masks: scatter bit `t` into row `v`.
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        cols = indices.astype(np.int64, copy=False)
        adj_bits = np.zeros((n, nbytes), dtype=np.uint8)
        np.bitwise_or.at(
            adj_bits, (rows, cols >> 3), (1 << (cols & 7)).astype(np.uint8)
        )
        self._neighbor_masks = tuple(
            int.from_bytes(row.tobytes(), "little") for row in adj_bits
        )
        # Interned ids: one intern per distinct label, broadcast by code.
        table_ids = _intern_table(tuple(label_table))
        codes = label_codes.tolist()
        self._label_ids = tuple(table_ids[code] for code in codes)
        verts = np.arange(n, dtype=np.int64)
        vert_bits = (1 << (verts & 7)).astype(np.uint8)
        vert_bytes = verts >> 3
        label_rows = np.zeros((len(table_ids), nbytes), dtype=np.uint8)
        np.bitwise_or.at(label_rows, (label_codes, vert_bytes), vert_bits)
        label_masks: Dict[int, int] = {}
        for code, label_id in enumerate(table_ids):
            mask = int.from_bytes(label_rows[code].tobytes(), "little")
            if mask:
                label_masks[label_id] = mask
        self._label_masks = label_masks
        self._label_id_counts = {
            label_id: mask.bit_count() for label_id, mask in label_masks.items()
        }
        degree_list = degrees.tolist()
        self._degree_sequence = tuple(sorted(degree_list, reverse=True))
        max_degree = max(degree_list, default=0)
        prefix_rows = np.zeros((max_degree + 2, nbytes), dtype=np.uint8)
        np.bitwise_or.at(prefix_rows, (degrees, vert_bytes), vert_bits)
        # Suffix-OR so that prefix[d] covers every vertex of degree >= d.
        for d in range(max_degree - 1, -1, -1):
            prefix_rows[d] |= prefix_rows[d + 1]
        self._degree_prefix_masks = tuple(
            int.from_bytes(row.tobytes(), "little") for row in prefix_rows
        )
        self._nbr_label_ge_masks = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def graph_id(self) -> object | None:
        """Identifier assigned by the owning dataset (``None`` if unset)."""
        return self._graph_id

    @property
    def order(self) -> int:
        """Number of vertices."""
        return len(self._labels)

    @property
    def size(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def labels(self) -> Tuple[object, ...]:
        """Tuple of vertex labels, indexed by vertex id."""
        return self._labels

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """Sorted tuple of canonical ``(u, v)`` edges with ``u < v``."""
        return self._edges

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(len(self._labels))

    def label(self, vertex: int) -> object:
        """Return the label of ``vertex``."""
        return self._labels[vertex]

    def neighbors(self, vertex: int) -> frozenset:
        """Return the (frozen) set of neighbours of ``vertex``."""
        return self._adjacency[vertex]

    def degree(self, vertex: int) -> int:
        """Return the degree of ``vertex``."""
        return len(self._adjacency[vertex])

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return v in self._adjacency[u]

    def has_vertex(self, vertex: int) -> bool:
        """Return ``True`` if ``vertex`` is a valid vertex id."""
        return 0 <= vertex < len(self._labels)

    # ------------------------------------------------------------------ #
    # Bitmask views (matcher hot paths)
    # ------------------------------------------------------------------ #
    @property
    def neighbor_masks(self) -> Tuple[int, ...]:
        """Per-vertex adjacency bitmasks: bit ``t`` of entry ``v`` means edge ``(v, t)``."""
        return self._neighbor_masks

    def neighbor_mask(self, vertex: int) -> int:
        """Bitmask of the neighbours of ``vertex``."""
        return self._neighbor_masks[vertex]

    @property
    def label_ids(self) -> Tuple[int, ...]:
        """Interned label id of each vertex (shared across all graphs)."""
        return self._label_ids

    def label_id(self, vertex: int) -> int:
        """Interned label id of ``vertex``."""
        return self._label_ids[vertex]

    def label_mask(self, label: object) -> int:
        """Bitmask of the vertices carrying ``label`` (0 if the label is absent).

        Pure lookup: a label this process has never interned cannot be in any
        graph, so the probe must not grow the intern table as a side effect.
        Resolves the interned id and delegates to :meth:`label_id_mask` (one
        mask-table probe, not two parallel implementations).
        """
        label_id = _LABEL_INTERN.get(label)
        if label_id is None:
            return 0
        return self.label_id_mask(label_id)

    def label_id_mask(self, label_id: int) -> int:
        """Bitmask of the vertices whose interned label id is ``label_id``."""
        return self._label_masks.get(label_id, 0)

    @property
    def label_id_histogram(self) -> Dict[int, int]:
        """Mapping ``interned label id -> vertex count``.  Treat as read-only:
        the dict is the precomputed internal table, returned without copying
        because necessary-condition filters read it on every match call."""
        return self._label_id_counts

    def degree_ge_mask(self, min_degree: int) -> int:
        """Bitmask of the vertices with degree >= ``min_degree``."""
        if min_degree <= 0:
            return self._degree_prefix_masks[0]
        if min_degree >= len(self._degree_prefix_masks):
            return 0
        return self._degree_prefix_masks[min_degree]

    @property
    def full_vertex_mask(self) -> int:
        """Bitmask with one bit set per vertex."""
        return (1 << len(self._labels)) - 1

    def neighbor_label_ge_mask(self, label_id: int, min_count: int) -> int:
        """Bitmask of vertices with >= ``min_count`` neighbours labelled ``label_id``.

        The per-label threshold tables are built lazily and cached: the graph
        is immutable, and target graphs are probed by many pattern vertices
        over their lifetime.
        """
        table = self._nbr_label_ge_masks
        if table is None:
            table = {}
            self._nbr_label_ge_masks = table
        per_label = table.get(label_id)
        if per_label is None:
            label_mask = self._label_masks.get(label_id, 0)
            counts = [
                (mask & label_mask).bit_count() for mask in self._neighbor_masks
            ]
            max_count = max(counts, default=0)
            thresholds: List[int] = [0] * (max_count + 2)
            for vertex, count in enumerate(counts):
                thresholds[count] |= 1 << vertex
            for c in range(max_count - 1, -1, -1):
                thresholds[c] |= thresholds[c + 1]
            per_label = tuple(thresholds)
            table[label_id] = per_label
        if min_count <= 0:
            return self.full_vertex_mask
        if min_count >= len(per_label):
            return 0
        return per_label[min_count]

    # ------------------------------------------------------------------ #
    # Structural summaries
    # ------------------------------------------------------------------ #
    @property
    def label_histogram(self) -> Dict[object, int]:
        """Mapping ``label -> number of vertices carrying it`` (copy)."""
        return dict(self._label_histogram)

    def label_count(self, label: object) -> int:
        """Number of vertices carrying ``label``."""
        return self._label_histogram.get(label, 0)

    def distinct_labels(self) -> frozenset:
        """Set of distinct labels present in the graph."""
        return frozenset(self._label_histogram)

    def vertices_with_label(self, label: object) -> Tuple[int, ...]:
        """All vertices carrying ``label`` (possibly empty)."""
        return self._vertices_by_label.get(label, ())

    def degree_sequence(self) -> Tuple[int, ...]:
        """Non-increasing degree sequence (precomputed at construction)."""
        return self._degree_sequence

    def average_degree(self) -> float:
        """Average vertex degree (0.0 for the empty graph)."""
        if not self._labels:
            return 0.0
        return 2.0 * len(self._edges) / len(self._labels)

    def density(self) -> float:
        """Edge density ``2m / (n (n-1))`` (0.0 for graphs with < 2 vertices)."""
        n = len(self._labels)
        if n < 2:
            return 0.0
        return 2.0 * len(self._edges) / (n * (n - 1))

    def is_connected(self) -> bool:
        """Return ``True`` if the graph is connected (empty graph is connected)."""
        n = len(self._labels)
        if n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == n

    def connected_components(self) -> List[Tuple[int, ...]]:
        """Return the vertex sets of the connected components."""
        unseen = set(range(len(self._labels)))
        components: List[Tuple[int, ...]] = []
        while unseen:
            root = unseen.pop()
            component = {root}
            stack = [root]
            while stack:
                u = stack.pop()
                for v in self._adjacency[u]:
                    if v in unseen:
                        unseen.discard(v)
                        component.add(v)
                        stack.append(v)
            components.append(tuple(sorted(component)))
        return components

    # ------------------------------------------------------------------ #
    # Packed (CSR) round-trip
    # ------------------------------------------------------------------ #
    def to_packed(self):
        """Pack into a :class:`~repro.graphs.packed.PackedGraph` (CSR views)."""
        from .packed import PackedGraph

        return PackedGraph.from_graph(self)

    @classmethod
    def from_packed(cls, packed) -> "Graph":
        """Rebuild a full graph from a :class:`~repro.graphs.packed.PackedGraph`.

        The inverse of :meth:`to_packed`, also reached from zero-copy views
        over a sealed arena: adjacency sets come straight from the CSR
        slices, and the bitmask core is built by
        :meth:`_init_bitmask_core_from_csr` without per-vertex Python lists.
        The result is indistinguishable from ``Graph(labels, edges)``.
        """
        return cls._from_csr_lists(
            packed.indptr.tolist(),
            packed.indices.tolist(),
            packed.label_codes.tolist(),
            packed.label_table,
            packed.graph_id,
            arrays=(packed.indptr, packed.indices, packed.label_codes),
        )

    @classmethod
    def _from_csr_lists(
        cls,
        ptr: Sequence[int],
        idx: Sequence[int],
        codes: Sequence[int],
        table: Tuple[object, ...],
        graph_id: object | None,
        arrays=None,
    ) -> "Graph":
        """Build a graph from plain CSR sequences (rows sorted ascending).

        Shared by :meth:`from_packed` and the struct-unpacking record decoder
        (:meth:`PackedGraph.decode_graph`); ``arrays`` optionally carries the
        ``(indptr, indices, label_codes)`` numpy triple so the vectorised
        mask constructor can reuse it above the scalar cutoff instead of
        round-tripping the lists through ``np.asarray``.
        """
        global _CONSTRUCTIONS
        _CONSTRUCTIONS += 1
        self = cls.__new__(cls)
        self._labels = tuple([table[code] for code in codes])
        n = len(codes)
        rows = [idx[ptr[v] : ptr[v + 1]] for v in range(n)]
        self._adjacency = tuple([frozenset(row) for row in rows])
        # CSR rows are sorted, so scanning each row for the u < v half yields
        # the canonical sorted edge tuple directly.
        self._edges = tuple(
            [(u, v) for u, row in enumerate(rows) for v in row if u < v]
        )
        self._graph_id = graph_id
        # Group vertices by label code first: one pass over the codes, then
        # one small dict per *distinct* label instead of per vertex.
        per_code: List[List[int]] = [[] for _ in table]
        for vertex, code in enumerate(codes):
            per_code[code].append(vertex)
        histogram: Dict[object, int] = {}
        by_label: Dict[object, Tuple[int, ...]] = {}
        for code, vertices in enumerate(per_code):
            if vertices:
                label = table[code]
                histogram[label] = len(vertices)
                by_label[label] = tuple(vertices)
        self._label_histogram = histogram
        self._vertices_by_label = by_label
        self._hash = None
        if n <= _CSR_SCALAR_CUTOFF:
            self._init_bitmask_core_scalar_csr(ptr, rows, per_code, table)
        else:
            if arrays is None:
                import numpy as np

                arrays = (
                    np.asarray(ptr, dtype=np.int64),
                    np.asarray(idx, dtype=np.int32),
                    np.asarray(codes, dtype=np.int32),
                )
            self._init_bitmask_core_from_csr(*arrays, table)
        return self

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def with_id(self, graph_id: object) -> "Graph":
        """Return a copy of this graph carrying ``graph_id``.

        Copies every ``__slots__`` field generically, so a field added to the
        class (packed caches, new mask tables, ...) can never silently fall
        off the clone path; the regression test iterates the same tuple.
        """
        clone = Graph.__new__(Graph)
        for slot in Graph.__slots__:
            object.__setattr__(clone, slot, getattr(self, slot))
        clone._graph_id = graph_id
        return clone

    def induced_subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Return the subgraph induced by ``vertices`` (relabelled to 0..k-1)."""
        selected = sorted(set(vertices))
        for v in selected:
            if not self.has_vertex(v):
                raise GraphError(f"vertex {v} not in graph")
        remap = {old: new for new, old in enumerate(selected)}
        labels = [self._labels[v] for v in selected]
        edges = [
            (remap[u], remap[v])
            for u, v in self._edges
            if u in remap and v in remap
        ]
        return Graph(labels=labels, edges=edges)

    def edge_subgraph(self, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """Return the subgraph spanned by ``edges`` (vertices relabelled)."""
        chosen: List[Edge] = []
        vertex_set: set = set()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u}, {v}) not in graph")
            chosen.append(_normalize_edge(u, v))
            vertex_set.add(u)
            vertex_set.add(v)
        selected = sorted(vertex_set)
        remap = {old: new for new, old in enumerate(selected)}
        labels = [self._labels[v] for v in selected]
        remapped = [(remap[u], remap[v]) for u, v in sorted(set(chosen))]
        return Graph(labels=labels, edges=remapped)

    def relabelled(self, mapping: Dict[int, object]) -> "Graph":
        """Return a copy where vertices in ``mapping`` get new labels."""
        labels = list(self._labels)
        for vertex, label in mapping.items():
            if not self.has_vertex(vertex):
                raise GraphError(f"vertex {vertex} not in graph")
            labels[vertex] = label
        return Graph(labels=labels, edges=self._edges, graph_id=self._graph_id)

    # ------------------------------------------------------------------ #
    # Identity, hashing, representation
    # ------------------------------------------------------------------ #
    def structure_key(self) -> Tuple[Tuple[object, ...], Tuple[Edge, ...]]:
        """Key capturing the exact labelled structure (not isomorphism class)."""
        return (self._labels, self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._labels == other._labels and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._labels, self._edges))
        return self._hash

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._labels)))

    def __repr__(self) -> str:
        ident = f" id={self._graph_id!r}" if self._graph_id is not None else ""
        return f"<Graph{ident} |V|={self.order} |E|={self.size}>"
