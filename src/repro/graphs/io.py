"""Reading and writing graph datasets in a simple text transaction format.

The format is the line-oriented "transaction" format widely used by graph
indexing tools (gIndex, GraphGrepSX, Grapes benchmarks):

.. code-block:: text

    t # 0
    v 0 C
    v 1 O
    e 0 1
    t # 1
    ...

* ``t # <id>`` starts a new graph,
* ``v <vertex> <label>`` declares a vertex (ids must be ``0..n-1`` in order),
* ``e <u> <v>`` declares an undirected edge.

Blank lines and lines starting with ``%`` or ``//`` are ignored.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..exceptions import GraphFormatError
from .dataset import GraphDataset
from .graph import Graph

__all__ = [
    "read_transaction_text",
    "write_transaction_text",
    "load_dataset",
    "save_dataset",
    "graph_to_text",
    "graph_from_text",
]

PathLike = Union[str, Path]


def _parse_lines(lines: Iterable[str]) -> List[Graph]:
    graphs: List[Graph] = []
    labels: List[object] | None = None
    edges: List[tuple] = []
    current_id: object | None = None

    def flush() -> None:
        nonlocal labels, edges, current_id
        if labels is None:
            return
        try:
            graphs.append(Graph(labels=labels, edges=edges, graph_id=current_id))
        except Exception as exc:  # re-raise with format context
            raise GraphFormatError(f"invalid graph {current_id!r}: {exc}") from exc
        labels, edges, current_id = None, [], None

    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("%") or line.startswith("//"):
            continue
        parts = line.split()
        tag = parts[0]
        if tag == "t":
            flush()
            labels = []
            edges = []
            current_id = parts[-1] if len(parts) > 1 else len(graphs)
        elif tag == "v":
            if labels is None:
                raise GraphFormatError(f"line {line_no}: vertex before any 't' record")
            if len(parts) < 3:
                raise GraphFormatError(f"line {line_no}: malformed vertex record {line!r}")
            vertex = int(parts[1])
            if vertex != len(labels):
                raise GraphFormatError(
                    f"line {line_no}: vertex ids must be consecutive "
                    f"(expected {len(labels)}, got {vertex})"
                )
            labels.append(parts[2])
        elif tag == "e":
            if labels is None:
                raise GraphFormatError(f"line {line_no}: edge before any 't' record")
            if len(parts) < 3:
                raise GraphFormatError(f"line {line_no}: malformed edge record {line!r}")
            edges.append((int(parts[1]), int(parts[2])))
        else:
            raise GraphFormatError(f"line {line_no}: unknown record type {tag!r}")
    flush()
    return graphs


def read_transaction_text(source: Union[str, TextIO]) -> List[Graph]:
    """Parse graphs from a transaction-format string or open text stream."""
    if isinstance(source, str):
        source = _io.StringIO(source)
    return _parse_lines(source)


def write_transaction_text(graphs: Iterable[Graph], stream: TextIO) -> None:
    """Write ``graphs`` to ``stream`` in transaction format."""
    for index, graph in enumerate(graphs):
        graph_id = graph.graph_id if graph.graph_id is not None else index
        stream.write(f"t # {graph_id}\n")
        for vertex in graph.vertices():
            stream.write(f"v {vertex} {graph.label(vertex)}\n")
        for u, v in graph.edges:
            stream.write(f"e {u} {v}\n")


def graph_to_text(graph: Graph) -> str:
    """Serialise a single graph to transaction-format text."""
    buffer = _io.StringIO()
    write_transaction_text([graph], buffer)
    return buffer.getvalue()


def graph_from_text(text: str) -> Graph:
    """Parse a single graph from transaction-format text."""
    graphs = read_transaction_text(text)
    if len(graphs) != 1:
        raise GraphFormatError(f"expected exactly one graph, found {len(graphs)}")
    return graphs[0]


def load_dataset(path: PathLike, name: str | None = None) -> GraphDataset:
    """Load a :class:`GraphDataset` from a transaction-format file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        graphs = _parse_lines(handle)
    if not graphs:
        raise GraphFormatError(f"{path}: no graphs found")
    return GraphDataset(graphs, name=name or path.stem)


def save_dataset(dataset: GraphDataset, path: PathLike) -> None:
    """Write a :class:`GraphDataset` to ``path`` in transaction format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        write_transaction_text(dataset, handle)
