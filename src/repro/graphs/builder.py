"""Incremental construction of :class:`~repro.graphs.graph.Graph` objects.

The core :class:`Graph` type is immutable by design (matchers, indexes and the
cache all rely on graphs never changing under them).  :class:`GraphBuilder`
provides the mutable construction phase: vertices may be added with arbitrary
hashable names, edges refer to those names, and :meth:`GraphBuilder.build`
produces the frozen integer-vertex graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from ..exceptions import GraphError
from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable builder producing immutable :class:`Graph` instances.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_vertex("a", label="C")
    >>> builder.add_vertex("b", label="O")
    >>> builder.add_edge("a", "b")
    >>> g = builder.build()
    >>> g.order, g.size
    (2, 1)
    """

    def __init__(self, graph_id: object | None = None) -> None:
        self._graph_id = graph_id
        self._names: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self._labels: List[object] = []
        self._edges: List[Tuple[int, int]] = []
        self._edge_set: set = set()

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Number of vertices added so far."""
        return len(self._names)

    @property
    def size(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    def has_vertex(self, name: Hashable) -> bool:
        """Return ``True`` if a vertex called ``name`` was added."""
        return name in self._index

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Return ``True`` if the edge ``(u, v)`` was added."""
        if u not in self._index or v not in self._index:
            return False
        a, b = self._index[u], self._index[v]
        return (min(a, b), max(a, b)) in self._edge_set

    # ------------------------------------------------------------------ #
    def add_vertex(self, name: Hashable, label: object) -> int:
        """Add a vertex called ``name`` with ``label``; return its integer id.

        Adding an existing name with the same label is a no-op; adding it with
        a different label raises :class:`GraphError`.
        """
        if name in self._index:
            vertex = self._index[name]
            if self._labels[vertex] != label:
                raise GraphError(
                    f"vertex {name!r} already exists with label "
                    f"{self._labels[vertex]!r} (got {label!r})"
                )
            return vertex
        vertex = len(self._names)
        self._names.append(name)
        self._index[name] = vertex
        self._labels.append(label)
        return vertex

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the undirected edge ``(u, v)``; both endpoints must exist.

        Duplicate edges are ignored; self-loops raise :class:`GraphError`.
        """
        if u not in self._index:
            raise GraphError(f"unknown vertex {u!r}")
        if v not in self._index:
            raise GraphError(f"unknown vertex {v!r}")
        a, b = self._index[u], self._index[v]
        if a == b:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        key = (min(a, b), max(a, b))
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self._edges.append(key)

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def vertex_id(self, name: Hashable) -> int:
        """Return the integer id assigned to ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise GraphError(f"unknown vertex {name!r}") from None

    def vertex_names(self) -> Tuple[Hashable, ...]:
        """Names in insertion order (index ``i`` is vertex id ``i``)."""
        return tuple(self._names)

    # ------------------------------------------------------------------ #
    def build(self, graph_id: object | None = None) -> Graph:
        """Freeze the builder into a :class:`Graph`.

        The builder remains usable afterwards (e.g. to keep growing a graph
        and emit successive snapshots).
        """
        return Graph(
            labels=list(self._labels),
            edges=list(self._edges),
            graph_id=self._graph_id if graph_id is None else graph_id,
        )

    def __repr__(self) -> str:
        return f"<GraphBuilder |V|={self.order} |E|={self.size}>"
