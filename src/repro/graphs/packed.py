"""Zero-copy packed graph representation: CSR adjacency over numpy views.

A :class:`PackedGraph` is the write-once, position-independent form of a
:class:`~repro.graphs.graph.Graph`: adjacency as compressed sparse rows
(little-endian ``int64`` row pointers + ``int32`` column indices, both
directions of every undirected edge), one ``int32`` label code per vertex
into a small per-graph label table, and the degree array — all exposed as
numpy arrays.  The representation exists for two reasons:

* **zero-copy storage** — :meth:`PackedGraph.to_bytes` emits a single
  contiguous record that :meth:`PackedGraph.from_buffer` re-opens as *views*
  over any buffer implementing the buffer protocol, including a read-only
  ``np.memmap`` over a :class:`~repro.core.backends.arena.GraphArena`
  segment shared by many processes (the pystow CSR-``memmap`` idiom);
* **fast rehydration** — :meth:`PackedGraph.to_graph` rebuilds a full
  :class:`Graph` through :meth:`Graph.from_packed`, whose bitmask core is
  constructed from the CSR slices with vectorised numpy bit-set operations
  instead of per-vertex Python neighbour lists.

Instances are immutable: every attribute write raises, and owned arrays are
flagged non-writeable (arena-backed views inherit read-only pages from the
mmap).  The static analyzer enforces the same contract at review time (rule
``REPRO007``).
"""

from __future__ import annotations

import json
import struct
from collections import OrderedDict
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import GraphError
from .graph import _CSR_SCALAR_CUTOFF, Graph

__all__ = [
    "PackedGraph",
    "PackedGraphView",
    "INDPTR_DTYPE",
    "INDEX_DTYPE",
    "pack_graphs",
    "table_cache_evictions",
]

#: Explicit little-endian dtypes: packed records are byte-identical across
#: hosts, and a record written on one machine attaches on any other.
INDPTR_DTYPE = np.dtype("<i8")
INDEX_DTYPE = np.dtype("<i4")

#: Record header: magic, vertex count, CSR entry count, label-blob bytes,
#: graph-id-blob bytes (five little-endian int64 fields, 40 bytes).
_HEADER_FIELDS = 5
_HEADER_BYTES = _HEADER_FIELDS * 8
_MAGIC = 0x3152_4750  # "PGR1" read as a little-endian uint32.

#: Records are padded to an 8-byte multiple so int64 views over an arena
#: stay aligned no matter what was appended before them.
_ALIGN = 8

#: Memoised label-table parses keyed by the raw JSON blob.  Workload graphs
#: draw their labels from a dataset's small alphabet, so distinct blobs
#: number in the hundreds while records number in the millions; the LRU cap
#: bounds a never-repeating label universe to a fixed footprint instead of
#: letting the memo grow without limit.
_TABLE_CACHE: "OrderedDict[bytes, Tuple[object, ...]]" = OrderedDict()
_TABLE_CACHE_MAX = 4096
_table_cache_evictions = 0


def _cached_label_table(table_blob: bytes) -> Tuple[object, ...]:
    """Parse (or recall) the JSON label table for ``table_blob``, LRU-bounded."""
    global _table_cache_evictions
    table = _TABLE_CACHE.get(table_blob)
    if table is not None:
        _TABLE_CACHE.move_to_end(table_blob)
        return table
    table = tuple(json.loads(table_blob))
    _TABLE_CACHE[table_blob] = table
    if len(_TABLE_CACHE) > _TABLE_CACHE_MAX:
        _TABLE_CACHE.popitem(last=False)
        _table_cache_evictions += 1
    return table


def table_cache_evictions() -> int:
    """Number of label-table memo entries evicted by the LRU cap so far."""
    return _table_cache_evictions


def _pad(nbytes: int) -> int:
    return (-nbytes) % _ALIGN


class PackedGraph:
    """Frozen CSR snapshot of one labelled graph (see module docstring).

    Attributes
    ----------
    indptr:
        ``int64`` row-pointer array of length ``order + 1``; the neighbours
        of vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, sorted
        ascending.
    indices:
        ``int32`` column indices (both directions, so ``len(indices) ==
        2 * size``).
    label_codes:
        ``int32`` per-vertex index into :attr:`label_table`.
    label_table:
        Tuple of the graph's distinct labels in first-occurrence order.
    """

    __slots__ = (
        "indptr",
        "indices",
        "label_codes",
        "label_table",
        "degrees",
        "graph_id",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        label_codes: np.ndarray,
        label_table: Tuple[object, ...],
        graph_id: object | None = None,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=INDPTR_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        label_codes = np.ascontiguousarray(label_codes, dtype=INDEX_DTYPE)
        n = len(label_codes)
        if len(indptr) != n + 1 or int(indptr[0]) != 0:
            raise GraphError("packed graph: indptr must have order + 1 entries from 0")
        if len(indices) != int(indptr[-1]):
            raise GraphError("packed graph: indices length disagrees with indptr[-1]")
        for array in (indptr, indices, label_codes):
            if array.flags.writeable:
                array.flags.writeable = False
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "label_codes", label_codes)
        object.__setattr__(self, "label_table", tuple(label_table))
        degrees = np.diff(indptr).astype(INDEX_DTYPE)
        degrees.flags.writeable = False
        object.__setattr__(self, "degrees", degrees)
        object.__setattr__(self, "graph_id", graph_id)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PackedGraph is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("PackedGraph is immutable")

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Number of vertices."""
        return len(self.label_codes)

    @property
    def size(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted ``int32`` neighbour ids of ``vertex`` (a zero-copy slice)."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def labels(self) -> Tuple[object, ...]:
        """Per-vertex labels (materialised from the label table)."""
        table = self.label_table
        return tuple(table[code] for code in self.label_codes.tolist())

    # ------------------------------------------------------------------ #
    # CSR-native candidate/adjacency protocol (matching without a Graph)
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Degree of ``vertex`` (one read of the precomputed degree array)."""
        return int(self.degrees[vertex])

    def has_edge(self, u: int, v: int) -> bool:
        """Edge test via binary search on the sorted CSR row of ``u``."""
        row = self.indices[self.indptr[u] : self.indptr[u + 1]]
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and int(row[pos]) == v

    def common_neighbors(self, u: int, v: int) -> np.ndarray:
        """Sorted intersection of two CSR rows (two-pointer merge in numpy).

        CSR rows are sorted and duplicate-free, so ``assume_unique`` lets
        numpy run the linear merge instead of sorting the concatenation.
        """
        return np.intersect1d(self.neighbors(u), self.neighbors(v), assume_unique=True)

    def label_code(self, vertex: int) -> int:
        """Per-graph label code of ``vertex`` (index into :attr:`label_table`)."""
        return int(self.label_codes[vertex])

    def vertices_with_label(self, label: object) -> np.ndarray:
        """Vertices carrying ``label``: one code lookup + one vectorised filter."""
        try:
            code = self.label_table.index(label)
        except ValueError:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self.label_codes == code)[0]

    # ------------------------------------------------------------------ #
    # Graph round-trip
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: Graph) -> "PackedGraph":
        """Pack a :class:`Graph` (also available as :meth:`Graph.to_packed`)."""
        n = graph.order
        table: list = []
        code_of: dict = {}
        codes = np.empty(n, dtype=INDEX_DTYPE)
        for vertex, label in enumerate(graph.labels):
            code = code_of.get(label)
            if code is None:
                code = len(table)
                code_of[label] = code
                table.append(label)
            codes[vertex] = code
        indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
        for vertex in range(n):
            indptr[vertex + 1] = indptr[vertex] + graph.degree(vertex)
        indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
        for vertex in range(n):
            start, stop = int(indptr[vertex]), int(indptr[vertex + 1])
            indices[start:stop] = sorted(graph.neighbors(vertex))
        return cls(indptr, indices, codes, tuple(table), graph_id=graph.graph_id)

    def to_graph(self) -> Graph:
        """Rebuild a full :class:`Graph` (bitmask core built from CSR slices)."""
        return Graph.from_packed(self)

    # ------------------------------------------------------------------ #
    # Byte-record round-trip (arena storage)
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize into one contiguous, 8-byte-aligned little-endian record."""
        label_blob = json.dumps(list(self.label_table)).encode("utf-8")
        id_blob = json.dumps(self.graph_id).encode("utf-8")
        header = np.array(
            [_MAGIC, self.order, len(self.indices), len(label_blob), len(id_blob)],
            dtype=INDPTR_DTYPE,
        )
        parts = [
            header.tobytes(),
            self.indptr.tobytes(),
            self.indices.tobytes(),
            self.label_codes.tobytes(),
            label_blob,
            id_blob,
        ]
        payload = b"".join(parts)
        return payload + b"\x00" * _pad(len(payload))

    @classmethod
    def packed_nbytes(cls, buffer, offset: int = 0) -> int:
        """Total record length (with padding) of the record at ``offset``."""
        header = np.frombuffer(buffer, dtype=INDPTR_DTYPE, count=_HEADER_FIELDS, offset=offset)
        if int(header[0]) != _MAGIC:
            raise GraphError(f"packed graph record at offset {offset}: bad magic")
        n, nnz, label_len, id_len = (int(x) for x in header[1:])
        raw = _HEADER_BYTES + (n + 1) * 8 + nnz * 4 + n * 4 + label_len + id_len
        return raw + _pad(raw)

    @classmethod
    def from_buffer(cls, buffer, offset: int = 0) -> "PackedGraph":
        """Open the record at ``offset`` as zero-copy views over ``buffer``.

        ``buffer`` is anything with the buffer protocol — ``bytes``, a
        ``memoryview``, or a read-only ``np.memmap`` over a sealed arena
        segment.  No array data is copied; only the (small) label table and
        graph id are materialised as Python objects.
        """
        header = np.frombuffer(buffer, dtype=INDPTR_DTYPE, count=_HEADER_FIELDS, offset=offset)
        if int(header[0]) != _MAGIC:
            raise GraphError(f"packed graph record at offset {offset}: bad magic")
        n, nnz, label_len, id_len = (int(x) for x in header[1:])
        pos = offset + _HEADER_BYTES
        indptr = np.frombuffer(buffer, dtype=INDPTR_DTYPE, count=n + 1, offset=pos)
        pos += (n + 1) * 8
        indices = np.frombuffer(buffer, dtype=INDEX_DTYPE, count=nnz, offset=pos)
        pos += nnz * 4
        codes = np.frombuffer(buffer, dtype=INDEX_DTYPE, count=n, offset=pos)
        pos += n * 4
        view = memoryview(buffer)
        label_table = _cached_label_table(bytes(view[pos : pos + label_len]))
        pos += label_len
        graph_id = json.loads(bytes(view[pos : pos + id_len]).decode("utf-8"))
        # Trusted-record fast path: frombuffer already yields contiguous,
        # read-only arrays of the right dtype with internally-consistent
        # lengths (the header wrote them), so the validating constructor's
        # copies and checks are skipped.
        self = object.__new__(cls)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "label_codes", codes)
        object.__setattr__(self, "label_table", label_table)
        degrees = np.diff(indptr).astype(INDEX_DTYPE)
        degrees.flags.writeable = False
        object.__setattr__(self, "degrees", degrees)
        object.__setattr__(self, "graph_id", graph_id)
        return self

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PackedGraph":
        """Deserialize one record produced by :meth:`to_bytes`."""
        return cls.from_buffer(payload, 0)

    @classmethod
    def decode_graph(cls, buffer, offset: int = 0) -> Graph:
        """Decode the record at ``offset`` straight into a :class:`Graph`.

        The hot deserialisation path of the multi-process workers and the
        mmap backend's ``get()``: for the small graphs that dominate query
        workloads, ``struct.unpack_from`` into plain tuples feeding the
        scalar bitmask core skips every numpy array construction, which is
        roughly twice as fast as ``from_buffer(...).to_graph()``.  Above the
        scalar cutoff the vectorised view route wins and is used instead.
        """
        magic, n, nnz, label_len, id_len = struct.unpack_from("<5q", buffer, offset)
        if magic != _MAGIC:
            raise GraphError(f"packed graph record at offset {offset}: bad magic")
        if n > _CSR_SCALAR_CUTOFF:
            return cls.from_buffer(buffer, offset).to_graph()
        pos = offset + _HEADER_BYTES
        indptr = struct.unpack_from(f"<{n + 1}q", buffer, pos)
        pos += (n + 1) * 8
        indices = struct.unpack_from(f"<{nnz}i", buffer, pos)
        pos += nnz * 4
        codes = struct.unpack_from(f"<{n}i", buffer, pos)
        pos += n * 4
        if type(buffer) is not bytes:
            buffer = memoryview(buffer)
        label_table = _cached_label_table(bytes(buffer[pos : pos + label_len]))
        pos += label_len
        graph_id = json.loads(bytes(buffer[pos : pos + id_len]))
        return Graph._from_csr_lists(indptr, indices, codes, label_table, graph_id)

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedGraph):
            return NotImplemented
        return (
            self.label_table == other.label_table
            and np.array_equal(self.label_codes, other.label_codes)
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.label_table, self.label_codes.tobytes(), self.indices.tobytes()))

    def __repr__(self) -> str:
        ident = f" id={self.graph_id!r}" if self.graph_id is not None else ""
        return f"<PackedGraph{ident} |V|={self.order} |E|={self.size}>"


def pack_graphs(graphs: Sequence[Graph]) -> Tuple[bytes, ...]:
    """Pack a sequence of graphs into byte records (convenience helper)."""
    return tuple(graph.to_packed().to_bytes() for graph in graphs)


class PackedGraphView(Graph):
    """A :class:`Graph` facade over a :class:`PackedGraph` — CSR-native matching.

    The single matcher-facing adapter of the packed serving path: every
    matcher (VF2/VF2+/Ullmann/GraphQL) and pipeline stage takes a ``Graph``,
    and a view *is* one — ``isinstance``, equality, hashing and every read
    method behave identically — but nothing is derived from the CSR record
    until a caller actually needs it:

    * the hot matcher reads (``degree``, ``has_edge``, ``order``/``size``)
      answer straight off the packed arrays — ``has_edge`` is a
      ``searchsorted`` probe of the sorted int32 row slice, not a set lookup;
    * the **bitmask core** (neighbour/label/degree-threshold masks) is
      materialised on first touch via the same scalar/vectorised CSR
      constructors ``Graph._from_csr_lists`` dispatches to, so masks — and
      therefore matcher work counters — are field-identical to a decoded
      ``Graph``;
    * the **structure tuples** (``labels``/``edges``/adjacency sets and the
      label histogram) are materialised separately, only for callers that
      walk them (feature extraction, hashing, the text codecs).

    Materialised fields stick to the instance, so a long-lived view over a
    sealed arena record (see :meth:`GraphArena.view_at
    <repro.core.backends.arena.GraphArena.view_at>`) pays each derivation
    once per process — and because its cached ``_hash`` survives with it,
    per-(pattern, target) matcher plan caches keyed on the view keep hitting
    across requests.  Lazy writes are idempotent derivations of the immutable
    record, so concurrent readers may race them harmlessly.
    """

    __slots__ = ("_source",)

    #: Fields derived together from the CSR record, as two independent groups.
    _STRUCTURE_FIELDS = frozenset(
        ("_labels", "_adjacency", "_edges", "_label_histogram", "_vertices_by_label")
    )
    _MASK_CORE_FIELDS = frozenset(
        (
            "_neighbor_masks",
            "_label_ids",
            "_label_masks",
            "_label_id_counts",
            "_degree_sequence",
            "_degree_prefix_masks",
            "_nbr_label_ge_masks",
        )
    )

    def __init__(self, source: PackedGraph) -> None:
        self._source = source
        self._graph_id = source.graph_id
        self._hash = None

    def __getattr__(self, name: str):
        # Only ever reached for *unset* slots (set ones resolve normally).
        if name in PackedGraphView._MASK_CORE_FIELDS:
            self._materialize_mask_core()
        elif name in PackedGraphView._STRUCTURE_FIELDS:
            self._materialize_structure()
        else:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        return object.__getattribute__(self, name)

    # ------------------------------------------------------------------ #
    # Lazy materialisation (mirrors Graph._from_csr_lists field for field)
    # ------------------------------------------------------------------ #
    def _materialize_structure(self) -> None:
        source = self._source
        ptr = source.indptr.tolist()
        idx = source.indices.tolist()
        codes = source.label_codes.tolist()
        table = source.label_table
        n = len(codes)
        self._labels = tuple([table[code] for code in codes])
        rows = [idx[ptr[v] : ptr[v + 1]] for v in range(n)]
        self._adjacency = tuple([frozenset(row) for row in rows])
        self._edges = tuple(
            [(u, v) for u, row in enumerate(rows) for v in row if u < v]
        )
        per_code: list = [[] for _ in table]
        for vertex, code in enumerate(codes):
            per_code[code].append(vertex)
        histogram: dict = {}
        by_label: dict = {}
        for code, vertices in enumerate(per_code):
            if vertices:
                label = table[code]
                histogram[label] = len(vertices)
                by_label[label] = tuple(vertices)
        self._label_histogram = histogram
        self._vertices_by_label = by_label

    def _materialize_mask_core(self) -> None:
        source = self._source
        n = source.order
        if n <= _CSR_SCALAR_CUTOFF:
            ptr = source.indptr.tolist()
            idx = source.indices.tolist()
            codes = source.label_codes.tolist()
            rows = [idx[ptr[v] : ptr[v + 1]] for v in range(n)]
            per_code: list = [[] for _ in source.label_table]
            for vertex, code in enumerate(codes):
                per_code[code].append(vertex)
            self._init_bitmask_core_scalar_csr(ptr, rows, per_code, source.label_table)
        else:
            self._init_bitmask_core_from_csr(
                source.indptr, source.indices, source.label_codes, source.label_table
            )

    # ------------------------------------------------------------------ #
    # CSR-native reads (no materialisation)
    # ------------------------------------------------------------------ #
    @property
    def packed(self) -> PackedGraph:
        """The backing CSR record."""
        return self._source

    @property
    def order(self) -> int:
        return self._source.order

    @property
    def size(self) -> int:
        return self._source.size

    @property
    def full_vertex_mask(self) -> int:
        return (1 << self._source.order) - 1

    def vertices(self) -> range:
        return range(self._source.order)

    def label(self, vertex: int) -> object:
        return self._source.label_table[int(self._source.label_codes[vertex])]

    def degree(self, vertex: int) -> int:
        return int(self._source.degrees[vertex])

    def has_edge(self, u: int, v: int) -> bool:
        return self._source.has_edge(u, v)

    def has_vertex(self, vertex: int) -> bool:
        return 0 <= vertex < self._source.order

    def common_neighbors(self, u: int, v: int) -> np.ndarray:
        """Sorted common neighbours (CSR two-pointer; see :class:`PackedGraph`)."""
        return self._source.common_neighbors(u, v)

    def average_degree(self) -> float:
        if not self._source.order:
            return 0.0
        return 2.0 * self._source.size / self._source.order

    def density(self) -> float:
        n = self._source.order
        if n < 2:
            return 0.0
        return 2.0 * self._source.size / (n * (n - 1))

    def __len__(self) -> int:
        return self._source.order

    def __iter__(self):
        return iter(range(self._source.order))

    # ------------------------------------------------------------------ #
    # Round-trips and identity
    # ------------------------------------------------------------------ #
    def to_packed(self) -> PackedGraph:
        """Packing a view is free: return the backing record."""
        return self._source

    def with_id(self, graph_id: object) -> "PackedGraphView":
        """A fresh view carrying ``graph_id`` (record re-labelled, not copied).

        The validating :class:`PackedGraph` constructor recognises the arrays
        as contiguous read-only views and adopts them without copying.
        """
        source = self._source
        if graph_id == source.graph_id:
            return PackedGraphView(source)
        return PackedGraphView(
            PackedGraph(
                source.indptr,
                source.indices,
                source.label_codes,
                source.label_table,
                graph_id=graph_id,
            )
        )

    def __reduce__(self):
        # Views can wrap borrowed mmap pages; pickle the portable record.
        return (_view_from_record, (self._source.to_bytes(),))

    def __repr__(self) -> str:
        ident = f" id={self._graph_id!r}" if self._graph_id is not None else ""
        return f"<PackedGraphView{ident} |V|={self.order} |E|={self.size}>"


def _view_from_record(payload: bytes) -> PackedGraphView:
    return PackedGraphView(PackedGraph.from_bytes(payload))
