"""Method M abstraction (pluggable FTV / SI back ends) and query execution."""

from .base import Method, VerificationRecord
from .executor import QueryExecution, execute_query, verify_candidates
from .registry import available_methods, method_by_name, register_method
from .si import SIMethod

__all__ = [
    "Method",
    "VerificationRecord",
    "QueryExecution",
    "execute_query",
    "verify_candidates",
    "SIMethod",
    "available_methods",
    "method_by_name",
    "register_method",
]
