"""Method M abstraction: the pluggable query-processing back end.

GraphCache is a front end that can expedite *any* subgraph-query processing
method (§4): filter-then-verify (FTV) methods with a dataset index, or direct
subgraph-isomorphism (SI) methods that test the query against every dataset
graph.  Both kinds are modelled by :class:`Method`:

* :meth:`Method.candidates` is the filtering stage ``Mfilter`` — it returns
  the candidate set ``CS_M(g)`` of dataset-graph ids that may contain the
  query.  SI methods return the whole dataset.
* :meth:`Method.verify` is the verification stage ``Mverifier`` — a single
  sub-iso test of the query against one dataset graph.

The bundled implementations live in :mod:`repro.ftv` (GraphGrepSX, Grapes,
CT-Index) and :mod:`repro.methods.si` (VF2, VF2+, GraphQL, Ullmann).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import MatchOutcome, SubgraphMatcher

__all__ = ["Method", "VerificationRecord"]


@dataclass(frozen=True)
class VerificationRecord:
    """Outcome of verifying one query against one dataset graph."""

    graph_id: int
    matched: bool
    elapsed_s: float
    nodes_expanded: int


class Method(abc.ABC):
    """A pluggable subgraph-query processing method ("Method M").

    Parameters
    ----------
    dataset:
        The dataset the method answers queries against.
    matcher:
        The sub-iso algorithm used as ``Mverifier``.
    """

    #: Short method name used in reports ("ggsx", "ctindex", "vf2", ...).
    name: str = "abstract"

    #: Whether the method can serve supergraph queries (answers are dataset
    #: graphs *contained in* the query).  FTV indexes are built for subgraph
    #: filtering only; SI methods support both directions.
    supports_supergraph: bool = False

    #: Effective verification parallelism.  The paper evaluates "Grapes6"
    #: (6 verification threads); in this single-threaded reproduction the
    #: executor divides verification wall-clock time by this factor, which is
    #: the documented stand-in for multi-threaded verification.
    verify_parallelism: int = 1

    def __init__(self, dataset: GraphDataset, matcher: SubgraphMatcher) -> None:
        self._dataset = dataset
        self._matcher = matcher

    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> GraphDataset:
        """The dataset this method answers queries against."""
        return self._dataset

    @property
    def matcher(self) -> SubgraphMatcher:
        """The sub-iso algorithm used for verification."""
        return self._matcher

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def candidates(self, query: Graph) -> frozenset:
        """Return the candidate set ``CS_M(query)`` of dataset-graph ids."""

    def verify(self, query: Graph, graph_id: int) -> VerificationRecord:
        """Run one sub-iso test of ``query`` against dataset graph ``graph_id``."""
        outcome: MatchOutcome = self._matcher.match(
            query, self._dataset[graph_id], want_embedding=False
        )
        return VerificationRecord(
            graph_id=graph_id,
            matched=outcome.matched,
            elapsed_s=outcome.elapsed_s,
            nodes_expanded=outcome.nodes_expanded,
        )

    def verify_supergraph(self, query: Graph, graph_id: int) -> VerificationRecord:
        """Sub-iso test of dataset graph ``graph_id`` *inside* ``query``.

        This is the verification direction of supergraph queries: the answer
        set contains the dataset graphs that are subgraphs of the query.
        """
        outcome: MatchOutcome = self._matcher.match(
            self._dataset[graph_id], query, want_embedding=False
        )
        return VerificationRecord(
            graph_id=graph_id,
            matched=outcome.matched,
            elapsed_s=outcome.elapsed_s,
            nodes_expanded=outcome.nodes_expanded,
        )

    def rebind_dataset(self, dataset: GraphDataset) -> None:
        """Swap in an equivalent dataset (same ids, same labelled graphs).

        The multi-process serving path uses this after a fork: workers
        attach the sealed packed dataset arena
        (:class:`~repro.core.packed_dataset.PackedGraphDataset`) and rebind
        it so verification runs against shared read-only CSR pages instead
        of a per-process ``Graph`` copy.  Any index the method built keeps
        addressing the same graph ids, so only content-identical
        replacements are valid.
        """
        self._dataset = dataset

    def index_size_bytes(self) -> int:
        """Approximate index memory footprint (0 for index-less SI methods)."""
        return 0

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return (
            f"{self.name} over {self._dataset.name} "
            f"(verifier={self._matcher.name}, parallelism={self.verify_parallelism})"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
