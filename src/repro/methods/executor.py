"""Baseline query execution: run a query through Method M without GraphCache.

This executor reproduces the "no cache" path of Figure 2: filtering via
``Mfilter`` (``Method.candidates``), then one sub-iso test per candidate via
``Mverifier``.  It records the metrics the paper reports — filtering time,
verification time, number of sub-iso tests — and is used both as the baseline
in every benchmark and as the verification engine inside GraphCache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from ..graphs.graph import Graph
from .base import Method, VerificationRecord

__all__ = ["QueryExecution", "execute_query", "verify_candidates"]


@dataclass(frozen=True)
class QueryExecution:
    """Full accounting of one query executed against a Method M.

    Attributes
    ----------
    query:
        The query graph.
    candidate_ids:
        Candidate set produced by filtering (``CS_M``).
    answer_ids:
        Dataset-graph ids that contain the query.
    filter_time_s:
        Wall-clock time of the filtering stage.
    verify_time_s:
        Effective wall-clock verification time (raw time divided by the
        method's simulated verification parallelism).
    raw_verify_time_s:
        Sum of per-candidate verification times before the parallelism factor.
    subiso_tests:
        Number of sub-iso tests executed.
    nodes_expanded:
        Total search-tree nodes expanded across all verifications.
    """

    query: Graph
    candidate_ids: FrozenSet[int]
    answer_ids: FrozenSet[int]
    filter_time_s: float
    verify_time_s: float
    raw_verify_time_s: float
    subiso_tests: int
    nodes_expanded: int

    @property
    def total_time_s(self) -> float:
        """Filtering plus effective verification time."""
        return self.filter_time_s + self.verify_time_s

    @property
    def expensiveness(self) -> float:
        """Verification/filtering time ratio used by admission control (§6.2)."""
        if self.filter_time_s <= 0.0:
            return float("inf") if self.verify_time_s > 0 else 0.0
        return self.verify_time_s / self.filter_time_s


def verify_candidates(
    method: Method,
    query: Graph,
    candidate_ids: Iterable[int],
    query_mode: str = "subgraph",
) -> Tuple[FrozenSet[int], float, int, int, List[VerificationRecord]]:
    """Sub-iso test ``query`` against every candidate; return matches and costs.

    ``query_mode`` selects the containment direction: ``"subgraph"`` tests the
    query inside each candidate, ``"supergraph"`` tests each candidate inside
    the query.

    Returns
    -------
    tuple
        ``(answer_ids, raw_verify_time_s, subiso_tests, nodes_expanded, records)``.
    """
    verify = method.verify if query_mode == "subgraph" else method.verify_supergraph
    answers: set = set()
    raw_time = 0.0
    tests = 0
    nodes = 0
    records: List[VerificationRecord] = []
    for graph_id in sorted(candidate_ids):
        record = verify(query, graph_id)
        records.append(record)
        raw_time += record.elapsed_s
        tests += 1
        nodes += record.nodes_expanded
        if record.matched:
            answers.add(graph_id)
    return frozenset(answers), raw_time, tests, nodes, records


def execute_query(
    method: Method, query: Graph, query_mode: str = "subgraph"
) -> QueryExecution:
    """Execute ``query`` against ``method`` without any caching."""
    started = time.perf_counter()
    candidate_ids = method.candidates(query)
    filter_time = time.perf_counter() - started

    answers, raw_verify_time, tests, nodes, _ = verify_candidates(
        method, query, candidate_ids, query_mode=query_mode
    )
    effective_verify_time = raw_verify_time / max(1, method.verify_parallelism)
    return QueryExecution(
        query=query,
        candidate_ids=frozenset(candidate_ids),
        answer_ids=answers,
        filter_time_s=filter_time,
        verify_time_s=effective_verify_time,
        raw_verify_time_s=raw_verify_time,
        subiso_tests=tests,
        nodes_expanded=nodes,
    )
