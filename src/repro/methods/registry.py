"""Factory helpers for building Method M instances by name.

The benchmark harness and examples describe experiments declaratively
("ctindex on AIDS", "grapes6 on PCM", "vf2plus on PDBS"); this module turns
those names into configured :class:`~repro.methods.base.Method` objects,
mirroring the six methods bundled with GraphCache in the paper (three FTV and
three SI).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import BenchmarkError
from ..ftv.ctindex import CTIndex
from ..ftv.ggsx import GraphGrepSX
from ..ftv.grapes import Grapes
from ..graphs.dataset import GraphDataset
from .base import Method
from .si import SIMethod

__all__ = ["method_by_name", "available_methods", "register_method"]

_BUILDERS: Dict[str, Callable[[GraphDataset], Method]] = {
    # FTV methods (paper defaults: paths of length 4, CT-Index trees/cycles).
    "ggsx": lambda dataset: GraphGrepSX(dataset),
    "grapes1": lambda dataset: Grapes(dataset, threads=1),
    "grapes6": lambda dataset: Grapes(dataset, threads=6),
    "ctindex": lambda dataset: CTIndex(dataset),
    # SI methods.
    "vf2": lambda dataset: SIMethod(dataset, matcher="vf2"),
    "vf2plus": lambda dataset: SIMethod(dataset, matcher="vf2plus"),
    "graphql": lambda dataset: SIMethod(dataset, matcher="graphql"),
    "ullmann": lambda dataset: SIMethod(dataset, matcher="ullmann"),
}


def register_method(name: str, builder: Callable[[GraphDataset], Method]) -> None:
    """Register a new Method M builder under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not key:
        raise BenchmarkError("method name must be non-empty")
    _BUILDERS[key] = builder


def method_by_name(name: str, dataset: GraphDataset) -> Method:
    """Build a Method M by name over ``dataset``."""
    key = name.strip().lower()
    try:
        builder = _BUILDERS[key]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise BenchmarkError(f"unknown method {name!r}; known methods: {known}") from None
    return builder(dataset)


def available_methods() -> List[str]:
    """Names of every registered Method M builder."""
    return sorted(_BUILDERS)
