"""SI methods: direct subgraph-isomorphism query processing without an index.

An SI method answers a subgraph query by sub-iso testing the query against
*every* dataset graph — its candidate set is the whole dataset.  The paper
evaluates GraphCache on top of three such methods (VF2, VF2+, GraphQL); this
module wraps any registered :class:`~repro.isomorphism.base.SubgraphMatcher`
as a :class:`~repro.methods.base.Method` so GraphCache can expedite it.
"""

from __future__ import annotations


from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..graphs.signatures import could_be_subgraph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.registry import matcher_by_name
from .base import Method

__all__ = ["SIMethod"]


class SIMethod(Method):
    """Direct SI query processing: candidate set = entire dataset.

    Parameters
    ----------
    dataset:
        The dataset queries are answered against.
    matcher:
        Either a matcher instance or a registered matcher name
        (``"vf2"``, ``"vf2plus"``, ``"graphql"``, ``"ullmann"``).
    prefilter:
        When ``True`` (default ``False``), trivially impossible candidates
        (fewer vertices/edges/labels than the query) are dropped before
        verification.  The paper's SI baselines do not prefilter, so the
        default keeps the full dataset as the candidate set.
    """

    supports_supergraph = True

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: SubgraphMatcher | str = "vf2plus",
        prefilter: bool = False,
    ) -> None:
        if isinstance(matcher, str):
            matcher = matcher_by_name(matcher)
        super().__init__(dataset, matcher)
        self._prefilter = prefilter
        self.name = f"si-{matcher.name}"

    def candidates(self, query: Graph) -> frozenset:
        if not self._prefilter:
            return self.dataset.graph_ids
        return frozenset(
            graph.graph_id
            for graph in self.dataset
            if could_be_subgraph(query, graph)
        )

    def index_size_bytes(self) -> int:
        return 0
