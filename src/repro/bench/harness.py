"""Experiment harness: run a workload with and without GraphCache and compare.

Every figure of the paper's evaluation boils down to the same experiment
shape: take a dataset, a Method M, a workload and a GraphCache configuration;
run the workload against the plain method (baseline) and against GraphCache
over the method; discard the warm-up window; report the average query time
and sub-iso test count of both runs and their ratio (the speedup).

:func:`run_experiment` performs exactly that and returns an
:class:`ExperimentResult`; the scripts in ``benchmarks/`` assemble those
results into the rows/series of each figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.cache import CacheQueryResult, GraphCache
from ..core.config import GraphCacheConfig
from ..core.pipeline import STAGE_NAMES
from ..core.service import GraphCacheService
from ..core.sharding import ShardedGraphCache, build_cache
from ..exceptions import BenchmarkError
from ..methods.base import Method
from ..methods.executor import QueryExecution, execute_query
from ..workloads.base import Workload
from .metrics import (
    SpeedupReport,
    aggregate_baseline,
    aggregate_cached,
    aggregate_stage_times,
    speedup,
)

__all__ = ["ExperimentResult", "run_baseline", "run_cached", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment cell (one bar in one of the paper's figures)."""

    name: str
    dataset_name: str
    method_name: str
    workload_name: str
    config_label: str
    speedups: SpeedupReport
    cache: Union[GraphCache, ShardedGraphCache]
    baseline_executions: Sequence[QueryExecution] = field(repr=False, default=())
    cached_results: Sequence[CacheQueryResult] = field(repr=False, default=())

    @property
    def time_speedup(self) -> float:
        """Query-time speedup of GraphCache over the plain method.

        Guarded against zero denominators on tiny/degenerate workloads:
        :func:`~repro.bench.metrics.speedup` computes every ratio through
        :func:`~repro.bench.metrics.finite_ratio`, so the value is always
        finite and report-safe.
        """
        return self.speedups.time_speedup

    @property
    def subiso_speedup(self) -> float:
        """Sub-iso-test-count speedup of GraphCache over the plain method.

        Guarded against zero denominators; always finite and report-safe.
        """
        return self.speedups.subiso_speedup

    def stage_breakdown(self) -> Dict[str, float]:
        """Average per-query wall-clock seconds spent in each pipeline stage."""
        return aggregate_stage_times(self.cached_results)

    def counter_breakdown(self) -> Dict[str, int]:
        """Deterministic work counters summed over the measured cached run."""
        return {
            "subiso_tests": sum(r.subiso_tests for r in self.cached_results),
            "subiso_alleviated": sum(
                max(0, r.method_candidates - r.subiso_tests)
                for r in self.cached_results
            ),
            "containment_tests": sum(r.containment_tests for r in self.cached_results),
            "containment_memo_hits": sum(
                r.containment_memo_hits for r in self.cached_results
            ),
        }

    def summary_row(self) -> Dict[str, object]:
        """Row dictionary used by the reporting helpers."""
        row: Dict[str, object] = {
            "experiment": self.name,
            "dataset": self.dataset_name,
            "method": self.method_name,
            "workload": self.workload_name,
            "config": self.config_label,
            "time_speedup": round(self.time_speedup, 2),
            "subiso_speedup": round(self.subiso_speedup, 2),
            "baseline_ms": round(self.speedups.baseline.avg_time_s * 1000.0, 3),
            "gc_ms": round(self.speedups.cached.avg_time_s * 1000.0, 3),
            "overhead_ms": round(self.speedups.cached.avg_maintenance_s * 1000.0, 3),
            "hit_rate": round(self.speedups.cached.cache_hit_rate, 3),
        }
        stages = self.stage_breakdown()
        for stage in STAGE_NAMES:
            row[f"{stage}_ms"] = round(stages.get(stage, 0.0) * 1000.0, 3)
        row.update(self.counter_breakdown())
        return row


def run_baseline(
    method: Method,
    workload: Workload,
    warmup_queries: int = 0,
    query_mode: str = "subgraph",
) -> List[QueryExecution]:
    """Run ``workload`` against the plain method; drop the warm-up prefix."""
    if warmup_queries >= len(workload):
        raise BenchmarkError(
            f"warm-up of {warmup_queries} queries consumes the whole workload "
            f"of {len(workload)} queries"
        )
    executions = [
        execute_query(method, query, query_mode=query_mode) for query in workload
    ]
    return executions[warmup_queries:]


def run_cached(
    method: Method,
    workload: Workload,
    config: Optional[GraphCacheConfig] = None,
    warmup_queries: Optional[int] = None,
    jobs: int = 1,
) -> tuple:
    """Run ``workload`` through GraphCache over ``method``.

    Returns ``(cache, measured_results)`` where ``measured_results`` excludes
    the warm-up prefix (by default one window, as in the paper).  The cache
    is built from the configuration: ``config.shards > 1`` yields a
    :class:`~repro.core.sharding.ShardedGraphCache`, and ``config.backend``
    selects the storage backend.  With ``jobs > 1`` the queries go through
    the batched service facade — Mfilter prefetch over a plain cache, full
    per-shard pipelines over a sharded one; answers and work counters are
    byte-identical to the serial run — except under wall-clock based
    admission control (``config.admission_control``), whose threshold
    calibrates on measured times and is non-deterministic even serially.
    """
    config = config or GraphCacheConfig()
    if warmup_queries is None:
        warmup_queries = config.warmup_windows * config.window_size
    if warmup_queries >= len(workload):
        raise BenchmarkError(
            f"warm-up of {warmup_queries} queries consumes the whole workload "
            f"of {len(workload)} queries"
        )
    cache = build_cache(method, config=config)
    if jobs > 1:
        results = GraphCacheService(cache).query_many(list(workload), jobs=jobs)
    else:
        results = [cache.query(query) for query in workload]
    # Quiesce background maintenance before anyone reads reports/journals:
    # a no-op under sync/barrier scheduling.
    cache.drain_maintenance()
    return cache, results[warmup_queries:]


def run_experiment(
    name: str,
    method: Method,
    workload: Workload,
    config: Optional[GraphCacheConfig] = None,
    baseline_executions: Optional[Sequence[QueryExecution]] = None,
    jobs: int = 1,
) -> ExperimentResult:
    """Run one experiment cell: baseline vs GraphCache on the same workload.

    ``baseline_executions`` may be supplied to reuse a baseline run across
    several cells that share the same method and workload (e.g. the five
    replacement policies of Figure 4).  ``jobs`` is forwarded to
    :func:`run_cached` (concurrent Mfilter prefetch; counters unchanged).
    """
    config = config or GraphCacheConfig()
    warmup = config.warmup_windows * config.window_size
    if baseline_executions is None:
        baseline_executions = run_baseline(
            method, workload, warmup_queries=warmup, query_mode=config.query_mode
        )
    cache, cached_results = run_cached(method, workload, config=config, jobs=jobs)

    report = speedup(
        aggregate_baseline(baseline_executions), aggregate_cached(cached_results)
    )
    return ExperimentResult(
        name=name,
        dataset_name=method.dataset.name,
        method_name=method.name,
        workload_name=workload.name,
        config_label=config.label(),
        speedups=report,
        cache=cache,
        baseline_executions=tuple(baseline_executions),
        cached_results=tuple(cached_results),
    )
