"""Benchmark harness: experiment runner, metrics, reporting and scenarios."""

from .harness import ExperimentResult, run_baseline, run_cached, run_experiment
from .metrics import (
    RunAggregate,
    SpeedupReport,
    aggregate_baseline,
    aggregate_cached,
    speedup,
)
from .reporting import format_series, format_table, print_figure, print_table

__all__ = [
    "ExperimentResult",
    "run_baseline",
    "run_cached",
    "run_experiment",
    "RunAggregate",
    "SpeedupReport",
    "aggregate_baseline",
    "aggregate_cached",
    "speedup",
    "format_series",
    "format_table",
    "print_figure",
    "print_table",
]
