"""Benchmark metrics: per-run aggregates and speedup computation.

The paper reports two headline metrics (§7.2):

* **query-time speedup** — the ratio of Method M's average query time to
  GraphCache-over-M's average query time;
* **sub-iso-test speedup** — the same ratio for the average number of sub-iso
  tests per query.

Speedups greater than 1 mean GraphCache improves over the plain method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.cache import CacheQueryResult
from ..methods.executor import QueryExecution

__all__ = [
    "RATIO_CAP",
    "RunAggregate",
    "SpeedupReport",
    "aggregate_baseline",
    "aggregate_cached",
    "aggregate_stage_times",
    "finite_ratio",
    "speedup",
]

#: Upper bound on reported speedup ratios.  Tiny/degenerate workloads can
#: drive a denominator to zero (e.g. every measured query is an exact hit);
#: returning a capped finite value instead of ``inf`` keeps report rows
#: round()-, JSON- and table-safe.
RATIO_CAP = 1e6


def finite_ratio(reference: float, observed: float, cap: float = RATIO_CAP) -> float:
    """``reference / observed`` guarded against zero denominators.

    Returns 1.0 when both sides are zero (no work either way — no speedup)
    and ``cap`` when only the denominator collapsed; never ``inf``/``nan``.
    """
    if observed <= 0.0:
        return 1.0 if reference <= 0.0 else cap
    return min(cap, reference / observed)


@dataclass(frozen=True)
class RunAggregate:
    """Average per-query metrics of one workload run."""

    query_count: int
    avg_time_s: float
    avg_subiso_tests: float
    total_time_s: float
    total_subiso_tests: int
    avg_candidates: float
    avg_answers: float
    avg_maintenance_s: float = 0.0
    cache_hit_rate: float = 0.0
    exact_hits: int = 0
    empty_shortcuts: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dictionary for reports."""
        return {
            "query_count": self.query_count,
            "avg_time_s": self.avg_time_s,
            "avg_subiso_tests": self.avg_subiso_tests,
            "total_time_s": self.total_time_s,
            "total_subiso_tests": self.total_subiso_tests,
            "avg_candidates": self.avg_candidates,
            "avg_answers": self.avg_answers,
            "avg_maintenance_s": self.avg_maintenance_s,
            "cache_hit_rate": self.cache_hit_rate,
            "exact_hits": self.exact_hits,
            "empty_shortcuts": self.empty_shortcuts,
        }


@dataclass(frozen=True)
class SpeedupReport:
    """Speedups of GraphCache over the plain method for one experiment cell."""

    time_speedup: float
    subiso_speedup: float
    baseline: RunAggregate
    cached: RunAggregate

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dictionary for reports."""
        return {
            "time_speedup": self.time_speedup,
            "subiso_speedup": self.subiso_speedup,
            "baseline_avg_time_s": self.baseline.avg_time_s,
            "cached_avg_time_s": self.cached.avg_time_s,
            "baseline_avg_subiso": self.baseline.avg_subiso_tests,
            "cached_avg_subiso": self.cached.avg_subiso_tests,
        }


def aggregate_baseline(executions: Sequence[QueryExecution]) -> RunAggregate:
    """Aggregate the per-query records of a baseline (no cache) run."""
    if not executions:
        raise ValueError("cannot aggregate an empty run")
    count = len(executions)
    total_time = sum(execution.total_time_s for execution in executions)
    total_tests = sum(execution.subiso_tests for execution in executions)
    return RunAggregate(
        query_count=count,
        avg_time_s=total_time / count,
        avg_subiso_tests=total_tests / count,
        total_time_s=total_time,
        total_subiso_tests=total_tests,
        avg_candidates=sum(len(e.candidate_ids) for e in executions) / count,
        avg_answers=sum(len(e.answer_ids) for e in executions) / count,
    )


def aggregate_stage_times(results: Sequence[CacheQueryResult]) -> Dict[str, float]:
    """Average per-query wall-clock seconds spent in each pipeline stage."""
    count = len(results)
    if count == 0:
        return {}
    totals: Dict[str, float] = {}
    for result in results:
        for stage, elapsed in result.stage_times.items():
            totals[stage] = totals.get(stage, 0.0) + elapsed
    return {stage: total / count for stage, total in totals.items()}


def aggregate_cached(results: Sequence[CacheQueryResult]) -> RunAggregate:
    """Aggregate the per-query records of a GraphCache run."""
    if not results:
        raise ValueError("cannot aggregate an empty run")
    count = len(results)
    total_time = sum(result.total_time_s for result in results)
    total_tests = sum(result.subiso_tests for result in results)
    return RunAggregate(
        query_count=count,
        avg_time_s=total_time / count,
        avg_subiso_tests=total_tests / count,
        total_time_s=total_time,
        total_subiso_tests=total_tests,
        avg_candidates=sum(r.final_candidates for r in results) / count,
        avg_answers=sum(len(r.answer_ids) for r in results) / count,
        avg_maintenance_s=sum(r.maintenance_time_s for r in results) / count,
        cache_hit_rate=sum(1 for r in results if r.cache_hit) / count,
        exact_hits=sum(1 for r in results if r.shortcut == "exact"),
        empty_shortcuts=sum(1 for r in results if r.shortcut == "empty"),
    )


def speedup(baseline: RunAggregate, cached: RunAggregate) -> SpeedupReport:
    """Compute the paper's speedup metrics from two aggregated runs."""
    return SpeedupReport(
        time_speedup=finite_ratio(baseline.avg_time_s, cached.avg_time_s),
        subiso_speedup=finite_ratio(baseline.avg_subiso_tests, cached.avg_subiso_tests),
        baseline=baseline,
        cached=cached,
    )
