"""Shared, cached experiment building blocks for the benchmark suite.

Every figure's benchmark needs the same ingredients — stand-in datasets,
Method M instances, Type A / Type B workloads, a GraphCache configuration —
and building them repeatedly (FTV indexes, query pools) would dominate the
benchmark runtime.  This module centralises the benchmark-scale parameters
(documented in EXPERIMENTS.md) and memoises every expensive artefact.

Scaling note: the paper uses cache capacity 100 / window 20 with 5,000-10,000
query workloads on datasets of 200-40,000 graphs.  The pure-Python
reproduction keeps the same *ratios* at roughly 1/10 the size so the whole
suite runs on a laptop: cache 30 / window 10, 120-160 query workloads,
datasets of 20-60 graphs.  Figure-specific sweeps (cache sizes, Zipf skew,
admission control) scale the same way.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from ..core.config import GraphCacheConfig
from ..graphs.dataset import GraphDataset
from ..graphs.generators import aids_like, pcm_like, pdbs_like, synthetic_like
from ..methods.base import Method
from ..methods.registry import method_by_name
from ..workloads.base import Workload
from ..workloads.type_a import TypeAWorkloadGenerator
from ..workloads.type_b import QueryPools, TypeBWorkloadGenerator

__all__ = [
    "BENCH_DATASET_SCALES",
    "BENCH_QUERY_COUNTS",
    "BENCH_QUERY_SIZES",
    "bench_config",
    "get_dataset",
    "get_method",
    "get_query_pools",
    "type_a_workload",
    "type_b_workload",
]

#: Dataset scale factors used by the benchmark suite (fraction of the default
#: stand-in size, which is itself a scaled-down analogue of the paper's data).
BENCH_DATASET_SCALES: Dict[str, float] = {
    "aids": 1.0,        # 200 molecule-like graphs
    "pdbs": 1.0,        # 60 protein-structure-like graphs
    "pcm": 0.75,        # 30 dense contact-map-like graphs
    "synthetic": 0.60,  # 36 dense synthetic graphs
}

#: Number of workload queries per experiment cell.
BENCH_QUERY_COUNTS: Dict[str, int] = {
    "aids": 200,
    "pdbs": 160,
    "pcm": 90,
    "synthetic": 90,
}

#: Query sizes (edges) per dataset.  Sparse datasets follow the paper
#: (4..20); the dense datasets use 12..24 — scaled down with the dataset
#: graphs themselves so that pure-Python verification stays tractable.
BENCH_QUERY_SIZES: Dict[str, Tuple[int, ...]] = {
    "aids": (4, 8, 12, 16, 20),
    "pdbs": (4, 8, 12, 16, 20),
    "pcm": (12, 16, 20, 24),
    "synthetic": (12, 16, 20, 24),
}

_DATASET_FACTORIES = {
    "aids": aids_like,
    "pdbs": pdbs_like,
    "pcm": pcm_like,
    "synthetic": synthetic_like,
}

#: Benchmark-scale cache configuration (the paper's c100-b20, scaled by ~1/3).
_DEFAULT_CACHE_CAPACITY = 30
_DEFAULT_WINDOW_SIZE = 10


def bench_config(
    policy: str = "hd",
    cache_capacity: int = _DEFAULT_CACHE_CAPACITY,
    window_size: int = _DEFAULT_WINDOW_SIZE,
    admission_control: bool = False,
    query_mode: str = "subgraph",
    shards: int = 1,
    backend: str = "memory",
) -> GraphCacheConfig:
    """The benchmark suite's GraphCache configuration (HD, c30-b10 by default).

    ``shards``/``backend`` select the storage layout for the sharded scenario
    rows (the harness builds a ShardedGraphCache whenever ``shards > 1``).
    """
    return GraphCacheConfig(
        cache_capacity=cache_capacity,
        window_size=window_size,
        replacement_policy=policy,
        admission_control=admission_control,
        query_mode=query_mode,
        warmup_windows=1,
        shards=shards,
        backend=backend,
    )


@lru_cache(maxsize=None)
def get_dataset(name: str) -> GraphDataset:
    """Build (once) the benchmark-scale stand-in dataset ``name``."""
    key = name.lower()
    factory = _DATASET_FACTORIES[key]
    return factory(scale=BENCH_DATASET_SCALES[key])


@lru_cache(maxsize=None)
def get_method(dataset_name: str, method_name: str) -> Method:
    """Build (once) Method M ``method_name`` over dataset ``dataset_name``.

    The dense datasets (PCM-like, Synthetic) use path length 3 for the
    path-trie FTV methods: indexing every length-4 path of a dense graph is
    a C++-implementation affair in the paper and would dominate the runtime
    of this pure-Python suite without changing which system wins.
    """
    key = dataset_name.lower()
    method_key = method_name.lower()
    dataset = get_dataset(key)
    if key in ("pcm", "synthetic") and method_key.startswith(("grapes", "ggsx")):
        from ..ftv.ggsx import GraphGrepSX
        from ..ftv.grapes import Grapes

        if method_key.startswith("grapes"):
            threads = 6 if method_key.endswith("6") else 1
            return Grapes(dataset, threads=threads, max_path_length=3)
        return GraphGrepSX(dataset, max_path_length=3)
    return method_by_name(method_name, dataset)


@lru_cache(maxsize=None)
def type_a_workload(
    dataset_name: str,
    category: str,
    alpha: float = 1.4,
    query_count: int | None = None,
    seed: int = 42,
) -> Workload:
    """Build (once) a Type A workload for the benchmark suite."""
    key = dataset_name.lower()
    generator = TypeAWorkloadGenerator(
        get_dataset(key),
        category=category,
        query_sizes=BENCH_QUERY_SIZES[key],
        alpha=alpha,
        seed=seed,
    )
    return generator.generate(query_count or BENCH_QUERY_COUNTS[key])


@lru_cache(maxsize=None)
def get_query_pools(dataset_name: str, seed: int = 7) -> QueryPools:
    """Build (once) the Type B query pools for ``dataset_name``."""
    key = dataset_name.lower()
    return QueryPools(
        get_dataset(key),
        query_sizes=BENCH_QUERY_SIZES[key],
        answer_pool_size=60,
        no_answer_pool_size=20,
        seed=seed,
    )


@lru_cache(maxsize=None)
def type_b_workload(
    dataset_name: str,
    no_answer_probability: float,
    alpha: float = 1.4,
    query_count: int | None = None,
    seed: int = 21,
) -> Workload:
    """Build (once) a Type B workload for the benchmark suite."""
    key = dataset_name.lower()
    generator = TypeBWorkloadGenerator(
        get_query_pools(key),
        no_answer_probability=no_answer_probability,
        alpha=alpha,
        seed=seed,
    )
    return generator.generate(
        query_count or BENCH_QUERY_COUNTS[key], dataset_name=get_dataset(key).name
    )
