"""Plain-text reporting of experiment results (the "figure" tables).

The paper's figures are bar charts of speedups; the benchmark harness prints
the same numbers as aligned text tables so that a run of
``pytest benchmarks/ --benchmark-only`` regenerates every figure's series in
the terminal (and, through ``tee``, in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "print_table", "format_series", "print_figure"]


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] | None = None) -> str:
    """Format dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def print_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Print an aligned text table with an optional title."""
    if title:
        print(f"\n== {title} ==")
    print(format_table(rows, columns))


def format_series(series: Dict[str, Dict[str, float]], value_format: str = "{:.2f}") -> str:
    """Format ``{series name: {x label: value}}`` as a table with one row per series."""
    if not series:
        return "(no series)"
    x_labels: List[str] = []
    for values in series.values():
        for label in values:
            if label not in x_labels:
                x_labels.append(label)
    rows = []
    for name, values in series.items():
        row: Dict[str, object] = {"series": name}
        for label in x_labels:
            value = values.get(label)
            row[label] = value_format.format(value) if value is not None else "-"
        rows.append(row)
    return format_table(rows, columns=["series", *x_labels])


def print_figure(
    figure: str,
    description: str,
    series: Dict[str, Dict[str, float]],
    note: str | None = None,
) -> None:
    """Print one reproduced figure: a header, the series table and an optional note."""
    print(f"\n=== {figure}: {description} ===")
    print(format_series(series))
    if note:
        print(f"note: {note}")
