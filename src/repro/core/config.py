"""GraphCache configuration.

All knobs the paper discusses are collected in one frozen dataclass so that a
configuration can be logged alongside experiment results and shared between
the cache, the window manager and the benchmark harness.  Defaults follow the
paper's defaults: cache capacity ``C = 100`` entries, window size ``W = 20``,
the hybrid (HD) replacement policy, admission control disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..exceptions import CacheError

__all__ = ["GraphCacheConfig", "QueryMode"]

#: Sentinel distinguishing "argument omitted" from an explicit ``None``.
_UNSET = object()

#: Valid query modes: GraphCache serves subgraph queries (dataset graphs that
#: contain the query) or supergraph queries (dataset graphs contained in it).
QueryMode = str

_VALID_MODES = ("subgraph", "supergraph")
_VALID_POLICIES = ("lru", "pop", "pin", "pinc", "hd")
_VALID_ADMISSION_KINDS = ("threshold", "adaptive")
_VALID_EXECUTION_MODES = ("serial", "parallel")
_VALID_BACKENDS = ("memory", "sqlite", "mmap")
_VALID_MAINTENANCE_MODES = ("sync", "background", "barrier")
_VALID_PACKED_MATCH = ("on", "off", "auto")


@dataclass(frozen=True)
class GraphCacheConfig:
    """Configuration of a :class:`~repro.core.cache.GraphCache` instance.

    Attributes
    ----------
    cache_capacity:
        Maximum number of cached queries (paper default: 100).
    window_size:
        Number of new queries batched before a cache-update round (paper
        default: 20).
    replacement_policy:
        One of ``"lru"``, ``"pop"``, ``"pin"``, ``"pinc"``, ``"hd"``.
    admission_control:
        Enable the expensiveness-based admission filter of §6.2.
    admission_expensive_fraction:
        Fraction of calibration queries that should be classified as
        expensive; the threshold is set to the corresponding quantile of the
        observed verification/filtering time ratios.
    admission_calibration_windows:
        Number of initial windows observed before the threshold is fixed.
    admission_threshold:
        Explicit expensiveness threshold.  ``None`` means "calibrate from the
        first windows"; ``0.0`` disables admission control even if
        ``admission_control`` is ``True`` (paper: "a threshold value of 0
        disables this component").
    admission_kind:
        Which admission controller the maintenance engine runs:
        ``"threshold"`` (the §6.2 quantile-calibrated filter, default) or
        ``"adaptive"`` (the hill-climbing extension).  Resolved through the
        :mod:`repro.core.policies` registry, like ``replacement_policy``.
    query_mode:
        ``"subgraph"`` (default) or ``"supergraph"``.
    index_path_length:
        Maximum label-path length indexed by GCindex over cached queries.
    warmup_windows:
        Number of initial windows excluded from benchmark statistics (the
        paper allows one window before measuring).
    execution_mode:
        ``"serial"`` (default) runs the pipeline stages one after another;
        ``"parallel"`` runs Method M's filter concurrently with the GC
        processors (the paper's Figure-2 parallel arrow).  Both modes produce
        identical answers and work counters.
    containment_matcher:
        Registry name of the matcher used for query-vs-query containment
        checks in the GC processors (``None`` = the method's own verifier).
        Resolved once by :class:`~repro.core.cache.GraphCache` so every
        pipeline stage shares one matcher instance and plan cache.
    backend:
        Storage backend of the cache/window stores: ``"memory"`` (the seed's
        in-RAM dictionaries, default), ``"sqlite"`` (write-through, lazy
        entry loading — larger-than-RAM caches) or ``"mmap"`` (packed query
        graphs in an append-only arena, zero-copy reads, sealable to a
        shared segment for multi-process serving).  See
        :mod:`repro.core.backends`.
    backend_path:
        SQLite database file / mmap arena base path holding the stores
        (``None`` keeps the data in memory).  Sharded caches derive one
        file per shard from this path.
    shards:
        Number of independent :class:`~repro.core.cache.GraphCache` shards a
        :class:`~repro.core.sharding.ShardedGraphCache` splits the cache
        into.  ``1`` (default) means an unsharded cache; plain
        :class:`~repro.core.cache.GraphCache` ignores this field.
    maintenance_mode:
        Where cache-update rounds execute (see
        :mod:`repro.core.policies.scheduler`): ``"sync"`` (inline on the
        committing thread, default), ``"background"`` (on a worker thread,
        off the query path — the paper's separate maintenance thread) or
        ``"barrier"`` (worker thread + completion barrier; the deterministic
        test mode whose plan stream is byte-identical to ``sync``).
    packed_match:
        CSR-native serving mode of the mmap backend: ``"on"`` serves stored
        entry queries as zero-decode
        :class:`~repro.graphs.packed.PackedGraphView` objects (matchers run
        straight on the packed CSR record), ``"off"`` decodes to ``Graph``
        on every read, and ``"auto"`` (default) keeps the decode path
        in-process but resolves to ``"on"`` inside
        :class:`~repro.core.workers.ProcessPoolCacheService` workers, where
        the attached read-only arena makes the view mode strictly cheaper.
        Only meaningful with ``backend="mmap"``; other backends store real
        ``Graph`` objects and ignore it.
    journal_path:
        Optional file receiving the append-only maintenance plan journal
        (one JSON line per applied
        :class:`~repro.core.policies.plan.MaintenancePlan`).  ``None`` keeps
        the journal in memory only.  Sharded caches derive one file per
        shard from this path, like ``backend_path``.
    journal_fsync:
        When ``True``, every journal append is flushed and fsync'd before
        the round returns, so a checkpoint can never be durably ahead of
        its own journal — the invariant crash recovery
        (:func:`~repro.core.persistence.recover_cache`) relies on.  Default
        off: the journal is still append-mode-per-record (a crash loses at
        most the line being written), but the OS may buffer it.
    compaction_threshold:
        Automatic arena compaction trigger for the mmap backend: after each
        delta publish (:meth:`~repro.core.cache.GraphCache.seal_delta_storage`),
        any arena whose ``dead_bytes / live_bytes`` ratio reaches this value
        is folded by a full :meth:`~repro.core.backends.mmapped.MmapBackend.compact`
        — scheduled through the maintenance scheduler, so in ``background``
        mode the fold runs off the query path.  ``None`` (default) disables
        automatic compaction; deltas accumulate until an explicit seal.
    """

    cache_capacity: int = 100
    window_size: int = 20
    replacement_policy: str = "hd"
    admission_control: bool = False
    admission_expensive_fraction: float = 0.25
    admission_calibration_windows: int = 2
    admission_threshold: Optional[float] = None
    admission_kind: str = "threshold"
    query_mode: QueryMode = "subgraph"
    index_path_length: int = 3
    warmup_windows: int = 1
    execution_mode: str = "serial"
    containment_matcher: Optional[str] = None
    backend: str = "memory"
    backend_path: Optional[str] = None
    shards: int = 1
    maintenance_mode: str = "sync"
    packed_match: str = "auto"
    journal_path: Optional[str] = None
    journal_fsync: bool = False
    compaction_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cache_capacity <= 0:
            raise CacheError("cache_capacity must be positive")
        if self.window_size <= 0:
            raise CacheError("window_size must be positive")
        if self.replacement_policy.lower() not in _VALID_POLICIES:
            raise CacheError(
                f"unknown replacement policy {self.replacement_policy!r}; "
                f"valid policies: {', '.join(_VALID_POLICIES)}"
            )
        if self.query_mode not in _VALID_MODES:
            raise CacheError(
                f"unknown query mode {self.query_mode!r}; valid modes: {', '.join(_VALID_MODES)}"
            )
        if not (0.0 < self.admission_expensive_fraction <= 1.0):
            raise CacheError("admission_expensive_fraction must be in (0, 1]")
        if self.admission_calibration_windows < 1:
            raise CacheError("admission_calibration_windows must be >= 1")
        if self.admission_kind.lower() not in _VALID_ADMISSION_KINDS:
            raise CacheError(
                f"unknown admission kind {self.admission_kind!r}; "
                f"valid kinds: {', '.join(_VALID_ADMISSION_KINDS)}"
            )
        if self.index_path_length < 1:
            raise CacheError("index_path_length must be >= 1")
        if self.warmup_windows < 0:
            raise CacheError("warmup_windows must be >= 0")
        if self.execution_mode not in _VALID_EXECUTION_MODES:
            raise CacheError(
                f"unknown execution mode {self.execution_mode!r}; "
                f"valid modes: {', '.join(_VALID_EXECUTION_MODES)}"
            )
        if self.backend.lower() not in _VALID_BACKENDS:
            raise CacheError(
                f"unknown storage backend {self.backend!r}; "
                f"valid backends: {', '.join(_VALID_BACKENDS)}"
            )
        if self.backend_path is not None and self.backend.lower() not in (
            "sqlite",
            "mmap",
        ):
            raise CacheError(
                "backend_path is only meaningful with backend='sqlite' or 'mmap'"
            )
        if self.shards < 1:
            raise CacheError("shards must be >= 1")
        if self.maintenance_mode.lower() not in _VALID_MAINTENANCE_MODES:
            raise CacheError(
                f"unknown maintenance mode {self.maintenance_mode!r}; "
                f"valid modes: {', '.join(_VALID_MAINTENANCE_MODES)}"
            )
        if self.packed_match.lower() not in _VALID_PACKED_MATCH:
            raise CacheError(
                f"unknown packed_match mode {self.packed_match!r}; "
                f"valid modes: {', '.join(_VALID_PACKED_MATCH)}"
            )
        if self.compaction_threshold is not None and self.compaction_threshold <= 0:
            raise CacheError("compaction_threshold must be positive (or None)")

    # ------------------------------------------------------------------ #
    def with_policy(self, policy: str) -> "GraphCacheConfig":
        """Return a copy using a different replacement policy."""
        return replace(self, replacement_policy=policy)

    def with_capacity(self, cache_capacity: int, window_size: Optional[int] = None) -> "GraphCacheConfig":
        """Return a copy with a different cache capacity (and optionally window)."""
        if window_size is None:
            return replace(self, cache_capacity=cache_capacity)
        return replace(self, cache_capacity=cache_capacity, window_size=window_size)

    def with_admission_control(
        self,
        enabled: bool = True,
        expensive_fraction: Optional[float] = None,
        threshold: Optional[float] = None,
        kind: Optional[str] = None,
    ) -> "GraphCacheConfig":
        """Return a copy with admission control switched on/off."""
        fraction = (
            self.admission_expensive_fraction
            if expensive_fraction is None
            else expensive_fraction
        )
        return replace(
            self,
            admission_control=enabled,
            admission_expensive_fraction=fraction,
            admission_threshold=threshold,
            admission_kind=self.admission_kind if kind is None else kind,
        )

    def with_backend(
        self, backend: str, backend_path: Optional[str] = None
    ) -> "GraphCacheConfig":
        """Return a copy using a different storage backend."""
        return replace(self, backend=backend, backend_path=backend_path)

    def with_shards(self, shards: int) -> "GraphCacheConfig":
        """Return a copy with a different shard count."""
        return replace(self, shards=shards)

    def with_maintenance_mode(
        self, maintenance_mode: str, journal_path: object = _UNSET
    ) -> "GraphCacheConfig":
        """Return a copy using a different maintenance scheduler.

        ``journal_path`` is changed only when passed (pass ``None``
        explicitly to drop a configured journal) — switching the mode never
        silently discards the journal location.
        """
        if journal_path is _UNSET:
            journal_path = self.journal_path
        return replace(
            self, maintenance_mode=maintenance_mode, journal_path=journal_path
        )

    def with_packed_match(self, packed_match: str) -> "GraphCacheConfig":
        """Return a copy using a different CSR-native serving mode."""
        return replace(self, packed_match=packed_match)

    def with_compaction(self, threshold: Optional[float]) -> "GraphCacheConfig":
        """Return a copy with a different automatic-compaction threshold."""
        return replace(self, compaction_threshold=threshold)

    def label(self) -> str:
        """Short label like ``c100-b20`` used in the paper's figures.

        Non-default storage choices are appended (``c100-b20-s4-sqlite``) so
        sharded/backend experiment rows stay distinguishable in reports.
        """
        label = f"c{self.cache_capacity}-b{self.window_size}"
        if self.shards > 1:
            label += f"-s{self.shards}"
        if self.backend.lower() != "memory":
            label += f"-{self.backend.lower()}"
        if self.maintenance_mode.lower() != "sync":
            label += f"-{self.maintenance_mode.lower()}"
        if self.packed_match.lower() == "on":
            label += "-pm"
        if self.compaction_threshold is not None:
            label += f"-compact{self.compaction_threshold:g}"
        return label
