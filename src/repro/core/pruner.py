"""Candidate Set Pruner: equations (1) and (2) plus the special cases of §5.1.

The pruner combines Method M's candidate set ``CS_M(g)`` with the containment
relations discovered by the GC processors:

**Subgraph queries** (answers are dataset graphs that *contain* the query):

* every graph in the answer set of a cached ``g' ⊇ g`` also contains ``g`` —
  those graphs go straight to the answer set and leave the candidate set
  (equation 1);
* a graph outside the answer set of a cached ``g'' ⊆ g`` cannot contain ``g``
  — the candidate set is intersected with each such answer set (equation 2);
* **special case 1**: an isomorphic cached query answers the query outright;
* **special case 2**: a cached ``g'' ⊆ g`` with an empty answer set proves the
  query's answer set is empty.

**Supergraph queries** (answers are dataset graphs *contained in* the query)
use the exact inverse roles of ``Resultsub`` and ``Resultsuper``, as described
at the end of §5.1.

The pruner also reports, per contributing cached query, exactly which dataset
graphs it removed from the candidate set — the Statistics Monitor turns that
into the ``R`` and ``C`` utility components of the PIN / PINC / HD policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from .processors import ProcessorOutcome
from .stores import CacheStore

__all__ = ["PruningResult", "CandidateSetPruner"]


@dataclass(frozen=True)
class PruningResult:
    """Outcome of candidate-set pruning for one query.

    Attributes
    ----------
    final_candidates:
        Dataset-graph ids that still require sub-iso verification.
    direct_answers:
        Dataset-graph ids added to the answer set without verification.
    shortcut:
        ``"exact"`` when an isomorphic cached query answered the query,
        ``"empty"`` when the empty-answer special case fired, else ``None``.
    shortcut_serial:
        Serial of the cached query that triggered the shortcut, if any.
    contributions:
        ``{cached serial: ids of candidate-set graphs this entry removed}`` —
        the per-entry candidate-set reduction used for the ``R`` statistic.
    """

    final_candidates: FrozenSet[int]
    direct_answers: FrozenSet[int]
    shortcut: Optional[str]
    shortcut_serial: Optional[int]
    contributions: Dict[int, FrozenSet[int]]

    @property
    def removed_count(self) -> int:
        """Total number of sub-iso tests alleviated by pruning."""
        return sum(len(ids) for ids in self.contributions.values())


class CandidateSetPruner:
    """Applies the cache-derived pruning rules to Method M's candidate set."""

    def __init__(self, cache_store: CacheStore, query_mode: str = "subgraph") -> None:
        self._cache_store = cache_store
        self._query_mode = query_mode

    # ------------------------------------------------------------------ #
    def prune(
        self,
        method_candidates: FrozenSet[int],
        outcome: ProcessorOutcome,
    ) -> PruningResult:
        """Prune ``method_candidates`` using the processors' findings."""
        if self._query_mode == "subgraph":
            expanding = outcome.result_sub      # g ⊆ g': answers of g' are answers of g
            restricting = outcome.result_super  # g'' ⊆ g: answers of g must lie in answers of g''
        else:
            expanding = outcome.result_super    # g'' ⊆ g: answers of g'' are answers of g
            restricting = outcome.result_sub    # g ⊆ g': answers of g must lie in answers of g'

        # Every store read below goes through the tolerant ``peek``: the
        # serials come from a published GCindex snapshot, and a background
        # maintenance apply may have evicted one of them from the store in
        # the meantime.  Skipping such an entry wholesale is exactly as if
        # the processors had never found it — answers stay correct, the
        # query merely forgoes that entry's pruning contribution.  Under
        # sync scheduling (apply and pruning both under the GC lock) a miss
        # is impossible and behaviour is unchanged.

        # Special case 1: exact (isomorphic) hit — return the cached answer.
        if outcome.exact_match_serial is not None:
            serial = outcome.exact_match_serial
            entry = self._cache_store.peek(serial)
            if entry is not None:
                return PruningResult(
                    final_candidates=frozenset(),
                    direct_answers=entry.answer_ids,
                    shortcut="exact",
                    shortcut_serial=serial,
                    contributions={serial: frozenset(method_candidates)},
                )

        # Special case 2: an expanding... no — a *restricting* entry with an
        # empty answer set proves the final answer set is empty.
        for serial in sorted(restricting):
            entry = self._cache_store.peek(serial)
            if entry is not None and not entry.answer_ids:
                return PruningResult(
                    final_candidates=frozenset(),
                    direct_answers=frozenset(),
                    shortcut="empty",
                    shortcut_serial=serial,
                    contributions={serial: frozenset(method_candidates)},
                )

        contributions: Dict[int, set] = {}
        candidates = set(method_candidates)
        direct_answers: set = set()

        # Equation (1) (subgraph mode): graphs in the answer set of any cached
        # query that contains g are guaranteed answers.
        for serial in sorted(expanding):
            entry = self._cache_store.peek(serial)
            if entry is None:
                continue
            answer = entry.answer_ids
            removed = candidates & answer
            if removed:
                contributions.setdefault(serial, set()).update(removed)
                candidates -= removed
            direct_answers |= answer

        # Equation (2) (subgraph mode): the remaining candidates must lie in
        # the answer set of every cached query contained in g.
        for serial in sorted(restricting):
            entry = self._cache_store.peek(serial)
            if entry is None:
                continue
            answer = entry.answer_ids
            removed = candidates - answer
            if removed:
                contributions.setdefault(serial, set()).update(removed)
                candidates &= answer
            if not candidates:
                break

        return PruningResult(
            final_candidates=frozenset(candidates),
            direct_answers=frozenset(direct_answers),
            shortcut=None,
            shortcut_serial=None,
            contributions={
                serial: frozenset(ids) for serial, ids in contributions.items()
            },
        )
