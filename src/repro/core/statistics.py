"""Statistics layer: the triplet store, the Statistics Manager and per-query stats.

The paper's Cache Manager keeps per-query metadata in an in-memory key-value
store holding ``{key, column name, column value}`` triplets, accessible by
key, by column, or by both (§6.1).  The Statistics Manager wraps that store;
the Statistics Monitor is the thin layer through which the query-processing
runtime reports measurements.

On top of the generic store, :class:`CachedQueryStats` provides the typed view
the replacement policies need: hit counts, last-hit serial number, candidate
set reduction ``R`` and estimated sub-iso cost reduction ``C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..analysis.runtime import make_rlock

__all__ = ["TripletStore", "StatisticsManager", "CachedQueryStats"]


class TripletStore:
    """In-memory key-value store of ``{key, column, value}`` triplets.

    Mirrors the access interface described in §6.1: by key (a "row"), by
    column name (a "column"), or by key and column (a single value).  All
    operations are thread-safe: read-modify-write accesses (``increment``)
    and compound reads hold an internal re-entrant lock.
    """

    def __init__(self) -> None:
        self._rows: Dict[int, Dict[str, object]] = {}
        self._lock = make_rlock("stats")

    def put(self, key: int, column: str, value: object) -> None:
        """Insert or overwrite a single triplet."""
        with self._lock:
            self._rows.setdefault(key, {})[column] = value

    def get(self, key: int, column: str, default: object = None) -> object:
        """Return the value at ``(key, column)`` or ``default``."""
        with self._lock:
            return self._rows.get(key, {}).get(column, default)

    def row(self, key: int) -> Dict[str, object]:
        """Return a copy of all columns stored for ``key``."""
        with self._lock:
            return dict(self._rows.get(key, {}))

    def column(self, column: str) -> Dict[int, object]:
        """Return ``{key: value}`` for every key that has ``column``."""
        with self._lock:
            return {
                key: columns[column]
                for key, columns in self._rows.items()
                if column in columns
            }

    def increment(self, key: int, column: str, amount: float = 1.0) -> float:
        """Add ``amount`` to a numeric column (creating it at 0) and return it."""
        with self._lock:
            current = float(self._rows.setdefault(key, {}).get(column, 0.0))
            updated = current + amount
            self._rows[key][column] = updated
            return updated

    def delete_row(self, key: int) -> None:
        """Remove every triplet stored under ``key`` (lazily tolerated if absent)."""
        with self._lock:
            self._rows.pop(key, None)

    def keys(self) -> List[int]:
        """All keys present in the store."""
        with self._lock:
            return list(self._rows)

    def __contains__(self, key: int) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)


@dataclass
class CachedQueryStats:
    """Typed statistics snapshot for one cached query.

    Field names follow Table 1 of the paper:

    * ``hits`` — number of times the query was matched by either GC processor,
    * ``last_hit_serial`` — serial number of the last benefited query,
    * ``cs_reduction`` — total number of dataset graphs removed from candidate
      sets thanks to this cached query (the ``R`` utility component),
    * ``cost_reduction`` — total estimated sub-iso time alleviated (``C``).
    """

    serial: int
    order: int = 0
    size: int = 0
    distinct_labels: int = 0
    filter_time_s: float = 0.0
    verify_time_s: float = 0.0
    hits: int = 0
    special_hits: int = 0
    last_hit_serial: Optional[int] = None
    cs_reduction: float = 0.0
    cost_reduction: float = 0.0

    @property
    def first_execution_time_s(self) -> float:
        """Total filtering plus verification time of the query's first run."""
        return self.filter_time_s + self.verify_time_s

    @property
    def expensiveness(self) -> float:
        """Verification/filtering time ratio used by admission control."""
        if self.filter_time_s <= 0.0:
            return float("inf") if self.verify_time_s > 0.0 else 0.0
        return self.verify_time_s / self.filter_time_s


# Column names used inside the triplet store.
_COLUMNS = {
    "order": "static.order",
    "size": "static.size",
    "distinct_labels": "static.labels",
    "filter_time_s": "time.filter",
    "verify_time_s": "time.verify",
    "hits": "hits.count",
    "special_hits": "hits.special",
    "last_hit_serial": "hits.last_serial",
    "cs_reduction": "contribution.cs_reduction",
    "cost_reduction": "contribution.cost_reduction",
}


class StatisticsManager:
    """Typed wrapper over the triplet store (the paper's Statistics Manager)."""

    def __init__(self, store: Optional[TripletStore] = None) -> None:
        self._store = store or TripletStore()

    # ------------------------------------------------------------------ #
    @property
    def store(self) -> TripletStore:
        """The underlying triplet store (exposed for inspection and tests)."""
        return self._store

    def register_query(self, stats: CachedQueryStats) -> None:
        """Store the initial statistics of a newly cached (or windowed) query."""
        key = stats.serial
        for attribute, column in _COLUMNS.items():
            value = getattr(stats, attribute)
            if value is not None:
                self._store.put(key, column, value)

    def forget_query(self, serial: int) -> None:
        """Drop every statistic of an evicted query."""
        self._store.delete_row(serial)

    def known_serials(self) -> List[int]:
        """Serial numbers of all queries with recorded statistics."""
        return self._store.keys()

    # ------------------------------------------------------------------ #
    # Statistics Monitor entry points (called by the query runtime).
    # ------------------------------------------------------------------ #
    def record_hit(
        self,
        serial: int,
        benefiting_serial: int,
        cs_reduction: float,
        cost_reduction: float,
        special: bool = False,
    ) -> None:
        """Record that cached query ``serial`` benefited ``benefiting_serial``.

        Hits on unknown serials are dropped (mirroring the utility heap's
        behaviour): under background maintenance a query can confirm a hit
        against a GCindex snapshot whose entry the worker evicts — and
        ``forget_query``s — before the query commits; re-creating the row
        here would leak a permanent ghost entry nothing ever deletes.
        Under sync scheduling the guard never fires (hits are recorded
        under the same GC lock as evictions).
        """
        if serial not in self._store:
            return
        self._store.increment(serial, _COLUMNS["hits"], 1)
        if special:
            self._store.increment(serial, _COLUMNS["special_hits"], 1)
        self._store.put(serial, _COLUMNS["last_hit_serial"], benefiting_serial)
        if cs_reduction:
            self._store.increment(serial, _COLUMNS["cs_reduction"], cs_reduction)
        if cost_reduction:
            self._store.increment(serial, _COLUMNS["cost_reduction"], cost_reduction)

    # ------------------------------------------------------------------ #
    def snapshot(self, serial: int) -> CachedQueryStats:
        """Return the current typed statistics of one query."""
        row = self._store.row(serial)

        def value(name: str, default: object) -> object:
            return row.get(_COLUMNS[name], default)

        return CachedQueryStats(
            serial=serial,
            order=int(value("order", 0)),
            size=int(value("size", 0)),
            distinct_labels=int(value("distinct_labels", 0)),
            filter_time_s=float(value("filter_time_s", 0.0)),
            verify_time_s=float(value("verify_time_s", 0.0)),
            hits=int(value("hits", 0)),
            special_hits=int(value("special_hits", 0)),
            last_hit_serial=(
                None
                if value("last_hit_serial", None) is None
                else int(value("last_hit_serial", 0))
            ),
            cs_reduction=float(value("cs_reduction", 0.0)),
            cost_reduction=float(value("cost_reduction", 0.0)),
        )

    def snapshots(self, serials: Iterable[int]) -> List[CachedQueryStats]:
        """Typed statistics of several queries, in the given order."""
        return [self.snapshot(serial) for serial in serials]
