"""Cache and Window data stores (the Data Layer of §6.1).

Two store groups exist:

* the **Cache stores** hold the cached queries, their answer sets and their
  statistics — these feed the GC processors and the replacement policies;
* the **Window stores** hold the queries of the current window (new queries
  not yet considered for admission) together with their answer sets and
  static statistics.

Both stores are bounded hash tables keyed by the query's serial number, as in
the paper.  Persistence to disk at startup/shutdown is supported through
simple JSON snapshots so a long-running analytics session can be resumed.

Both stores are thread-safe: every mutation and every compound read holds an
internal re-entrant lock, so the concurrent query pipeline
(:mod:`repro.core.pipeline`) and the batched service facade can share one
store across threads.  Iteration yields a point-in-time snapshot.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..graphs.io import graph_from_text, graph_to_text

__all__ = ["CacheEntry", "CacheStore", "WindowEntry", "WindowStore"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CacheEntry:
    """One cached query: the query graph plus its answer set."""

    serial: int
    query: Graph
    answer_ids: FrozenSet[int]


@dataclass(frozen=True)
class WindowEntry:
    """One window query awaiting the next cache-update round.

    Carries everything the admission controller and the replacement round
    need: the answer set and the first-execution filter/verify times.
    """

    serial: int
    query: Graph
    answer_ids: FrozenSet[int]
    filter_time_s: float
    verify_time_s: float

    @property
    def expensiveness(self) -> float:
        """Verification/filtering time ratio (admission-control score)."""
        if self.filter_time_s <= 0.0:
            return float("inf") if self.verify_time_s > 0.0 else 0.0
        return self.verify_time_s / self.filter_time_s


class CacheStore:
    """Bounded store of cached queries and their answer sets."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise CacheError("cache capacity must be positive")
        self._capacity = capacity
        self._entries: Dict[int, CacheEntry] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Maximum number of cached queries."""
        return self._capacity

    @property
    def is_full(self) -> bool:
        """``True`` when the store reached its configured capacity."""
        return len(self._entries) >= self._capacity

    def free_slots(self) -> int:
        """Number of additional entries the store can hold."""
        return max(0, self._capacity - len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, serial: int) -> bool:
        return serial in self._entries

    def __iter__(self) -> Iterator[CacheEntry]:
        with self._lock:
            return iter(list(self._entries.values()))

    def serials(self) -> List[int]:
        """Serial numbers of every cached query."""
        with self._lock:
            return list(self._entries)

    def get(self, serial: int) -> CacheEntry:
        """Return the entry with the given serial number."""
        try:
            return self._entries[serial]
        except KeyError:
            raise CacheError(f"query {serial} is not cached") from None

    # ------------------------------------------------------------------ #
    def add(self, entry: CacheEntry) -> None:
        """Add an entry; raises if the store is full (evict first)."""
        with self._lock:
            if entry.serial in self._entries:
                raise CacheError(f"query {entry.serial} is already cached")
            if self.is_full:
                raise CacheError("cache store is full; evict entries before adding")
            self._entries[entry.serial] = entry

    def evict(self, serial: int) -> CacheEntry:
        """Remove and return the entry with the given serial number."""
        with self._lock:
            try:
                return self._entries.pop(serial)
            except KeyError:
                raise CacheError(f"query {serial} is not cached") from None

    def replace_contents(self, entries: List[CacheEntry]) -> None:
        """Atomically swap in a new set of entries (the index-rebuild swap)."""
        if len(entries) > self._capacity:
            raise CacheError(
                f"{len(entries)} entries exceed the cache capacity of {self._capacity}"
            )
        serials = {entry.serial for entry in entries}
        if len(serials) != len(entries):
            raise CacheError("duplicate serial numbers in new cache contents")
        with self._lock:
            self._entries = {entry.serial: entry for entry in entries}

    # ------------------------------------------------------------------ #
    # Persistence (startup load / shutdown save, §6.1).
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Write the store to a JSON snapshot."""
        with self._lock:
            entries = list(self._entries.values())
        payload = {
            "capacity": self._capacity,
            "entries": [
                {
                    "serial": entry.serial,
                    "query": graph_to_text(entry.query),
                    "answers": sorted(entry.answer_ids),
                }
                for entry in entries
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "CacheStore":
        """Read a store back from a JSON snapshot."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        store = cls(capacity=int(payload["capacity"]))
        for record in payload["entries"]:
            store.add(
                CacheEntry(
                    serial=int(record["serial"]),
                    query=graph_from_text(record["query"]),
                    answer_ids=frozenset(int(x) for x in record["answers"]),
                )
            )
        return store


class WindowStore:
    """Bounded store of the current window's queries."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise CacheError("window capacity must be positive")
        self._capacity = capacity
        self._entries: Dict[int, WindowEntry] = {}
        self._lock = threading.RLock()

    @property
    def capacity(self) -> int:
        """Maximum number of window queries before a cache-update round."""
        return self._capacity

    @property
    def is_full(self) -> bool:
        """``True`` when the window reached its configured size."""
        return len(self._entries) >= self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, serial: int) -> bool:
        return serial in self._entries

    def __iter__(self) -> Iterator[WindowEntry]:
        with self._lock:
            return iter(list(self._entries.values()))

    def add(self, entry: WindowEntry) -> None:
        """Add a window entry; raises if the window is already full."""
        with self._lock:
            if self.is_full:
                raise CacheError("window store is full; drain it before adding")
            if entry.serial in self._entries:
                raise CacheError(f"query {entry.serial} is already in the window")
            self._entries[entry.serial] = entry

    def drain(self) -> List[WindowEntry]:
        """Remove and return every window entry (ordered by serial)."""
        with self._lock:
            entries = sorted(self._entries.values(), key=lambda entry: entry.serial)
            self._entries = {}
        return entries

    def entries(self) -> List[WindowEntry]:
        """Current window entries (ordered by serial), without draining."""
        with self._lock:
            return sorted(self._entries.values(), key=lambda entry: entry.serial)
