"""Cache and Window data stores (the Data Layer of §6.1).

Two store groups exist:

* the **Cache stores** hold the cached queries, their answer sets and their
  statistics — these feed the GC processors and the replacement policies;
* the **Window stores** hold the queries of the current window (new queries
  not yet considered for admission) together with their answer sets and
  static statistics.

Both stores are bounded hash tables keyed by the query's serial number, as in
the paper.  Since the storage-abstraction refactor they are thin *typed
facades* over a pluggable :class:`~repro.core.backends.StorageBackend`: the
capacity policy, the typed entry classes and the error semantics live here,
while the actual record container is either the in-RAM dictionary of the seed
(:class:`~repro.core.backends.InMemoryBackend`, the default) or a
write-through SQLite table (:class:`~repro.core.backends.SQLiteBackend`).
Persistence to disk at startup/shutdown is supported through simple JSON
snapshots so a long-running analytics session can be resumed.

Both stores are thread-safe: every mutation **and every compound read** —
including ``is_full``, ``free_slots``, ``__len__``, ``__contains__`` and
``get`` — holds an internal re-entrant lock, so the concurrent query pipeline
(:mod:`repro.core.pipeline`) and the batched service facade can share one
store across threads.  Iteration yields a point-in-time snapshot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Union

from ..analysis.runtime import make_rlock
from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..graphs.io import graph_from_text, graph_to_text
from .backends import StorageBackend, create_backend

__all__ = [
    "CacheEntry",
    "CacheEntryCodec",
    "CacheStore",
    "WindowEntry",
    "WindowEntryCodec",
    "WindowStore",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CacheEntry:
    """One cached query: the query graph plus its answer set."""

    serial: int
    query: Graph
    answer_ids: FrozenSet[int]


@dataclass(frozen=True)
class WindowEntry:
    """One window query awaiting the next cache-update round.

    Carries everything the admission controller and the replacement round
    need: the answer set and the first-execution filter/verify times.
    """

    serial: int
    query: Graph
    answer_ids: FrozenSet[int]
    filter_time_s: float
    verify_time_s: float

    @property
    def expensiveness(self) -> float:
        """Verification/filtering time ratio (admission-control score)."""
        if self.filter_time_s <= 0.0:
            return float("inf") if self.verify_time_s > 0.0 else 0.0
        return self.verify_time_s / self.filter_time_s


class CacheEntryCodec:
    """JSON codec for :class:`CacheEntry` (backend serialization + snapshots)."""

    @staticmethod
    def encode(entry: CacheEntry) -> Dict[str, Any]:
        return {
            "serial": entry.serial,
            "query": graph_to_text(entry.query),
            "answers": sorted(entry.answer_ids),
        }

    @staticmethod
    def decode(record: Dict[str, Any]) -> CacheEntry:
        return CacheEntry(
            serial=int(record["serial"]),
            query=graph_from_text(record["query"]),
            answer_ids=frozenset(int(x) for x in record["answers"]),
        )


class WindowEntryCodec:
    """JSON codec for :class:`WindowEntry`."""

    @staticmethod
    def encode(entry: WindowEntry) -> Dict[str, Any]:
        return {
            "serial": entry.serial,
            "query": graph_to_text(entry.query),
            "answers": sorted(entry.answer_ids),
            "filter_time_s": entry.filter_time_s,
            "verify_time_s": entry.verify_time_s,
        }

    @staticmethod
    def decode(record: Dict[str, Any]) -> WindowEntry:
        return WindowEntry(
            serial=int(record["serial"]),
            query=graph_from_text(record["query"]),
            answer_ids=frozenset(int(x) for x in record["answers"]),
            filter_time_s=float(record["filter_time_s"]),
            verify_time_s=float(record["verify_time_s"]),
        )


class CacheStore:
    """Bounded store of cached queries and their answer sets."""

    def __init__(self, capacity: int, backend: Optional[StorageBackend] = None) -> None:
        if capacity <= 0:
            raise CacheError("cache capacity must be positive")
        self._capacity = capacity
        # Explicit None check: an *empty* backend is falsy (it has __len__),
        # so `backend or default` would silently discard it.
        self._backend = (
            backend if backend is not None else create_backend("memory", CacheEntryCodec())
        )
        self._lock = make_rlock("store.cache")

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Maximum number of cached queries."""
        return self._capacity

    @property
    def backend(self) -> StorageBackend:
        """The storage backend holding the entries (exposed for inspection)."""
        return self._backend

    @property
    def is_full(self) -> bool:
        """``True`` when the store reached its configured capacity."""
        with self._lock:
            return self._backend.count() >= self._capacity

    def free_slots(self) -> int:
        """Number of additional entries the store can hold."""
        with self._lock:
            return max(0, self._capacity - self._backend.count())

    def __len__(self) -> int:
        with self._lock:
            return self._backend.count()

    def __contains__(self, serial: int) -> bool:
        with self._lock:
            return self._backend.contains(serial)

    def __iter__(self) -> Iterator[CacheEntry]:
        with self._lock:
            return iter(self._backend.entries())

    def serials(self) -> List[int]:
        """Serial numbers of every cached query."""
        with self._lock:
            return self._backend.serials()

    def get(self, serial: int) -> CacheEntry:
        """Return the entry with the given serial number."""
        with self._lock:
            entry = self._backend.get(serial)
        if entry is None:
            raise CacheError(f"query {serial} is not cached")
        return entry

    def peek(self, serial: int) -> Optional[CacheEntry]:
        """Return the entry with the given serial, or ``None`` if not cached.

        The tolerant twin of :meth:`get` for readers that race a background
        maintenance apply: a serial taken from a published GCindex snapshot
        may have been evicted from the store a moment later, which is not an
        error — the reader simply proceeds without that entry.
        """
        with self._lock:
            return self._backend.get(serial)

    # ------------------------------------------------------------------ #
    def add(self, entry: CacheEntry) -> None:
        """Add an entry; raises if the store is full (evict first)."""
        with self._lock:
            if self._backend.contains(entry.serial):
                raise CacheError(f"query {entry.serial} is already cached")
            if self._backend.count() >= self._capacity:
                raise CacheError("cache store is full; evict entries before adding")
            self._backend.put(entry.serial, entry)

    def evict(self, serial: int) -> CacheEntry:
        """Remove and return the entry with the given serial number."""
        with self._lock:
            entry = self._backend.get(serial)
            if entry is None:
                raise CacheError(f"query {serial} is not cached")
            self._backend.delete(serial)
            return entry

    def apply_delta(
        self, add: Sequence[CacheEntry], remove: Iterable[int]
    ) -> None:
        """Row-level delta update: the maintenance engine's apply step.

        Removes the ``remove`` serials, then appends the ``add`` entries —
        O(delta) backend row operations instead of the O(store) rewrite of
        :meth:`replace_contents`, with the same observable iteration order
        (survivors keep their position, additions append).  Validates the
        same invariants as the seed's swap: every removed serial must be
        cached, no added serial may collide (with the survivors or within
        the batch), and the result must fit the capacity.
        """
        add = list(add)
        removals = list(remove)
        added_serials = {entry.serial for entry in add}
        if len(added_serials) != len(add):
            raise CacheError("duplicate serial numbers in cache-store delta")
        with self._lock:
            for serial in removals:
                if not self._backend.contains(serial):
                    raise CacheError(f"query {serial} is not cached")
            removed = set(removals)
            for entry in add:
                if entry.serial not in removed and self._backend.contains(
                    entry.serial
                ):
                    raise CacheError(f"query {entry.serial} is already cached")
            resulting = self._backend.count() - len(removed) + len(add)
            if resulting > self._capacity:
                raise CacheError(
                    f"{resulting} entries exceed the cache capacity of {self._capacity}"
                )
            self._backend.apply_delta(
                ((entry.serial, entry) for entry in add), removals
            )

    def replace_contents(self, entries: List[CacheEntry]) -> None:
        """Atomically swap in a new set of entries (the index-rebuild swap)."""
        if len(entries) > self._capacity:
            raise CacheError(
                f"{len(entries)} entries exceed the cache capacity of {self._capacity}"
            )
        serials = {entry.serial for entry in entries}
        if len(serials) != len(entries):
            raise CacheError("duplicate serial numbers in new cache contents")
        with self._lock:
            self._backend.replace_all((entry.serial, entry) for entry in entries)

    def close(self) -> None:
        """Release backend resources (database connections)."""
        with self._lock:
            self._backend.close()

    # ------------------------------------------------------------------ #
    # Persistence (startup load / shutdown save, §6.1).
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Write the store to a JSON snapshot."""
        with self._lock:
            records = self._backend.dump_records()
        payload = {"capacity": self._capacity, "entries": records}
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load(
        cls, path: PathLike, backend: Optional[StorageBackend] = None
    ) -> "CacheStore":
        """Read a store back from a JSON snapshot (into any backend)."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        store = cls(capacity=int(payload["capacity"]), backend=backend)
        for record in payload["entries"]:
            store.add(CacheEntryCodec.decode(record))
        return store


class WindowStore:
    """Bounded store of the current window's queries."""

    def __init__(self, capacity: int, backend: Optional[StorageBackend] = None) -> None:
        if capacity <= 0:
            raise CacheError("window capacity must be positive")
        self._capacity = capacity
        self._backend = (
            backend if backend is not None else create_backend("memory", WindowEntryCodec())
        )
        self._lock = make_rlock("store.window")

    @property
    def capacity(self) -> int:
        """Maximum number of window queries before a cache-update round."""
        return self._capacity

    @property
    def backend(self) -> StorageBackend:
        """The storage backend holding the entries (exposed for inspection)."""
        return self._backend

    @property
    def is_full(self) -> bool:
        """``True`` when the window reached its configured size."""
        with self._lock:
            return self._backend.count() >= self._capacity

    def __len__(self) -> int:
        with self._lock:
            return self._backend.count()

    def __contains__(self, serial: int) -> bool:
        with self._lock:
            return self._backend.contains(serial)

    def __iter__(self) -> Iterator[WindowEntry]:
        with self._lock:
            return iter(self._backend.entries())

    def add(self, entry: WindowEntry) -> None:
        """Add a window entry; raises if the window is already full."""
        with self._lock:
            if self._backend.count() >= self._capacity:
                raise CacheError("window store is full; drain it before adding")
            if self._backend.contains(entry.serial):
                raise CacheError(f"query {entry.serial} is already in the window")
            self._backend.put(entry.serial, entry)

    def drain(self) -> List[WindowEntry]:
        """Remove and return every window entry (ordered by serial)."""
        with self._lock:
            entries = sorted(self._backend.entries(), key=lambda entry: entry.serial)
            self._backend.clear()
        return entries

    def entries(self) -> List[WindowEntry]:
        """Current window entries (ordered by serial), without draining."""
        with self._lock:
            return sorted(self._backend.entries(), key=lambda entry: entry.serial)

    def close(self) -> None:
        """Release backend resources (database connections)."""
        with self._lock:
            self._backend.close()
