"""ShardedGraphCache: N independent GraphCache shards behind one front end.

PR 2 made one :class:`~repro.core.cache.GraphCache` thread-safe, but every
commit in the whole service still serializes on that cache's single GC lock —
``query_many(jobs=N)`` can only overlap Method-M filtering, never the GC
stages themselves.  Sharding removes that ceiling the way the paper's Cache
Manager architecture (§6.1) invites: the data layer is split into N fully
independent shards, each a complete :class:`GraphCache` with its own stores,
GCindex, statistics, window manager **and its own GC lock**, so N full
pipelines — processors, pruning, verification and commit — run concurrently,
one per shard.

Routing invariant
-----------------
Queries are routed by a **deterministic, process-independent hash** of the
query's interned label-path features (the same feature extractor GCindex
uses).  Consequences the tests pin:

* the same query structure always lands on the same shard — in one run, in a
  replay, and across processes (`zlib.crc32` over the canonical feature
  string; no dependence on ``PYTHONHASHSEED``);
* ``shards=1`` routes everything to shard 0, which *is* a plain
  ``GraphCache`` — answers and deterministic work counters are identical to
  an unsharded cache on any workload (counter-identity invariant);
* within each shard, queries execute in submission order, so per-shard work
  counters are deterministic no matter how many service threads drive the
  shards.

Because routing is structural, repeated (Zipf-skewed) query structures hit
the shard that already caches them; distinct structures spread by hash.  Each
shard owns ``cache_capacity`` entries and its own window, so a sharded cache
holds up to ``N x cache_capacity`` entries overall — capacity scales with N,
which is the point (one process's RAM stops being the ceiling once shards are
combined with the SQLite backend).
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import fields, replace
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..methods.base import Method
from .cache import CacheQueryResult, CacheRuntimeStatistics, GraphCache
from .config import GraphCacheConfig
from .policies import (
    MaintenanceEngine,
    MaintenanceReport,
    MaintenanceScheduler,
    PlanJournal,
)
from .query_index import QueryGraphIndex

__all__ = ["ShardedGraphCache", "build_cache", "stable_feature_hash"]

#: Unit separators for the canonical feature serialization (never occur in
#: vertex labels produced by the generators or the transaction format).
_LABEL_SEP = "\x1f"
_FEATURE_SEP = "\x1e"


def stable_feature_hash(features: Counter) -> int:
    """Process-independent hash of a query-feature counter.

    The counter maps label-path tuples to occurrence counts (the GCindex
    feature extractor).  Features are serialized in sorted order and hashed
    with ``zlib.crc32``, so the value — and therefore shard routing — is
    identical across runs, machines and ``PYTHONHASHSEED`` values.
    """
    payload = _FEATURE_SEP.join(
        f"{_LABEL_SEP.join(path)}={count}"
        for path, count in sorted(features.items())
    )
    return zlib.crc32(payload.encode("utf-8"))


class ShardedGraphCache:
    """N independent :class:`GraphCache` shards with feature-hash routing.

    Parameters
    ----------
    method:
        The Method M shared by every shard.  Method state (dataset, FTV
        index, matcher plan caches) is read-only on the query path, so one
        instance safely serves all shards concurrently.
    config:
        Cache configuration; ``config.shards`` sets the shard count (every
        shard gets the full ``cache_capacity``/``window_size``).  With
        ``backend="sqlite"`` and a ``backend_path``, shard ``k`` stores its
        tables in ``<path>.shard<k>`` so databases stay independent.
    matcher:
        Optional containment-matcher override, forwarded to every shard.
    """

    def __init__(
        self,
        method: Method,
        config: Optional[GraphCacheConfig] = None,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        self._config = config or GraphCacheConfig()
        self._method = method
        # The router's feature extractor mirrors GCindex's (same path length,
        # same memo) but is a dedicated instance so routing never contends
        # with any shard's index lock; it is never mutated, so one copy.
        self._router_index = QueryGraphIndex(
            max_path_length=self._config.index_path_length,
            double_buffered=False,
        )
        self._shards: Tuple[GraphCache, ...] = tuple(
            GraphCache(method, self._shard_config(shard), matcher=matcher)
            for shard in range(self._config.shards)
        )

    @staticmethod
    def _shard_path(path: Optional[str], shard: int) -> Optional[str]:
        """Derive shard ``shard``'s file from a base path (``<name>.shard<k>``)."""
        if path is None:
            return None
        return str(Path(path).with_name(f"{Path(path).name}.shard{shard}"))

    def _shard_config(self, shard: int) -> GraphCacheConfig:
        """Per-shard configuration: one plain cache, own backend + journal."""
        backend_path = self._config.backend_path
        journal_path = self._config.journal_path
        if self._config.shards > 1:
            backend_path = self._shard_path(backend_path, shard)
            journal_path = self._shard_path(journal_path, shard)
        return replace(
            self._config,
            shards=1,
            backend_path=backend_path,
            journal_path=journal_path,
        )

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> GraphCacheConfig:
        """The sharded cache's configuration (``config.shards`` shards)."""
        return self._config

    @property
    def method(self) -> Method:
        """The Method M shared by every shard."""
        return self._method

    @property
    def shards(self) -> Tuple[GraphCache, ...]:
        """The shard caches, indexed by shard id."""
        return self._shards

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------ #
    def shard_of(self, query: Graph) -> int:
        """Deterministic shard id for ``query`` (structural feature hash)."""
        if len(self._shards) == 1:
            return 0
        features = self._router_index.query_features(query)
        return stable_feature_hash(features) % len(self._shards)

    def shard_for(self, query: Graph) -> GraphCache:
        """The shard cache that serves ``query``."""
        return self._shards[self.shard_of(query)]

    # ------------------------------------------------------------------ #
    def query(self, query: Graph) -> CacheQueryResult:
        """Answer a query through its shard's full pipeline."""
        return self.shard_for(query).query(query)

    def answer(self, query: Graph) -> FrozenSet[int]:
        """Convenience wrapper returning only the answer set."""
        return self.query(query).answer_ids

    def lookup(self, query: Graph) -> FrozenSet[int]:
        """Answer a query read-only through its shard (replica serving path).

        Routes like :meth:`query` but delegates to
        :meth:`GraphCache.lookup`: no serial is assigned, nothing joins the
        window and no statistics move — the sharded twin of the replica
        read path.
        """
        return self.shard_for(query).lookup(query)

    # ------------------------------------------------------------------ #
    @property
    def runtime_statistics(self) -> CacheRuntimeStatistics:
        """Shard-wise aggregate of every shard's runtime counters.

        Summed field-by-field over the dataclass fields, so counters added to
        :class:`CacheRuntimeStatistics` later aggregate automatically.
        """
        total = CacheRuntimeStatistics()
        for shard in self._shards:
            runtime = shard.runtime_statistics
            for spec in fields(CacheRuntimeStatistics):
                setattr(
                    total,
                    spec.name,
                    getattr(total, spec.name) + getattr(runtime, spec.name),
                )
        return total

    def shard_statistics(self) -> List[CacheRuntimeStatistics]:
        """Per-shard runtime counters, indexed by shard id."""
        return [shard.runtime_statistics for shard in self._shards]

    def maintenance_engines(self) -> List[MaintenanceEngine]:
        """Per-shard maintenance engines, indexed by shard id.

        Every shard runs its own engine (own utility heap, own admission
        calibration) under its own GC lock — maintenance rounds on different
        shards proceed concurrently, like everything else per-shard.
        """
        return [shard.maintenance_engine for shard in self._shards]

    def maintenance_schedulers(self) -> List[MaintenanceScheduler]:
        """Per-shard maintenance schedulers, indexed by shard id."""
        return [shard.maintenance_scheduler for shard in self._shards]

    def plan_journals(self) -> List[PlanJournal]:
        """Per-shard plan journals, indexed by shard id."""
        return [shard.plan_journal for shard in self._shards]

    def drain_maintenance(self) -> None:
        """Block until every shard's pending maintenance rounds are applied."""
        for shard in self._shards:
            shard.drain_maintenance()

    def maintenance_reports(self) -> List[MaintenanceReport]:
        """Every shard's cache-update reports, grouped by shard id order."""
        collected: List[MaintenanceReport] = []
        for shard in self._shards:
            collected.extend(shard.window_manager.reports)
        return collected

    def results(self) -> List[CacheQueryResult]:
        """All per-query results, ordered by serial within each shard."""
        collected: List[CacheQueryResult] = []
        for shard in self._shards:
            collected.extend(shard.results())
        return collected

    def cache_size_bytes(self) -> int:
        """Approximate memory footprint summed over the shards."""
        return sum(shard.cache_size_bytes() for shard in self._shards)

    def seal_storage(self) -> None:
        """Seal every shard's sealable backends (mmap segment publish)."""
        for shard in self._shards:
            shard.seal_storage()

    def seal_delta_storage(self) -> int:
        """Delta-publish every shard's arena tails; returns records published.

        Each shard also runs its automatic-compaction check (see
        :meth:`GraphCache.seal_delta_storage`).
        """
        return sum(shard.seal_delta_storage() for shard in self._shards)

    @property
    def compaction_events(self) -> List[Dict[str, object]]:
        """Completed automatic-compaction events across shards (shard order)."""
        collected: List[Dict[str, object]] = []
        for shard in self._shards:
            collected.extend(shard.compaction_events)
        return collected

    def close(self) -> None:
        """Release every shard's pipeline and backend resources."""
        for shard in self._shards:
            shard.close()


def build_cache(
    method: Method,
    config: Optional[GraphCacheConfig] = None,
    matcher: Optional[SubgraphMatcher] = None,
) -> Union[GraphCache, ShardedGraphCache]:
    """Build the cache the configuration asks for: plain, or sharded.

    ``config.shards == 1`` (default) yields a plain :class:`GraphCache`;
    anything larger yields a :class:`ShardedGraphCache`.  This is the single
    construction point the harness, the service facade and the CLI share.
    """
    config = config or GraphCacheConfig()
    if config.shards > 1:
        return ShardedGraphCache(method, config, matcher=matcher)
    return GraphCache(method, config, matcher=matcher)
