"""Compatibility shim: the replacement policies moved to :mod:`repro.core.policies`.

The five paper policies (LRU/POP/PIN/PINC/HD) now live in
:mod:`repro.core.policies.replacement`, next to the incremental utility heap
and the maintenance engine that consume them.  This module re-exports the
seed-era names so existing imports keep working.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.replacement is a deprecated re-export shim; "
    "import from repro.core.policies instead",
    DeprecationWarning,
    stacklevel=2,
)

from .policies.replacement import (
    HybridPolicy,
    LRUPolicy,
    PINCPolicy,
    PINPolicy,
    POPPolicy,
    ReplacementPolicy,
    available_policies,
    policy_by_name,
    squared_coefficient_of_variation,
)

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "POPPolicy",
    "PINPolicy",
    "PINCPolicy",
    "HybridPolicy",
    "policy_by_name",
    "available_policies",
    "squared_coefficient_of_variation",
]
