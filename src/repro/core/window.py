"""Compatibility shim: the Window Manager moved to :mod:`repro.core.policies`.

:class:`WindowManager` now lives in :mod:`repro.core.policies.window` as a
thin batching front end over the
:class:`~repro.core.policies.engine.MaintenanceEngine`;
:class:`MaintenanceReport` (extended with the per-round plan and the
O(window) op counters) lives in :mod:`repro.core.policies.plan`.  This
module re-exports the seed-era names so existing imports keep working.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.window is a deprecated re-export shim; "
    "import from repro.core.policies instead",
    DeprecationWarning,
    stacklevel=2,
)

from .policies.plan import MaintenanceReport
from .policies.window import WindowManager

__all__ = ["MaintenanceReport", "WindowManager"]
