"""Window Manager: batched cache updates with admission control (§6.2).

New queries are not inserted into the cache one by one.  They accumulate in
the Window; when the Window is full, the Window Manager

1. runs the admission controller over the window queries (cache pollution
   avoidance),
2. determines how many cached entries must be evicted to make room and asks
   the replacement policy for the victims,
3. installs the new cache contents and rebuilds the GCindex, swapping it in
   place of the old one,
4. removes the statistics of evicted queries.

In the paper this happens on a separate thread while queries keep being
served by the old index; in this single-threaded reproduction the maintenance
work is executed synchronously but its wall-clock cost is accounted separately
(it is the "overhead" series of Figure 10) and not charged to query response
time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .admission import AdmissionController
from .query_index import QueryGraphIndex
from .replacement import ReplacementPolicy
from .statistics import CachedQueryStats, StatisticsManager
from .stores import CacheEntry, CacheStore, WindowEntry, WindowStore

__all__ = ["MaintenanceReport", "WindowManager"]


@dataclass(frozen=True)
class MaintenanceReport:
    """Summary of one cache-update round."""

    window_queries: int
    admitted_serials: Tuple[int, ...]
    rejected_serials: Tuple[int, ...]
    evicted_serials: Tuple[int, ...]
    cache_size_after: int
    elapsed_s: float


class WindowManager:
    """Coordinates admission, replacement and GCindex rebuilds."""

    def __init__(
        self,
        cache_store: CacheStore,
        window_store: WindowStore,
        statistics: StatisticsManager,
        index: QueryGraphIndex,
        policy: ReplacementPolicy,
        admission: AdmissionController,
    ) -> None:
        self._cache_store = cache_store
        self._window_store = window_store
        self._statistics = statistics
        self._index = index
        self._policy = policy
        self._admission = admission
        self._reports: List[MaintenanceReport] = []
        self._total_maintenance_s = 0.0

    # ------------------------------------------------------------------ #
    @property
    def reports(self) -> List[MaintenanceReport]:
        """Reports of every cache-update round so far."""
        return list(self._reports)

    @property
    def total_maintenance_s(self) -> float:
        """Cumulative wall-clock time spent on cache maintenance."""
        return self._total_maintenance_s

    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy in use."""
        return self._policy

    @property
    def admission(self) -> AdmissionController:
        """The admission controller in use."""
        return self._admission

    def window_entries(self) -> List[WindowEntry]:
        """Current window contents (ordered by serial), without draining."""
        return self._window_store.entries()

    # ------------------------------------------------------------------ #
    def add_query(self, entry: WindowEntry) -> Optional[MaintenanceReport]:
        """Add a processed query to the Window; run maintenance if it filled up."""
        self._window_store.add(entry)
        # Window queries get their static statistics recorded immediately so
        # that, if admitted, their history starts at first execution.
        self._statistics.register_query(
            CachedQueryStats(
                serial=entry.serial,
                order=entry.query.order,
                size=entry.query.size,
                distinct_labels=len(entry.query.distinct_labels()),
                filter_time_s=entry.filter_time_s,
                verify_time_s=entry.verify_time_s,
            )
        )
        if self._window_store.is_full:
            return self.run_maintenance(current_serial=entry.serial)
        return None

    # ------------------------------------------------------------------ #
    def run_maintenance(self, current_serial: int) -> MaintenanceReport:
        """Drain the window and update cache contents, index and statistics."""
        started = time.perf_counter()
        window_entries = self._window_store.drain()

        # 1. Admission control (calibrates itself on the first windows).
        self._admission.observe_window(window_entries)
        admitted = self._admission.filter_admitted(window_entries)
        if len(admitted) > self._cache_store.capacity:
            # Windows larger than the cache itself: only the most recent
            # admitted queries can possibly fit.
            admitted = admitted[-self._cache_store.capacity:]
        rejected = [entry for entry in window_entries if entry not in admitted]

        # 2. Decide evictions.
        free_slots = self._cache_store.free_slots()
        evict_count = max(0, len(admitted) - free_slots)
        evicted: List[int] = []
        if evict_count > 0:
            snapshots = self._statistics.snapshots(self._cache_store.serials())
            evicted = self._policy.select_victims(
                snapshots, evict_count, current_serial=current_serial
            )

        # 3. Compute the new cache contents and swap them (and the index) in.
        surviving = [
            entry for entry in self._cache_store if entry.serial not in set(evicted)
        ]
        new_entries = surviving + [
            CacheEntry(
                serial=entry.serial, query=entry.query, answer_ids=entry.answer_ids
            )
            for entry in admitted
        ]
        self._cache_store.replace_contents(new_entries)
        self._index.rebuild(
            (entry.serial, entry.query) for entry in self._cache_store
        )

        # 4. Lazily drop statistics of evicted and rejected queries.
        for serial in evicted:
            self._statistics.forget_query(serial)
        for entry in rejected:
            self._statistics.forget_query(entry.serial)

        elapsed = time.perf_counter() - started
        self._total_maintenance_s += elapsed
        report = MaintenanceReport(
            window_queries=len(window_entries),
            admitted_serials=tuple(entry.serial for entry in admitted),
            rejected_serials=tuple(entry.serial for entry in rejected),
            evicted_serials=tuple(evicted),
            cache_size_after=len(self._cache_store),
            elapsed_s=elapsed,
        )
        self._reports.append(report)
        return report
