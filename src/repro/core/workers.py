"""Multi-process serving over a sealed graph arena.

:class:`ProcessPoolCacheService` is the process-level analogue of
:class:`~repro.core.sharding.ShardedGraphCache`: the cache is split into
crc32-routed shards, but the shards are served by ``N`` forked worker
processes instead of threads, so full GC pipelines run without sharing a
GIL.  The storage substrate is the mmap backend — the parent (optionally)
warms the cache in-process, seals every shard's arena segments, and only
then forks; each worker attaches the read-only segments and adopts the warm
contents through the ordinary backend warm-start path, sharing the sealed
pages with every sibling.

Protocol invariants:

* **No pickled graphs.**  Queries cross the process boundary as packed CSR
  records (:meth:`~repro.graphs.graph.Graph.to_packed` bytes); routing
  happens parent-side from the query's interned label-path features (the
  same :func:`~repro.core.sharding.stable_feature_hash` a sharded cache
  uses), so a worker only ever receives queries for shards it owns.
  Replies are plain :class:`~repro.core.cache.CacheQueryResult` dataclasses
  (no ``Graph`` fields).
* **Deterministic counters.**  Worker ``w`` owns shards ``{k : k % N == w}``
  and serves each shard's sub-stream in submission order, so the aggregate
  work counters are identical to a single-process
  :class:`ShardedGraphCache` with the same shard count on the same
  workload — the counter-identity oracle the benchmarks pin.
* **Fork after seal.**  Workers are forked only after the parent's warm
  cache (if any) has been sealed and closed, so no locks or threads are
  alive at fork time and the children inherit nothing but the module state
  and the sealed files.
* **Zero-decode serving (packed match).**  Unless ``config.packed_match``
  is ``"off"``, a worker's query loop never constructs a ``Graph``: the
  packed bytes open as a CSR-native
  :class:`~repro.graphs.packed.PackedGraphView`, stored entries come back
  as memoised views over the attached arena, and the target dataset is a
  :class:`~repro.core.packed_dataset.PackedGraphDataset` over one shared
  segment sealed before the fork (instead of a per-process ``Graph`` copy).
  Every such query bumps the ``decode_avoided`` counter, so the identity
  suites can pin "zero ``Graph`` constructions" as
  ``decode_avoided == requests served``.  Long-lived pools absorb new
  admissions with :meth:`ProcessPoolCacheService.reseal` — each worker
  publishes its arena tails as delta segments (no stop-the-world rewrite).
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from dataclasses import fields, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..graphs.packed import PackedGraph, PackedGraphView
from ..isomorphism.base import SubgraphMatcher
from ..methods.base import Method
from .cache import CacheQueryResult, CacheRuntimeStatistics, GraphCache
from .config import GraphCacheConfig
from .packed_dataset import PackedGraphDataset, seal_dataset
from .query_index import QueryGraphIndex
from .sharding import ShardedGraphCache, stable_feature_hash

__all__ = ["ProcessPoolCacheService", "fork_context"]


def fork_context() -> multiprocessing.context.BaseContext:
    """The ``fork`` multiprocessing context, or a :class:`CacheError`.

    Fork-after-seal is the only start method the process-level services
    support (workers inherit the Method and sealed arena paths through the
    copy-on-write image, never through pickling).  Centralised here so the
    worker pool and the replication fan-out raise the same guidance on
    platforms without ``fork``.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise CacheError(
            "this service requires the fork start method (POSIX); "
            "use the thread-based equivalent on this platform"
        )
    return multiprocessing.get_context("fork")


def _shard_config(config: GraphCacheConfig, shard: int, shards: int) -> GraphCacheConfig:
    """Per-shard worker configuration (mirrors ShardedGraphCache's derivation)."""
    backend_path = config.backend_path
    journal_path = config.journal_path
    if shards > 1:
        backend_path = ShardedGraphCache._shard_path(backend_path, shard)
        journal_path = ShardedGraphCache._shard_path(journal_path, shard)
    return replace(
        config, shards=1, backend_path=backend_path, journal_path=journal_path
    )


def _cache_arena_statistics(cache: GraphCache) -> Dict[str, object]:
    """Aggregate arena occupancy over a cache's storage backends."""
    tables = []
    for backend in cache.storage_backends():
        arena_statistics = getattr(backend, "arena_statistics", None)
        if arena_statistics is not None:
            tables.append(arena_statistics())
    return {
        "live_bytes": sum(t["live_bytes"] for t in tables),
        "dead_bytes": sum(t["dead_bytes"] for t in tables),
        "delta_segments": sum(t["delta_segments"] for t in tables),
        "tables": tables,
        "compaction_events": cache.compaction_events,
    }


def _worker_loop(
    conn, owned, method, config, shards, matcher, dataset_path, ftv_index_path
) -> None:
    """Serve full pipelines for the owned shards until told to close.

    Runs in the forked child.  ``method`` and ``config`` arrive through the
    fork's copy-on-write image, never through pickling; the caches built
    here attach the sealed arena segments read-only and warm-start from
    them.  In packed-match mode (``packed_match != "off"``; ``"auto"``
    resolves to ``"on"`` here, where the attached read-only arena makes
    views strictly cheaper) the loop is zero-decode: queries open as
    :class:`PackedGraphView` records, stored entries are served as memoised
    views, and the method verifies against the shared packed dataset arena.

    When the parent sealed a ``*.ftv.arena`` feature index, the worker
    attaches it instead of serving from the copy-on-write image of the
    parent's built index — the postings become shared read-only pages.  A
    stale or mismatched index (dataset resealed after the build, different
    method parameters) fails the attach validation with a warning and the
    worker rebuilds in-process; over the attached packed dataset the rebuild
    is still CSR-native and decode-free.
    """
    packed = config.packed_match.lower() != "off"
    if packed:
        config = replace(config, packed_match="on")
        if dataset_path is not None and os.path.exists(dataset_path):
            method.rebind_dataset(
                PackedGraphDataset.attach(dataset_path, name=method.dataset.name)
            )
            if ftv_index_path is not None and os.path.exists(ftv_index_path):
                if not method.attach_feature_index(ftv_index_path):
                    method.rebuild_index()
    caches: Dict[int, GraphCache] = {
        shard: GraphCache(method, _shard_config(config, shard, shards), matcher=matcher)
        for shard in owned
    }
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            kind = message[0]
            if kind == "query":
                replies: List[Tuple[int, CacheQueryResult]] = []
                for position, shard, payload in message[1]:
                    if packed:
                        query: Graph = PackedGraphView(PackedGraph.from_bytes(payload))
                    else:
                        query = PackedGraph.decode_graph(payload)
                    replies.append((position, caches[shard].query(query)))
                conn.send(("result", replies))
            elif kind == "stats":
                conn.send(
                    (
                        "stats",
                        {
                            shard: cache.runtime_statistics.as_dict()
                            for shard, cache in caches.items()
                        },
                    )
                )
            elif kind == "reseal":
                published: Dict[int, int] = {}
                for shard, cache in caches.items():
                    published[shard] = cache.seal_delta_storage()
                    # Any compaction the delta publish triggered must finish
                    # before the reply: the reseal tick is the pool's control
                    # plane, so folds drain here, never on the query path.
                    cache.drain_maintenance()
                conn.send(("resealed", published))
            elif kind == "arena_stats":
                conn.send(
                    (
                        "arena_stats",
                        {
                            shard: _cache_arena_statistics(cache)
                            for shard, cache in caches.items()
                        },
                    )
                )
            elif kind == "close":
                conn.send(("closed", None))
                break
            else:  # pragma: no cover - protocol misuse guard
                raise CacheError(f"unknown worker message {kind!r}")
    finally:
        for cache in caches.values():
            cache.close()
        conn.close()


class ProcessPoolCacheService:
    """N forked workers serving crc32-routed shards over a sealed arena.

    Parameters
    ----------
    method:
        The Method M every worker serves (inherited through the fork).
    config:
        Cache configuration.  The backend is forced to ``"mmap"``; when no
        ``backend_path`` is given the service owns a temporary directory for
        the segments.  ``config.shards`` sets the shard count when > 1,
        otherwise the service uses one shard per worker.
    workers:
        Number of worker processes to fork (each owns ``shards / workers``
        of the shards, round-robin).
    matcher:
        Optional containment-matcher override, forwarded to every shard.

    Lifecycle: optionally :meth:`warm` with a query stream (runs a sharded
    cache in-process over the same segment paths), then :meth:`start` —
    which seals the warm state and forks — then :meth:`query` /
    :meth:`run`; finally :meth:`close`.  ``start`` is implicit on first use.
    """

    def __init__(
        self,
        method: Method,
        config: Optional[GraphCacheConfig] = None,
        workers: int = 2,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        if workers < 1:
            raise CacheError("ProcessPoolCacheService needs at least one worker")
        fork_context()  # fail fast on platforms without fork
        base = config or GraphCacheConfig()
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        backend_path = base.backend_path
        if backend_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="graphcache-arena-")
            backend_path = os.path.join(self._tmpdir.name, "cache")
        shard_count = base.shards if base.shards > 1 else workers
        if workers > shard_count:
            raise CacheError(
                f"{workers} workers cannot share {shard_count} shards; "
                "raise config.shards or lower workers"
            )
        self._config = replace(
            base, backend="mmap", backend_path=backend_path, shards=shard_count
        )
        self._packed = self._config.packed_match.lower() != "off"
        self._dataset_path: Optional[str] = (
            f"{backend_path}.dataset.arena" if self._packed else None
        )
        # One sealed feature index shared by the pool, when the method can
        # compile one (FTV methods).  Sealed in start(), attached by every
        # worker after the fork.
        self._ftv_index_path: Optional[str] = (
            f"{backend_path}.ftv.arena"
            if self._packed and hasattr(method, "seal_feature_index")
            else None
        )
        self._method = method
        self._matcher = matcher
        self._workers = workers
        self._router_index = QueryGraphIndex(
            max_path_length=self._config.index_path_length,
            double_buffered=False,
        )
        self._warm_cache: Optional[ShardedGraphCache] = None
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._pipes: List = []
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> GraphCacheConfig:
        """Effective configuration (mmap backend, resolved shard count)."""
        return self._config

    @property
    def shard_count(self) -> int:
        """Number of crc32-routed shards across the pool."""
        return self._config.shards

    @property
    def worker_count(self) -> int:
        """Number of forked worker processes."""
        return self._workers

    @property
    def started(self) -> bool:
        """Whether the workers have been forked."""
        return bool(self._processes)

    def shard_of(self, query: Graph) -> int:
        """Deterministic shard id for ``query`` (structural feature hash)."""
        if self._config.shards == 1:
            return 0
        features = self._router_index.query_features(query)
        return stable_feature_hash(features) % self._config.shards

    # ------------------------------------------------------------------ #
    def warm(self, queries: Iterable[Graph]) -> List[CacheQueryResult]:
        """Run ``queries`` through an in-process cache before forking.

        The warm cache writes to the same per-shard arena paths the workers
        will attach; :meth:`start` seals it.  Only valid before ``start``.
        """
        if self.started:
            raise CacheError("cannot warm a service whose workers are running")
        if self._warm_cache is None:
            self._warm_cache = ShardedGraphCache(
                self._method, self._config, matcher=self._matcher
            )
        return [self._warm_cache.query(query) for query in queries]

    def start(self) -> None:
        """Seal the warm state (if any) and fork the worker processes."""
        if self.started:
            return
        if self._closed:
            raise CacheError("service is closed")
        if self._warm_cache is not None:
            # Seal-then-close before forking: the workers attach the sealed
            # segments, and no warm-cache thread or lock survives the fork.
            self._warm_cache.seal_storage()
            self._warm_cache.close()
            self._warm_cache = None
        if self._dataset_path is not None and not os.path.exists(self._dataset_path):
            # One shared packed copy of the target dataset: sealed here, once,
            # then attached read-only by every worker after the fork.
            seal_dataset(self._method.dataset, self._dataset_path)
        if self._ftv_index_path is not None and not os.path.exists(self._ftv_index_path):
            # Compile the parent's built feature index into one sealed
            # segment; workers attach it instead of rederiving (or carrying
            # a copy-on-write image of) the Python index structures.
            try:
                self._method.seal_feature_index(self._ftv_index_path)
            except CacheError:
                # Methods without a sealable index (attached-only instances,
                # FTV subclasses without seal support) serve from their
                # in-process index as before.
                self._ftv_index_path = None
        context = fork_context()
        for worker in range(self._workers):
            owned = tuple(
                shard
                for shard in range(self._config.shards)
                if shard % self._workers == worker
            )
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_loop,
                args=(
                    child_conn,
                    owned,
                    self._method,
                    self._config,
                    self._config.shards,
                    self._matcher,
                    self._dataset_path,
                    self._ftv_index_path,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._pipes.append(parent_conn)

    # ------------------------------------------------------------------ #
    def run(self, queries: Sequence[Graph]) -> List[CacheQueryResult]:
        """Serve a batch: route, ship packed bytes, collect in input order.

        Each worker receives its sub-stream in submission order (the
        determinism invariant); the workers execute concurrently and the
        replies are reassembled by position.
        """
        self.start()
        batches: List[List[Tuple[int, int, bytes]]] = [
            [] for _ in range(self._workers)
        ]
        for position, query in enumerate(queries):
            shard = self.shard_of(query)
            payload = query.to_packed().to_bytes()
            batches[shard % self._workers].append((position, shard, payload))
        active = []
        for worker, batch in enumerate(batches):
            if batch:
                self._pipes[worker].send(("query", batch))
                active.append(worker)
        results: List[Optional[CacheQueryResult]] = [None] * len(queries)
        for worker in active:
            kind, replies = self._pipes[worker].recv()
            if kind != "result":  # pragma: no cover - protocol misuse guard
                raise CacheError(f"unexpected worker reply {kind!r}")
            for position, result in replies:
                results[position] = result
        return results  # type: ignore[return-value]

    def query(self, query: Graph) -> CacheQueryResult:
        """Serve one query through its owning worker."""
        return self.run([query])[0]

    # ------------------------------------------------------------------ #
    def runtime_statistics(self) -> CacheRuntimeStatistics:
        """Pool-wide aggregate of every shard's runtime counters."""
        total = CacheRuntimeStatistics()
        for per_shard in self.shard_statistics().values():
            for spec in fields(CacheRuntimeStatistics):
                setattr(
                    total,
                    spec.name,
                    getattr(total, spec.name) + getattr(per_shard, spec.name),
                )
        return total

    def shard_statistics(self) -> Dict[int, CacheRuntimeStatistics]:
        """Per-shard runtime counters, collected from the owning workers."""
        self.start()
        collected: Dict[int, CacheRuntimeStatistics] = {}
        for pipe in self._pipes:
            pipe.send(("stats",))
        for pipe in self._pipes:
            kind, per_shard = pipe.recv()
            if kind != "stats":  # pragma: no cover - protocol misuse guard
                raise CacheError(f"unexpected worker reply {kind!r}")
            for shard, payload in per_shard.items():
                collected[shard] = CacheRuntimeStatistics(**payload)
        return collected

    def reseal(self) -> Dict[int, int]:
        """Publish every shard's arena tail as delta segments.

        Broadcasts the ``reseal`` message: each worker calls
        :meth:`~repro.core.backends.mmapped.MmapBackend.seal_delta` on its
        shards' backends, appending one ``.deltaN`` file per dirty arena
        without moving any sealed record (live views stay valid; no
        stop-the-world rewrite).  Returns ``{shard: records published}``.
        """
        self.start()
        published: Dict[int, int] = {}
        for pipe in self._pipes:
            pipe.send(("reseal",))
        for pipe in self._pipes:
            kind, per_shard = pipe.recv()
            if kind != "resealed":  # pragma: no cover - protocol misuse guard
                raise CacheError(f"unexpected worker reply {kind!r}")
            published.update(per_shard)
        return published

    def arena_statistics(self) -> Dict[str, object]:
        """Pool-wide arena occupancy (live/dead bytes, delta segments).

        Aggregates every shard's per-backend
        :meth:`~repro.core.backends.mmapped.MmapBackend.arena_statistics`
        and keeps the per-shard breakdown under ``"shards"``.
        """
        self.start()
        per_shard: Dict[int, Dict[str, object]] = {}
        for pipe in self._pipes:
            pipe.send(("arena_stats",))
        for pipe in self._pipes:
            kind, reply = pipe.recv()
            if kind != "arena_stats":  # pragma: no cover - protocol misuse guard
                raise CacheError(f"unexpected worker reply {kind!r}")
            per_shard.update(reply)
        return {
            "live_bytes": sum(s["live_bytes"] for s in per_shard.values()),
            "dead_bytes": sum(s["dead_bytes"] for s in per_shard.values()),
            "delta_segments": sum(s["delta_segments"] for s in per_shard.values()),
            "compaction_events": [
                event
                for shard in sorted(per_shard)
                for event in per_shard[shard].get("compaction_events", [])
            ],
            "shards": {shard: per_shard[shard] for shard in sorted(per_shard)},
        }

    @property
    def feature_index_path(self) -> Optional[str]:
        """Path of the pool's sealed ``*.ftv.arena`` feature index, if any."""
        return self._ftv_index_path

    def arena_paths(self) -> List[Path]:
        """Sealed segment files of every shard (cache + window stores)."""
        paths = []
        for shard in range(self._config.shards):
            base = _shard_config(self._config, shard, self._config.shards)
            for table in ("cache_entries", "window_entries"):
                candidate = Path(f"{base.backend_path}.{table}.arena")
                if candidate.exists():
                    paths.append(candidate)
        return paths

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers, close the pipes, drop any owned temp storage."""
        if self._closed:
            return
        self._closed = True
        if self._warm_cache is not None:
            self._warm_cache.close()
            self._warm_cache = None
        for pipe in self._pipes:
            try:
                pipe.send(("close",))
            except (BrokenPipeError, OSError):
                continue
        for pipe in self._pipes:
            try:
                pipe.recv()
            except (EOFError, OSError):
                pass
            pipe.close()
        for process in self._processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker guard
                process.terminate()
                process.join(timeout=5)
        self._processes = []
        self._pipes = []
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ProcessPoolCacheService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
