"""Journal-driven read replicas: scale the read path horizontally.

The decide/apply split (PR 3) made a maintenance round a *mechanical* object:
a :class:`~repro.core.policies.plan.MaintenancePlan` plus the round's admitted
window entries and the hit events observed since the previous round.  PR 10
journals exactly that — every appended record is a complete, replayable
**frame** — which turns the plan journal into a replication feed:

* the **primary** is an ordinary :class:`~repro.core.cache.GraphCache` (or
  :class:`~repro.core.sharding.ShardedGraphCache`) that owns admission: it
  serves queries, fills its window, decides and applies rounds, and appends
  frames to its journal;
* a :class:`ReplicaSet` subscribes to every shard's journal and ships each
  frame, in append order, to N **followers** — read-only caches that apply
  the frames through the same delta machinery
  (:meth:`~repro.core.cache.GraphCache.replay_plan` →
  :meth:`~repro.core.policies.engine.MaintenanceEngine.replay`) without
  re-deciding anything;
* followers serve :meth:`~repro.core.cache.GraphCache.lookup` — the full
  GC read pipeline (Mfilter → processors → pruner → verification) with no
  serial assignment, no window commit and no statistics movement — so read
  throughput scales with the replica count while the primary alone mutates.

**Identity invariant** (pinned by the tests and the replication benchmark):
because a frame carries everything ``apply`` consumed on the primary, a
follower that has applied rounds ``1..k`` holds *exactly* the primary's
cache state at round ``k``'s boundary — same entries, same per-query
statistics, same GCindex publication version, same next serial.

Two fan-out modes:

* ``mode="thread"`` — followers live in-process, one applier thread per
  replica (reads still overlap Method-M filtering; cheap and portable);
* ``mode="process"`` — followers are forked children
  (:func:`~repro.core.workers.fork_context`), each owning a full cache and
  applying frames shipped over a pipe, so replica reads escape the GIL the
  same way :class:`~repro.core.workers.ProcessPoolCacheService` shards do.

Lock discipline: the journal subscriber runs under the ``journal`` lock
(rank 45) and only touches the ``replication.state`` counters (rank 47) and
a stdlib queue — frames are enqueued, never applied, on the primary's
commit path.  The ``replication.reader`` lock (rank 48) guards only the
round-robin cursor and is released before any follower work.
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import asdict, dataclass, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..analysis.runtime import make_lock
from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..graphs.io import graph_from_text, graph_to_text
from ..isomorphism.base import SubgraphMatcher
from ..methods.base import Method
from .cache import GraphCache
from .config import GraphCacheConfig
from .policies import MaintenancePlan
from .policies.journal import HitEvent, decode_hits
from .sharding import ShardedGraphCache, build_cache
from .stores import CacheEntryCodec, WindowEntry, WindowEntryCodec
from .workers import fork_context

__all__ = [
    "CacheReplica",
    "ReplicaSet",
    "ReplicationFrame",
    "cache_state_digest",
]

AnyCache = Union[GraphCache, ShardedGraphCache]


# ---------------------------------------------------------------------- #
# Frames.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReplicationFrame:
    """One shippable maintenance round: plan + admitted entries + hits.

    The decoded form of one journal record — everything a follower (or a
    crash recovery) needs to reproduce the round's effect on the cache
    without re-deciding it.
    """

    round: int
    plan: MaintenancePlan
    entries: Tuple[WindowEntry, ...]
    hits: Tuple[HitEvent, ...]
    size_bytes: int

    @classmethod
    def from_record(
        cls, record: Dict[str, Any], line: Optional[str] = None
    ) -> "ReplicationFrame":
        """Decode a journal record into a frame.

        A record that admits serials but carries no ``admitted_entries``
        predates frame journaling (pre-PR-10 audit-only journals) and cannot
        be replayed — that is a hard error, not a silent skip, because a
        replica that dropped such a round would silently diverge.
        """
        plan = MaintenancePlan.from_record(record)
        if plan.admitted_serials and "admitted_entries" not in record:
            raise CacheError(
                "journal record admits serials but carries no admitted entries; "
                "this journal predates replication frames and cannot be "
                "replayed (re-run the primary to produce a frame journal)"
            )
        entries = tuple(
            WindowEntryCodec.decode(raw)
            for raw in record.get("admitted_entries", ())
        )
        if line is None:
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return cls(
            round=int(record.get("round", 0)),
            plan=plan,
            entries=entries,
            hits=decode_hits(record.get("hits", ())),
            size_bytes=len(line.encode("utf-8")),
        )


# ---------------------------------------------------------------------- #
# State digests (the identity oracle).
# ---------------------------------------------------------------------- #
def _shard_digest(shard: GraphCache, replicated_only: bool) -> Dict[str, Any]:
    entries = sorted(
        (
            CacheEntryCodec.encode(shard.cached_entry(serial))
            for serial in shard.cached_serials
        ),
        key=lambda record: record["serial"],
    )
    window = sorted(
        (WindowEntryCodec.encode(entry) for entry in shard.window_entries()),
        key=lambda record: record["serial"],
    )
    serials = [record["serial"] for record in entries]
    if not replicated_only:
        serials += [record["serial"] for record in window]
    stats = [
        asdict(shard.statistics_manager.snapshot(serial)) for serial in serials
    ]
    digest: Dict[str, Any] = {
        "entries": entries,
        "stats": stats,
        "index_version": shard.query_index.version,
    }
    if not replicated_only:
        digest["window"] = window
        digest["next_serial"] = shard.current_serial
    return digest


def cache_state_digest(
    cache: AnyCache,
    include_index_version: bool = True,
    replicated_only: bool = False,
) -> List[Dict[str, Any]]:
    """Per-shard, JSON-able digest of the replicated cache state.

    Covers exactly what replication promises to keep identical: the cached
    entries, the window contents, the per-query statistics of every live
    serial, the serial counter and the GCindex publication version.  Two
    caches with equal digests are indistinguishable to the read path.
    (Statistics are compared only for live serials — cached or windowed —
    matching what snapshots persist.)

    Two restrictions, for the two comparison contexts:

    * ``include_index_version=False`` drops the GCindex version: it is a
      *publication counter*, identical between a primary and a replica that
      applied the same rounds from scratch, but structurally different
      after a snapshot restore (one rebuild replaces many publishes) —
      recovery comparisons exclude it.
    * ``replicated_only=True`` drops the in-flight window and the serial
      counter: a replica tracks the primary *at round boundaries*, so
      between a shard's rounds the primary's window holds entries (and its
      serial counter covers queries) no frame has shipped yet.  What
      remains — cached entries, their statistics, the index version — is
      the state the read path serves from; entries and index version are
      identical at every instant, while hit statistics may *lead* the
      replica by the hit events buffered for the next frame.  The strict
      full-digest identity therefore holds exactly at each shard's round
      boundaries (what the tests pin, shard by shard).
    """
    shards: Sequence[GraphCache]
    if isinstance(cache, ShardedGraphCache):
        shards = cache.shards
    else:
        shards = (cache,)
    digests = [_shard_digest(shard, replicated_only) for shard in shards]
    if not include_index_version:
        for digest in digests:
            digest.pop("index_version")
    return digests


# ---------------------------------------------------------------------- #
# One follower.
# ---------------------------------------------------------------------- #
def _follower_config(config: GraphCacheConfig) -> GraphCacheConfig:
    """A follower's configuration, derived from the primary's.

    Same policies, capacities and shard count (frames are addressed by shard
    id, so the topology must match); but memory-backed, journal-less and
    synchronous — a follower never journals (a replayed round is already
    journaled on the primary) and never schedules rounds of its own.
    """
    return replace(
        config,
        backend="memory",
        backend_path=None,
        journal_path=None,
        journal_fsync=False,
        maintenance_mode="sync",
        compaction_threshold=None,
    )


class CacheReplica:
    """One read-only follower cache, fed frames and serving lookups.

    Built from the primary's configuration via :func:`_follower_config`;
    apply order is the caller's responsibility (the :class:`ReplicaSet`
    applier thread preserves journal append order per shard).
    """

    def __init__(
        self,
        method: Method,
        config: GraphCacheConfig,
        matcher: Optional[SubgraphMatcher] = None,
        name: str = "replica",
    ) -> None:
        self.name = name
        self._cache = build_cache(
            method, _follower_config(config), matcher=matcher
        )

    @property
    def cache(self) -> AnyCache:
        """The follower cache (exposed for inspection and tests)."""
        return self._cache

    def apply_frame(self, shard: int, frame: ReplicationFrame) -> None:
        """Apply one frame to the addressed shard (the sanctioned delta path)."""
        if isinstance(self._cache, ShardedGraphCache):
            target = self._cache.shards[shard]
        else:
            target = self._cache
        target.replay_plan(
            frame.plan,
            frame.entries,
            hits=frame.hits,
            frame_bytes=frame.size_bytes,
        )

    def lookup(self, query: Graph) -> FrozenSet[int]:
        """Serve one read-only query (no serial, no window, no statistics)."""
        return self._cache.lookup(query)

    def state_digest(
        self, replicated_only: bool = False
    ) -> List[Dict[str, Any]]:
        """Per-shard digest of the follower state (identity oracle)."""
        return cache_state_digest(
            self._cache, replicated_only=replicated_only
        )

    def statistics(self) -> Dict[str, Any]:
        """Replication counters: rounds/bytes applied, apply seconds."""
        runtime = self._cache.runtime_statistics
        return {
            "rounds_applied": runtime.replay_rounds,
            "bytes_applied": runtime.replay_bytes,
            "apply_time_s": runtime.replay_apply_time_s,
        }

    def close(self) -> None:
        """Release the follower's pipeline and store resources."""
        self._cache.close()


# ---------------------------------------------------------------------- #
# Fan-out backends.
# ---------------------------------------------------------------------- #
class _ThreadFollower:
    """In-process follower: a queue-fed applier thread over a CacheReplica."""

    def __init__(
        self,
        name: str,
        method: Method,
        config: GraphCacheConfig,
        matcher: Optional[SubgraphMatcher],
    ) -> None:
        self.name = name
        self._replica = CacheReplica(method, config, matcher=matcher, name=name)
        self._queue: "queue.Queue" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._loop, name=f"graphcache-{name}", daemon=True
        )
        self._thread.start()

    def ship(self, shard: int, record: Dict[str, Any], line: str) -> None:
        self._queue.put(("frame", shard, record, line))

    def _loop(self) -> None:
        while True:
            message = self._queue.get()
            try:
                if message[0] == "stop":
                    return
                if self._error is None:
                    _, shard, record, line = message
                    frame = ReplicationFrame.from_record(record, line=line)
                    self._replica.apply_frame(shard, frame)
            except BaseException as exc:  # surfaced on the next sync()
                self._error = exc
            finally:
                self._queue.task_done()

    def sync(self) -> None:
        self._queue.join()
        if self._error is not None:
            raise CacheError(
                f"{self.name} failed to apply a replication frame: "
                f"{self._error}"
            ) from self._error

    def lookup(self, query: Graph) -> FrozenSet[int]:
        return self._replica.lookup(query)

    def state_digest(
        self, replicated_only: bool = False
    ) -> List[Dict[str, Any]]:
        return self._replica.state_digest(replicated_only=replicated_only)

    def statistics(self) -> Dict[str, Any]:
        return self._replica.statistics()

    def close(self) -> None:
        self._queue.put(("stop",))
        self._thread.join(timeout=30)
        self._replica.close()


def _follower_process_loop(conn, method, config, matcher) -> None:
    """Serve one forked follower until told to close.

    ``method``/``config`` arrive through the fork's copy-on-write image.
    Frames are fire-and-forget (pipelined); the first apply error is
    remembered and surfaced on the next control message, mirroring the
    thread follower's sync semantics.
    """
    replica = CacheReplica(method, config, matcher=matcher)
    error: Optional[str] = None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            kind = message[0]
            if kind == "frame":
                if error is None:
                    try:
                        _, shard, record, line = message
                        frame = ReplicationFrame.from_record(record, line=line)
                        replica.apply_frame(shard, frame)
                    except BaseException as exc:
                        error = repr(exc)
            elif kind == "sync":
                conn.send(("synced", error, replica.statistics()))
            elif kind == "lookup":
                answers = replica.lookup(graph_from_text(message[1]))
                conn.send(("answers", sorted(answers)))
            elif kind == "digest":
                conn.send(
                    ("digest", replica.state_digest(replicated_only=message[1]))
                )
            elif kind == "stats":
                conn.send(("stats", replica.statistics()))
            elif kind == "close":
                conn.send(("closed", None))
                break
            else:  # pragma: no cover - protocol misuse guard
                raise CacheError(f"unknown follower message {kind!r}")
    finally:
        replica.close()
        conn.close()


class _ProcessFollower:
    """Forked follower: frames and control calls serialized on one feeder.

    The feeder thread is the only user of the parent end of the pipe, so
    frame shipping and control round-trips never interleave; control calls
    ride the same queue as frames and therefore observe every frame shipped
    before them (per-replica FIFO).
    """

    def __init__(
        self,
        name: str,
        method: Method,
        config: GraphCacheConfig,
        matcher: Optional[SubgraphMatcher],
    ) -> None:
        self.name = name
        context = fork_context()
        parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_follower_process_loop,
            args=(child_conn, method, _follower_config(config), matcher),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        self._queue: "queue.Queue" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._loop, name=f"graphcache-{name}-feeder", daemon=True
        )
        self._thread.start()

    def ship(self, shard: int, record: Dict[str, Any], line: str) -> None:
        self._queue.put(("frame", shard, record, line))

    def _call(self, *message: Any) -> Any:
        """Round-trip one control message through the feeder queue."""
        done = threading.Event()
        box: Dict[str, Any] = {}
        self._queue.put(("call", message, box, done))
        done.wait(timeout=60)
        if not done.is_set():
            raise CacheError(f"{self.name} did not answer {message[0]!r}")
        if "error" in box:
            raise CacheError(
                f"{self.name} failed on {message[0]!r}: {box['error']}"
            )
        return box["reply"]

    def _loop(self) -> None:
        while True:
            message = self._queue.get()
            try:
                if message[0] == "stop":
                    return
                if message[0] == "frame":
                    if self._error is None:
                        self._conn.send(message)
                else:  # ("call", payload, box, done)
                    _, payload, box, done = message
                    try:
                        self._conn.send(payload)
                        _, *reply = self._conn.recv()
                        box["reply"] = reply
                    except BaseException as exc:
                        box["error"] = repr(exc)
                    finally:
                        done.set()
            except BaseException as exc:
                self._error = exc
            finally:
                self._queue.task_done()

    def sync(self) -> None:
        self._queue.join()
        if self._error is not None:
            raise CacheError(
                f"{self.name} failed to ship a replication frame: "
                f"{self._error}"
            ) from self._error
        error, _stats = self._call("sync")
        if error is not None:
            raise CacheError(
                f"{self.name} failed to apply a replication frame: {error}"
            )

    def lookup(self, query: Graph) -> FrozenSet[int]:
        (answers,) = self._call("lookup", graph_to_text(query))
        return frozenset(int(x) for x in answers)

    def state_digest(
        self, replicated_only: bool = False
    ) -> List[Dict[str, Any]]:
        (digest,) = self._call("digest", replicated_only)
        return digest

    def statistics(self) -> Dict[str, Any]:
        (stats,) = self._call("stats")
        return stats

    def close(self) -> None:
        try:
            self._call("close")
        except CacheError:
            pass
        self._queue.put(("stop",))
        self._thread.join(timeout=30)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung follower guard
            self._process.terminate()
            self._process.join(timeout=5)


# ---------------------------------------------------------------------- #
# The replica set.
# ---------------------------------------------------------------------- #
class ReplicaSet:
    """N journal-fed read replicas behind one primary cache.

    Parameters
    ----------
    primary:
        The cache that owns admission.  Must be **fresh** (no rounds
        journaled yet): followers start empty and replicate forward, so a
        primary with applied rounds would leave them permanently behind —
        recover the follower from a checkpoint first in that case.
    replicas:
        Number of followers (each a complete cache with the primary's shard
        topology).
    mode:
        ``"thread"`` (in-process appliers) or ``"process"`` (forked
        followers over pipes; requires the POSIX ``fork`` start method).
    matcher:
        Optional containment-matcher override forwarded to every follower.

    Frames ship from a journal subscriber (append order per shard is the
    apply order); :meth:`sync` is the read-your-rounds barrier — after it
    returns, every follower has applied every round journaled before the
    call, and :meth:`lookup` answers from replica state identical to the
    primary's round boundary.
    """

    def __init__(
        self,
        primary: AnyCache,
        replicas: int = 2,
        mode: str = "thread",
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        if replicas < 1:
            raise CacheError("a ReplicaSet needs at least one replica")
        if mode not in ("thread", "process"):
            raise CacheError(f"unknown replication mode {mode!r}")
        self._primary = primary
        self._mode = mode
        if isinstance(primary, ShardedGraphCache):
            self._shards: Tuple[GraphCache, ...] = primary.shards
        else:
            self._shards = (primary,)
        for shard in self._shards:
            if shard.plan_journal.last_round:
                raise CacheError(
                    "attach replicas before the primary applies maintenance "
                    "rounds (followers replicate forward from round 1)"
                )
        self._state_lock = make_lock("replication.state")
        self._reader_lock = make_lock("replication.reader")
        self._cursor = 0
        self._rounds_shipped = 0
        self._bytes_shipped = 0
        follower_cls = _ThreadFollower if mode == "thread" else _ProcessFollower
        self._followers = [
            follower_cls(
                f"replica-{index}", primary.method, primary.config, matcher
            )
            for index in range(replicas)
        ]
        self._subscriptions = []
        for shard_id, shard in enumerate(self._shards):
            callback = self._make_subscriber(shard_id)
            shard.plan_journal.subscribe(callback)
            self._subscriptions.append((shard.plan_journal, callback))
        self._closed = False

    def _make_subscriber(self, shard_id: int):
        def _ship(record: Dict[str, Any], line: str) -> None:
            # Runs under the journal lock (rank 45): bump the ship counters
            # (rank 47) and enqueue — the frame is applied on the follower's
            # own thread/process, never on the primary's commit path.
            with self._state_lock:  # repro: lock[replication.state]
                self._rounds_shipped += 1
                self._bytes_shipped += len(line.encode("utf-8"))
            for follower in self._followers:
                follower.ship(shard_id, record, line)

        return _ship

    # ------------------------------------------------------------------ #
    @property
    def primary(self) -> AnyCache:
        """The cache that owns admission."""
        return self._primary

    @property
    def replica_count(self) -> int:
        """Number of followers."""
        return len(self._followers)

    @property
    def mode(self) -> str:
        """Fan-out mode: ``"thread"`` or ``"process"``."""
        return self._mode

    def sync(self) -> None:
        """Block until every follower has applied every shipped frame.

        Raises :class:`~repro.exceptions.CacheError` if any follower failed
        to apply a frame (the failure is remembered, not swallowed).
        """
        for follower in self._followers:
            follower.sync()

    def lookup(self, query: Graph) -> FrozenSet[int]:
        """Serve one read-only query from the next replica (round-robin).

        The reader lock guards only the cursor and is released before the
        follower runs, so concurrent lookups proceed on distinct replicas.
        """
        with self._reader_lock:  # repro: lock[replication.reader]
            index = self._cursor % len(self._followers)
            self._cursor += 1
        return self._followers[index].lookup(query)

    def replica_digests(
        self, replicated_only: bool = False
    ) -> List[List[Dict[str, Any]]]:
        """Every follower's per-shard state digest (call :meth:`sync` first)."""
        return [
            follower.state_digest(replicated_only=replicated_only)
            for follower in self._followers
        ]

    def primary_digest(
        self, replicated_only: bool = False
    ) -> List[Dict[str, Any]]:
        """The primary's per-shard state digest."""
        return cache_state_digest(
            self._primary, replicated_only=replicated_only
        )

    def replication_statistics(self) -> List[Dict[str, Any]]:
        """Per-replica lag metrics: rounds behind, bytes shipped, apply time."""
        with self._state_lock:  # repro: lock[replication.state]
            shipped = self._rounds_shipped
            shipped_bytes = self._bytes_shipped
        collected = []
        for follower in self._followers:
            stats = follower.statistics()
            collected.append(
                {
                    "replica": follower.name,
                    "mode": self._mode,
                    "rounds_shipped": shipped,
                    "rounds_applied": stats["rounds_applied"],
                    "rounds_behind": max(
                        0, shipped - stats["rounds_applied"]
                    ),
                    "bytes_shipped": shipped_bytes,
                    "bytes_applied": stats["bytes_applied"],
                    "apply_time_s": stats["apply_time_s"],
                }
            )
        return collected

    def close(self) -> None:
        """Detach from the journals and stop every follower."""
        if self._closed:
            return
        self._closed = True
        for journal, callback in self._subscriptions:
            journal.unsubscribe(callback)
        self._subscriptions = []
        for follower in self._followers:
            follower.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
