"""Persistence of GraphCache state across sessions.

The paper's Cache Manager loads its stores from disk on startup and writes
them back on shutdown (§6.1) so that a long-running analytics deployment does
not start from a cold cache after a restart.  This module provides the same
capability for :class:`~repro.core.cache.GraphCache` and
:class:`~repro.core.sharding.ShardedGraphCache`: the cached queries, their
answer sets, their statistics, the in-flight window and the configuration are
written to a single JSON snapshot; loading the snapshot restores a warm cache
in front of the same (re-built) Method M.

Snapshot format v4 (this module writes v4 and reads v1–v4):

* one **sub-snapshot per shard** — a plain cache is a one-shard snapshot —
  each carrying its cached entries (+ per-query statistics), its current
  window entries (+ statistics), its serial counter, its **maintenance
  state** and (new in v4) its **journal round watermark** — the highest
  :class:`~repro.core.policies.journal.PlanJournal` round already folded
  into the snapshot, which is what :func:`recover_cache` replays past;
* ``next_serial`` is the shard's actual serial counter, *not* its
  ``queries_processed`` count (v1 derived one from the other, which drifts
  as soon as window queries hold serials — the v1 migration compensates by
  taking the max with the highest persisted serial);
* the window **is** persisted (v1 dropped it): restoring mid-window replays
  exactly, instead of silently losing up to ``window_size - 1`` admissions;
* the ``maintenance`` record (new in v3) carries the admission controller's
  full state — calibration scores, windows observed, fixed threshold, and
  the adaptive controller's hill-climb history — so a cache saved
  *mid-calibration* resumes exactly where it stopped (v2 silently dropped
  that state and recalibrated from scratch).  The replacement policy's
  incremental utility heap is **not** serialized: its contents are derived
  from the per-entry statistics the snapshot already carries, so the
  restore path rebuilds it instead of trusting a second copy that could
  drift.

Restores go through the public :meth:`GraphCache.restore` API — persistence
never reaches into private stores — so the entries land in whatever storage
backend the configuration selects (in-memory or SQLite) and GCindex is
rebuilt through the same code path the engine's delta apply uses.

Snapshots are published atomically (tempfile + ``os.replace``), so a crash
mid-save leaves the previous checkpoint intact — the invariant that makes
``checkpoint + journal replay`` (:func:`recover_cache`) a safe recovery
story: the journal is append-only with a torn-tail-tolerant decoder, and the
checkpoint is either the old complete one or the new complete one.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..exceptions import CacheError
from ..methods.base import Method
from .cache import GraphCache
from .config import GraphCacheConfig
from .policies import PlanJournal
from .sharding import ShardedGraphCache
from .statistics import CachedQueryStats
from .stores import CacheEntryCodec, WindowEntryCodec

__all__ = ["save_cache", "load_cache", "recover_cache"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 4


def _shard_payload(shard: GraphCache) -> Dict[str, Any]:
    """Sub-snapshot of one (shard) cache: entries, window, stats, serial,
    maintenance state.

    Built from :meth:`GraphCache.snapshot_state`, which reads everything
    under the shard's GC lock — snapshotting a cache that is concurrently
    serving queries can never observe a half-finished maintenance round.
    """
    entries, stats, window_entries, next_serial, maintenance = (
        shard.snapshot_state()
    )
    stats_by_serial = {snapshot.serial: snapshot for snapshot in stats}

    def with_stats(record: Dict[str, Any]) -> Dict[str, Any]:
        record["statistics"] = asdict(stats_by_serial[record["serial"]])
        return record

    return {
        "next_serial": next_serial,
        "entries": [with_stats(CacheEntryCodec.encode(e)) for e in entries],
        "window": [with_stats(WindowEntryCodec.encode(e)) for e in window_entries],
        "maintenance": maintenance,
        # The journal round watermark: every round <= this is folded into
        # the entries/stats above (snapshot_state drains pending rounds
        # first, so the journal cannot be mid-round here).  recover_cache
        # replays strictly past it.
        "journal_round": shard.plan_journal.last_round,
    }


def save_cache(
    cache: Union[GraphCache, ShardedGraphCache], path: PathLike
) -> None:
    """Write a warm-cache snapshot of ``cache`` to ``path`` (JSON, format v4).

    The snapshot is published atomically: the payload is written to a
    tempfile in the target directory, fsync'd, and moved over ``path`` with
    ``os.replace`` — a crash mid-save leaves the previous checkpoint (if
    any) intact, never a torn file.
    """
    shards = cache.shards if isinstance(cache, ShardedGraphCache) else (cache,)
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(cache.config),
        "shard_count": len(shards),
        "dataset_name": cache.method.dataset.name,
        "dataset_size": len(cache.method.dataset),
        "shards": [_shard_payload(shard) for shard in shards],
    }
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise


def _migrate_v1(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Lift a v1 snapshot (flat, single cache, no window) into the v3 shape.

    v1 stored ``queries_processed`` as ``next_serial``; that undercounts once
    window queries hold serials, so the restore takes the max with the
    highest entry serial (the same guard v1's loader applied).  v1 carried
    no maintenance state, so — like v2 — admission calibration restarts cold.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "config": payload["config"],
        "shard_count": 1,
        "dataset_name": payload.get("dataset_name"),
        "dataset_size": payload["dataset_size"],
        "shards": [
            {
                "next_serial": int(payload.get("next_serial", 0)),
                "entries": payload["entries"],
                "window": [],
            }
        ],
    }


def _restore_shard(shard: GraphCache, payload: Dict[str, Any]) -> None:
    """Feed one sub-snapshot through the public ``restore`` API.

    ``maintenance`` is absent in v1/v2 sub-snapshots; ``restore`` treats
    ``None`` as "restart admission calibration cold", which is exactly the
    (buggy-but-only-available) pre-v3 behaviour those snapshots captured.
    """
    entries = [CacheEntryCodec.decode(record) for record in payload["entries"]]
    window_entries = [
        WindowEntryCodec.decode(record) for record in payload.get("window", ())
    ]
    stats = [
        CachedQueryStats(**record["statistics"])
        for record in list(payload["entries"]) + list(payload.get("window", ()))
        if "statistics" in record
    ]
    shard.restore(
        entries,
        stats=stats,
        next_serial=int(payload.get("next_serial", 0)),
        window_entries=window_entries,
        maintenance=payload.get("maintenance"),
    )


def load_cache(
    path: PathLike, method: Method
) -> Union[GraphCache, ShardedGraphCache]:
    """Restore a warm cache over ``method`` from a snapshot (v1 through v4).

    v3 snapshots load silently — they only lack the journal round
    watermark, which plain loads never read (:func:`recover_cache` is the
    API that needs it and rejects pre-v4 snapshots explicitly).

    Returns a plain :class:`GraphCache` for single-shard snapshots and a
    :class:`ShardedGraphCache` for multi-shard ones.  The snapshot must have
    been taken against a dataset of the same size (answer sets are stored as
    graph ids); a mismatch raises :class:`CacheError` rather than silently
    returning wrong answers.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version not in (1, 2, 3, _FORMAT_VERSION):
        raise CacheError(f"unsupported cache snapshot version {version!r}")
    if version in (1, 2):
        # Pre-v3 snapshots carry no maintenance record: the admission
        # controller's calibration scores and the adaptive controller's
        # hill-climb state cannot be restored.  Say so once, explicitly —
        # the silent cold reset used to masquerade as a full restore.
        warnings.warn(
            f"cache snapshot {Path(path)} uses format v{version}: admission "
            "calibration and adaptive hill-climb state are not persisted in "
            "this format and restart cold (re-save with save_cache to "
            "upgrade to v3)",
            UserWarning,
            stacklevel=2,
        )
    if version == 1:
        payload = _migrate_v1(payload)
    # v2 is the v3 shape minus the per-shard maintenance record; the shard
    # restore treats the missing record as cold admission state.
    if payload["dataset_size"] != len(method.dataset):
        raise CacheError(
            f"snapshot was taken against a dataset of {payload['dataset_size']} graphs, "
            f"but the supplied method serves {len(method.dataset)} graphs"
        )

    config = GraphCacheConfig(**payload["config"])
    shard_payloads = payload["shards"]
    if payload["shard_count"] != len(shard_payloads):
        raise CacheError(
            f"snapshot declares {payload['shard_count']} shards but carries "
            f"{len(shard_payloads)} sub-snapshots"
        )

    if payload["shard_count"] > 1:
        if config.shards != payload["shard_count"]:
            raise CacheError(
                f"snapshot of {payload['shard_count']} shards does not match "
                f"config.shards={config.shards}"
            )
        sharded = ShardedGraphCache(method, config)
        for shard, shard_payload in zip(sharded.shards, shard_payloads, strict=True):
            _restore_shard(shard, shard_payload)
        return sharded

    cache = GraphCache(method, config)
    _restore_shard(cache, shard_payloads[0])
    return cache


def recover_cache(
    path: PathLike,
    method: Method,
    journal: Optional[PathLike] = None,
) -> Union[GraphCache, ShardedGraphCache]:
    """Load a v4 checkpoint and replay journal rounds past its watermark.

    The crash-recovery entry point: ``path`` is the last published
    checkpoint and ``journal`` the (possibly crash-torn) plan journal the
    writer was appending to.  Every journal frame with a round number
    strictly greater than the checkpoint's per-shard ``journal_round``
    watermark is replayed through :meth:`GraphCache.replay_plan` — the
    same delta machinery replicas use — reproducing the uninterrupted
    run's state byte-for-byte (entries, statistics, serial counter) up to
    the last fully journaled round.  A torn final line (the append the
    crash interrupted) is tolerated and ignored.

    ``journal=None`` replays from each shard's configured
    ``journal_path``; an explicit path is used directly (for sharded
    snapshots it is treated as the base path and per-shard files are
    derived from it, exactly as ``config.journal_path`` is).  A missing
    journal file simply means there is nothing past the checkpoint.

    A snapshot taken mid-window persists the hit events already absorbed
    since the last round (the engine's pending-hit buffer); the first
    replayed frame contains those events as its prefix, so recovery skips
    exactly that many and never double-counts a hit.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise CacheError(
            f"recovery needs a v{_FORMAT_VERSION} snapshot carrying journal "
            f"round watermarks; {Path(path)} is v{version!r} — load it with "
            f"load_cache and re-save to upgrade"
        )
    # Imported here: replication builds on cache/sharding like this module
    # does, and the frame codec is the single place journal records are
    # decoded for replay.
    from .replication import ReplicationFrame

    cache = load_cache(path, method)
    shards = cache.shards if isinstance(cache, ShardedGraphCache) else (cache,)
    for index, (shard, sub) in enumerate(
        zip(shards, payload["shards"], strict=True)
    ):
        watermark = int(sub.get("journal_round", 0))
        if journal is not None:
            journal_path = (
                Path(ShardedGraphCache._shard_path(str(journal), index))
                if len(shards) > 1
                else Path(journal)
            )
        else:
            journal_path = (
                None
                if shard.config.journal_path is None
                else Path(shard.config.journal_path)
            )
        if journal_path is None or not journal_path.exists():
            continue
        records = PlanJournal.read_records(journal_path, since_round=watermark + 1)
        # Hits absorbed between the watermark round and the snapshot are
        # already in the restored statistics; they are the prefix of the
        # first replayed frame.
        skip_hits = len(shard.maintenance_engine.take_pending_hits())
        for record in records:
            frame = ReplicationFrame.from_record(record)
            hits = frame.hits[skip_hits:] if skip_hits else frame.hits
            skip_hits = 0
            shard.replay_plan(
                frame.plan,
                frame.entries,
                hits=hits,
                frame_bytes=frame.size_bytes,
            )
    return cache
