"""Persistence of GraphCache state across sessions.

The paper's Cache Manager loads its stores from disk on startup and writes
them back on shutdown (§6.1) so that a long-running analytics deployment does
not start from a cold cache after a restart.  This module provides the same
capability for :class:`~repro.core.cache.GraphCache`: the cached queries,
their answer sets, their statistics and the configuration are written to a
single JSON snapshot; loading the snapshot restores a warm cache in front of
the same (re-built) Method M.

Only the *cache* contents are persisted — the current window is transient by
design (its queries have not been admitted yet), and GCindex is rebuilt from
the cached query graphs on load, exactly as the Window Manager rebuilds it
after every update round.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from ..exceptions import CacheError
from ..graphs.io import graph_from_text, graph_to_text
from ..methods.base import Method
from .cache import GraphCache
from .config import GraphCacheConfig
from .statistics import CachedQueryStats

__all__ = ["save_cache", "load_cache"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_cache(cache: GraphCache, path: PathLike) -> None:
    """Write a warm-cache snapshot of ``cache`` to ``path`` (JSON)."""
    entries = []
    for serial in cache.cached_serials:
        entry = cache.cached_entry(serial)
        stats = cache.statistics_manager.snapshot(serial)
        entries.append(
            {
                "serial": serial,
                "query": graph_to_text(entry.query),
                "answers": sorted(entry.answer_ids),
                "statistics": asdict(stats),
            }
        )
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(cache.config),
        "next_serial": cache.runtime_statistics.queries_processed,
        "dataset_name": cache.method.dataset.name,
        "dataset_size": len(cache.method.dataset),
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_cache(path: PathLike, method: Method) -> GraphCache:
    """Restore a warm :class:`GraphCache` over ``method`` from a snapshot.

    The snapshot must have been taken against a dataset of the same size
    (answer sets are stored as graph ids); a mismatch raises
    :class:`CacheError` rather than silently returning wrong answers.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format_version") != _FORMAT_VERSION:
        raise CacheError(f"unsupported cache snapshot version {payload.get('format_version')!r}")
    if payload["dataset_size"] != len(method.dataset):
        raise CacheError(
            f"snapshot was taken against a dataset of {payload['dataset_size']} graphs, "
            f"but the supplied method serves {len(method.dataset)} graphs"
        )

    config = GraphCacheConfig(**payload["config"])
    cache = GraphCache(method, config)

    # Restore cached entries directly into the stores, then rebuild the index
    # once — the same code path the Window Manager uses after a normal round.
    from .stores import CacheEntry  # local import to avoid a cycle at module load

    entries = []
    max_serial = 0
    for record in payload["entries"]:
        serial = int(record["serial"])
        max_serial = max(max_serial, serial)
        entries.append(
            CacheEntry(
                serial=serial,
                query=graph_from_text(record["query"]),
                answer_ids=frozenset(int(x) for x in record["answers"]),
            )
        )
        # register_query() persists every statistics column, including the
        # hit counters and contribution totals carried in the snapshot.
        cache.statistics_manager.register_query(CachedQueryStats(**record["statistics"]))

    cache._cache_store.replace_contents(entries)
    cache._index.rebuild((entry.serial, entry.query) for entry in entries)
    cache._serial = max(int(payload.get("next_serial", 0)), max_serial)
    return cache
