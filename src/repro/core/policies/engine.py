"""MaintenanceEngine: the unified, incremental cache-maintenance subsystem.

The paper's §6 maintenance machinery — the Window, admission control (§6.2)
and the replacement policies (§6.3) — used to run as stop-the-world work:
every window fill re-scored the whole cache, rewrote the whole cache store
and rebuilt the whole GCindex.  The engine replaces that with a clean
**decide/apply split** over **deltas**:

* :meth:`decide` consumes the drained window and emits a pure, serializable
  :class:`~repro.core.policies.plan.MaintenancePlan` (admitted / rejected /
  evicted serials plus the policy rationale) without touching any state
  beyond the admission controller's own calibration;
* :meth:`apply` executes a plan as row-level deltas: the cache store's
  backend deletes/inserts exactly the evicted/admitted rows
  (:meth:`~repro.core.stores.CacheStore.apply_delta`), the GCindex is
  updated through its existing ``add``/``remove`` instead of a rebuild, and
  the incremental utility heap mirrors the same delta — O(window) work per
  round, independent of the cache size.

Victim selection runs on the :class:`~repro.core.policies.heap.UtilityHeap`
(incrementally maintained by the per-hit :meth:`on_hit` hook); the seed's
full-snapshot re-scoring survives as :meth:`oracle_victims`, the reference
oracle the benchmarks pin the heap against.  Setting ``cross_check=True``
makes every round run both paths and record any divergence — the maintenance
benchmark's correctness harness.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..statistics import CachedQueryStats, StatisticsManager
from ..stores import CacheEntry, CacheStore, WindowEntry
from .adaptive import AdaptiveAdmissionController
from .admission import AdmissionController
from .heap import UtilityHeap
from .plan import MaintenancePlan
from .registry import admission_from_record
from .replacement import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only (query_index pulls the ftv
    # package, which must not be imported before repro.methods; see the
    # ftv/methods import cycle note in repro.methods.registry)
    from ..query_index import QueryGraphIndex

__all__ = ["MaintenanceEngine"]


class MaintenanceEngine:
    """Decide/apply maintenance over one cache's stores, index and statistics.

    Parameters
    ----------
    cache_store, statistics, index:
        The shared state the apply step mutates (the decide step only reads
        it).
    policy:
        The replacement policy; scored incrementally through the utility
        heap, with the full-snapshot oracle kept for cross-checking.
    admission:
        The admission controller (disabled by default).
    cross_check:
        When ``True``, every eviction decision also runs the full-rescore
        oracle and divergences are appended to :attr:`oracle_mismatches`
        (used by the maintenance benchmark; off in production — it
        reintroduces the O(cache) scan the engine exists to avoid).
    """

    def __init__(
        self,
        cache_store: CacheStore,
        statistics: StatisticsManager,
        index: "QueryGraphIndex",
        policy: ReplacementPolicy,
        admission: Optional[AdmissionController] = None,
        cross_check: bool = False,
    ) -> None:
        self._cache_store = cache_store
        self._statistics = statistics
        self._index = index
        self._policy = policy
        self._admission = admission or AdmissionController(enabled=False)
        self._heap = UtilityHeap(policy)
        # Estimated sub-iso cost alleviated by cache hits since the last
        # maintenance round — the live feedback signal for the adaptive
        # admission controller's hill climb (persisted in the state record
        # so a mid-window snapshot does not lose the partial window).
        self._window_cost_saving = 0.0
        # Hit events observed since the last round, in order.  Each round
        # drains this buffer into its journal frame, so a replica (or crash
        # recovery) can replay the exact statistics/heap evolution.
        # Persisted in the state record: a mid-window snapshot's pending
        # hits are exactly the prefix of the next frame already absorbed.
        self._hit_events: List[Tuple[int, int, float, float, bool]] = []
        self.cross_check = cross_check
        #: ``(current_serial, heap_victims, oracle_victims)`` triples for
        #: every cross-checked round that diverged (empty = proven identical).
        self.oracle_mismatches: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []
        #: Test hook: when set, :meth:`apply` invokes it with the plan while
        #: the round's GCindex batch is still *unpublished* — a "held apply".
        #: The concurrency tests park the background worker here to prove
        #: that lookups served meanwhile read the previous index snapshot.
        self.apply_hold_hook: Optional[Callable[[MaintenancePlan], None]] = None

    # ------------------------------------------------------------------ #
    @property
    def cache_store(self) -> CacheStore:
        """The cache store this engine maintains (exposed for the scheduler)."""
        return self._cache_store

    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy in use."""
        return self._policy

    @property
    def admission(self) -> AdmissionController:
        """The admission controller in use."""
        return self._admission

    @property
    def heap(self) -> UtilityHeap:
        """The incremental utility heap (exposed for inspection and tests)."""
        return self._heap

    # ------------------------------------------------------------------ #
    # Decide: window -> pure plan.
    # ------------------------------------------------------------------ #
    def decide(
        self, window_entries: Sequence[WindowEntry], current_serial: int
    ) -> MaintenancePlan:
        """Produce the maintenance plan for one drained window.

        Pure with respect to cache state: only the admission controller's
        calibration advances (it observes the window, as in the paper).
        Rejection is computed per *serial* — a set membership test, not the
        seed's O(window²) identity-by-equality scan — so a serial is
        rejected iff no entry carrying it was admitted.
        """
        self._admission.observe_window(window_entries)
        admitted = self._admission.filter_admitted(window_entries)
        if len(admitted) > self._cache_store.capacity:
            # Windows larger than the cache itself: only the most recent
            # admitted queries can possibly fit.
            admitted = admitted[-self._cache_store.capacity:]
        admitted_serials = {entry.serial for entry in admitted}
        rejected = tuple(
            entry.serial
            for entry in window_entries
            if entry.serial not in admitted_serials
        )

        free_slots = self._cache_store.free_slots()
        evict_count = max(0, len(admitted) - free_slots)
        selection = self._heap.select_victims(evict_count, current_serial)
        if self.cross_check and evict_count > 0:
            oracle = tuple(self.oracle_victims(evict_count, current_serial))
            if oracle != selection.victims:
                self.oracle_mismatches.append(
                    (current_serial, selection.victims, oracle)
                )

        return MaintenancePlan(
            current_serial=current_serial,
            window_serials=tuple(entry.serial for entry in window_entries),
            admitted_serials=tuple(entry.serial for entry in admitted),
            rejected_serials=rejected,
            evicted_serials=selection.victims,
            policy=selection.policy,
            policy_delegate=selection.delegate,
            admission_threshold=self._admission.threshold,
            victim_utilities=selection.victim_utilities,
        )

    def oracle_victims(self, evict_count: int, current_serial: int) -> List[int]:
        """Reference oracle: full-snapshot re-scoring, as the seed did it.

        O(cache) statistics-store reads plus a full sort — kept only to
        verify the incremental heap, never on the production path.
        """
        snapshots = self._statistics.snapshots(self._cache_store.serials())
        return self._policy.select_victims(snapshots, evict_count, current_serial)

    # ------------------------------------------------------------------ #
    # Apply: plan -> row-level deltas.
    # ------------------------------------------------------------------ #
    def apply(
        self,
        plan: MaintenancePlan,
        window_entries: Sequence[WindowEntry],
        lock: Optional[threading.RLock] = None,
    ) -> Tuple[int, int]:
        """Execute a plan against the stores, the index and the heap.

        Returns ``(index_ops, backend_row_ops)`` — the mutation counts this
        apply performed, measured from the index/backend op counters; both
        are bounded by the window size, never the cache size.

        The apply is phased so a background scheduler can run it while
        queries are being served:

        1. the **store delta** executes atomically under the store's own
           lock (readers see pre- or post-delta, never a torn mix);
        2. the **GCindex delta** runs as one
           :meth:`~repro.core.query_index.QueryGraphIndex.batch` — lookups
           keep reading the previously published snapshot and never block;
        3. the **heap/statistics delta** runs under ``lock`` (the cache's
           GC lock) because the commit path mutates the same structures on
           every hit — this is the only section that can briefly hold up a
           committing query.  ``None`` skips the locking (single-threaded
           callers, or a barrier scheduler whose submitter already holds
           the GC lock while it waits).
        """
        by_serial = {entry.serial: entry for entry in window_entries}
        additions = [
            CacheEntry(
                serial=serial,
                query=by_serial[serial].query,
                answer_ids=by_serial[serial].answer_ids,
            )
            for serial in plan.admitted_serials
        ]

        index_before = self._index.op_counts.incremental_ops
        rows_before = self._cache_store.backend.op_counts.row_ops

        self._cache_store.apply_delta(additions, plan.evicted_serials)
        with self._index.batch():
            for serial in plan.evicted_serials:
                self._index.remove(serial)
            for entry in additions:
                self._index.add(entry.serial, entry.query)
            if self.apply_hold_hook is not None:
                self.apply_hold_hook(plan)
        with lock if lock is not None else nullcontext():  # repro: lock[gc]
            for serial in plan.evicted_serials:
                self._heap.remove(serial)
                self._statistics.forget_query(serial)
            for entry in additions:
                # Seed the heap from the statistics store (registered when
                # the query joined the window), so both views start identical.
                self._heap.add(self._statistics.snapshot(entry.serial))
            for serial in plan.rejected_serials:
                self._statistics.forget_query(serial)

        return (
            self._index.op_counts.incremental_ops - index_before,
            self._cache_store.backend.op_counts.row_ops - rows_before,
        )

    def run(
        self,
        window_entries: Sequence[WindowEntry],
        current_serial: int,
        lock: Optional[threading.RLock] = None,
    ) -> Tuple[MaintenancePlan, int, int, Tuple[Tuple[int, int, float, float, bool], ...]]:
        """Decide and apply one round; returns the plan, the apply ops and
        the hit events the round consumed.

        An adaptive admission controller also receives the window's average
        per-query estimated cost saving (accumulated by :meth:`on_hit`) as
        its hill-climb feedback, so ``admission_kind="adaptive"`` tunes its
        threshold live instead of waiting for an external monitoring loop.
        ``lock`` is threaded through to :meth:`apply` (and guards the
        adaptive feedback, which reads the hit-accumulated saving).

        The returned hit events are the buffered :meth:`on_hit` calls since
        the previous round — the scheduler journals them with the plan so
        the round is a complete replayable frame.
        """
        with lock if lock is not None else nullcontext():  # repro: lock[gc]
            hit_events, self._hit_events = self._hit_events, []
        plan = self.decide(window_entries, current_serial)
        index_ops, backend_row_ops = self.apply(plan, window_entries, lock=lock)
        with lock if lock is not None else nullcontext():  # repro: lock[gc]
            if (
                isinstance(self._admission, AdaptiveAdmissionController)
                and window_entries
            ):
                self._admission.record_window_saving(
                    self._window_cost_saving / len(window_entries)
                )
            self._window_cost_saving = 0.0
        return plan, index_ops, backend_row_ops, tuple(hit_events)

    # ------------------------------------------------------------------ #
    # Replay: journaled frame -> same deltas, no re-deciding.
    # ------------------------------------------------------------------ #
    def replay(
        self,
        plan: MaintenancePlan,
        admitted_entries: Sequence[WindowEntry],
        hits: Sequence[Tuple[int, int, float, float, bool]] = (),
        lock: Optional[threading.RLock] = None,
    ) -> Tuple[int, int]:
        """Apply one journaled frame exactly as the primary applied it.

        This is the **sanctioned delta path** for replicas and crash
        recovery (analyzer rule REPRO008): the frame's hit events are
        applied to the statistics store and the utility heap in their
        original order, the admitted entries are registered with the same
        statistics rows :class:`~repro.core.policies.window.WindowManager`
        created on the primary, and the plan then goes through the ordinary
        :meth:`apply` delta machinery.  Nothing is re-decided, and the
        admission controller's calibration is untouched (it resumes from
        the snapshot's persisted state).

        The frame's hits can only reference serials that were cached before
        the round (window entries are never in the GCindex), so replay
        order — hits, then registrations, then apply — reproduces the
        primary's interleaved order byte-for-byte at the round boundary.
        """
        with lock if lock is not None else nullcontext():  # repro: lock[gc]
            for serial, benefiting, cs_reduction, cost_reduction, special in hits:
                self._statistics.record_hit(
                    serial=serial,
                    benefiting_serial=benefiting,
                    cs_reduction=cs_reduction,
                    cost_reduction=cost_reduction,
                    special=special,
                )
                self._heap.record_hit(
                    serial=serial,
                    benefiting_serial=benefiting,
                    cs_reduction=cs_reduction,
                    cost_reduction=cost_reduction,
                    special=special,
                )
            for entry in admitted_entries:
                self._statistics.register_query(
                    CachedQueryStats(
                        serial=entry.serial,
                        order=entry.query.order,
                        size=entry.query.size,
                        distinct_labels=len(entry.query.distinct_labels()),
                        filter_time_s=entry.filter_time_s,
                        verify_time_s=entry.verify_time_s,
                    )
                )
        ops = self.apply(plan, admitted_entries, lock=lock)
        with lock if lock is not None else nullcontext():  # repro: lock[gc]
            # Mirror run(): the primary reset its window saving when this
            # round executed, so a replayed boundary matches it exactly.
            self._window_cost_saving = 0.0
        return ops

    def take_pending_hits(self) -> List[Tuple[int, int, float, float, bool]]:
        """Drain the pending hit buffer (recovery consumes it once).

        A snapshot taken mid-window persists the hits already absorbed
        since the last round; the first replayed frame contains those same
        events as its prefix, so recovery skips exactly this many.
        """
        pending, self._hit_events = self._hit_events, []
        return pending

    # ------------------------------------------------------------------ #
    # Statistics-monitor hook (the per-hit incremental update).
    # ------------------------------------------------------------------ #
    def on_hit(
        self,
        serial: int,
        benefiting_serial: int,
        cs_reduction: float,
        cost_reduction: float,
        special: bool = False,
    ) -> None:
        """Record a cache hit in the statistics store *and* the utility heap."""
        self._statistics.record_hit(
            serial=serial,
            benefiting_serial=benefiting_serial,
            cs_reduction=cs_reduction,
            cost_reduction=cost_reduction,
            special=special,
        )
        self._heap.record_hit(
            serial=serial,
            benefiting_serial=benefiting_serial,
            cs_reduction=cs_reduction,
            cost_reduction=cost_reduction,
            special=special,
        )
        self._window_cost_saving += cost_reduction
        self._hit_events.append(
            (serial, benefiting_serial, cs_reduction, cost_reduction, special)
        )

    def rebuild_scores(self) -> None:
        """Re-seed the utility heap from the statistics store.

        Used after a restore/warm start, when the cached entries (and their
        statistics) were installed wholesale rather than through deltas.
        """
        self._heap.rebuild(
            self._statistics.snapshot(serial)
            for serial in self._cache_store.serials()
        )

    # ------------------------------------------------------------------ #
    # Persistable state (snapshot format v3).
    # ------------------------------------------------------------------ #
    def state_record(self) -> Dict[str, Any]:
        """JSON-compatible record of the engine's own state.

        The utility heap is *not* serialized: its contents are derived from
        the per-entry statistics the snapshot already carries, so the
        restore path rebuilds it (:meth:`rebuild_scores`) instead of
        trusting a second copy that could drift.
        """
        return {
            "admission": self._admission.state_record(),
            "policy": {"name": self._policy.name},
            "window_cost_saving": self._window_cost_saving,
            "pending_hits": [list(event) for event in self._hit_events],
        }

    def restore_state(self, record: Optional[Dict[str, Any]]) -> None:
        """Adopt a persisted engine state (``None``/empty = keep defaults)."""
        if not record:
            return
        admission_record = record.get("admission")
        if admission_record:
            self._admission = admission_from_record(admission_record)
        self._window_cost_saving = float(record.get("window_cost_saving", 0.0))
        self._hit_events = [
            (int(s), int(b), float(cs), float(cost), bool(special))
            for s, b, cs, cost, special in record.get("pending_hits", [])
        ]
