"""Window Manager: batched cache updates with admission control (§6.2).

New queries are not inserted into the cache one by one.  They accumulate in
the Window; when the Window is full, the Window Manager drains it and hands
it to the :class:`~repro.core.policies.engine.MaintenanceEngine`, which

1. runs the admission controller over the window queries (cache pollution
   avoidance),
2. asks the replacement policy — via the incremental utility heap — for the
   victims needed to make room,
3. applies the resulting :class:`~repro.core.policies.plan.MaintenancePlan`
   as row-level deltas to the cache store, the GCindex and the heap,
4. removes the statistics of evicted and rejected queries.

In the paper this happens on a separate thread while queries keep being
served by the old index; in this reproduction the maintenance work is
executed synchronously but its wall-clock cost is accounted separately (it
is the "overhead" series of Figure 10) and not charged to query response
time.  Since the engine refactor each round performs O(window) index and
backend mutations — the per-round op counters on the report prove it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional

from ..statistics import CachedQueryStats, StatisticsManager
from ..stores import CacheStore, WindowEntry, WindowStore
from .admission import AdmissionController
from .engine import MaintenanceEngine
from .plan import MaintenanceReport
from .replacement import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only (see the ftv/methods
    # import-cycle note in repro.core.policies.engine)
    from ..query_index import QueryGraphIndex

__all__ = ["WindowManager"]


class WindowManager:
    """Feeds the Window and triggers the maintenance engine when it fills.

    Either pass a ready-made ``engine`` or the parts to build one from
    (``index``, ``policy`` and optionally ``admission``) — the seed's
    constructor signature, kept so existing callers and tests work
    unchanged.
    """

    def __init__(
        self,
        cache_store: CacheStore,
        window_store: WindowStore,
        statistics: StatisticsManager,
        index: Optional["QueryGraphIndex"] = None,
        policy: Optional[ReplacementPolicy] = None,
        admission: Optional[AdmissionController] = None,
        engine: Optional[MaintenanceEngine] = None,
    ) -> None:
        if engine is None:
            if index is None or policy is None:
                raise ValueError(
                    "WindowManager needs either an engine or index + policy"
                )
            engine = MaintenanceEngine(
                cache_store=cache_store,
                statistics=statistics,
                index=index,
                policy=policy,
                admission=admission,
            )
        self._engine = engine
        self._cache_store = cache_store
        self._window_store = window_store
        self._statistics = statistics
        self._reports: List[MaintenanceReport] = []
        self._total_maintenance_s = 0.0

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> MaintenanceEngine:
        """The maintenance engine running the decide/apply rounds."""
        return self._engine

    @property
    def reports(self) -> List[MaintenanceReport]:
        """Reports of every cache-update round so far."""
        return list(self._reports)

    @property
    def total_maintenance_s(self) -> float:
        """Cumulative wall-clock time spent on cache maintenance."""
        return self._total_maintenance_s

    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy in use."""
        return self._engine.policy

    @property
    def admission(self) -> AdmissionController:
        """The admission controller in use."""
        return self._engine.admission

    def window_entries(self) -> List[WindowEntry]:
        """Current window contents (ordered by serial), without draining."""
        return self._window_store.entries()

    # ------------------------------------------------------------------ #
    def add_query(self, entry: WindowEntry) -> Optional[MaintenanceReport]:
        """Add a processed query to the Window; run maintenance if it filled up."""
        self._window_store.add(entry)
        # Window queries get their static statistics recorded immediately so
        # that, if admitted, their history starts at first execution.
        self._statistics.register_query(
            CachedQueryStats(
                serial=entry.serial,
                order=entry.query.order,
                size=entry.query.size,
                distinct_labels=len(entry.query.distinct_labels()),
                filter_time_s=entry.filter_time_s,
                verify_time_s=entry.verify_time_s,
            )
        )
        if self._window_store.is_full:
            return self.run_maintenance(current_serial=entry.serial)
        return None

    # ------------------------------------------------------------------ #
    def run_maintenance(self, current_serial: int) -> MaintenanceReport:
        """Drain the window and run one decide/apply round through the engine."""
        started = time.perf_counter()
        window_entries = self._window_store.drain()
        plan, index_ops, backend_row_ops = self._engine.run(
            window_entries, current_serial
        )
        elapsed = time.perf_counter() - started
        self._total_maintenance_s += elapsed
        report = MaintenanceReport(
            window_queries=len(window_entries),
            admitted_serials=plan.admitted_serials,
            rejected_serials=plan.rejected_serials,
            evicted_serials=plan.evicted_serials,
            cache_size_after=len(self._cache_store),
            elapsed_s=elapsed,
            index_ops=index_ops,
            backend_row_ops=backend_row_ops,
            plan=plan,
        )
        self._reports.append(report)
        return report
