"""Window Manager: batched cache updates with admission control (§6.2).

New queries are not inserted into the cache one by one.  They accumulate in
the Window; when the Window is full, the Window Manager drains it and hands
the batch to a :class:`~repro.core.policies.scheduler.MaintenanceScheduler`,
which decides *where* the round executes:

* ``sync`` — inline on the committing thread (the seed's behaviour);
* ``background`` — on a worker thread, off the query path (the paper's
  separate maintenance thread): decide runs free of the GC lock, apply runs
  phased so lookups keep reading the published GCindex snapshot;
* ``barrier`` — on the worker thread, but the committing query waits: the
  deterministic test mode whose plan stream is byte-identical to ``sync``.

Each round runs the engine's decide/apply split:

1. the admission controller filters the window queries (cache pollution
   avoidance),
2. the replacement policy — via the incremental utility heap — selects the
   victims needed to make room,
3. the resulting :class:`~repro.core.policies.plan.MaintenancePlan` is
   applied as row-level deltas to the cache store, the GCindex and the heap,
   and appended to the scheduler's plan journal,
4. the statistics of evicted and rejected queries are removed.

The window *drain* always happens on the commit path (so the window store
can never overflow); only decide/apply move off it.  Maintenance wall-clock
cost is accounted separately (the "overhead" series of Figure 10) and not
charged to query response time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..statistics import CachedQueryStats, StatisticsManager
from ..stores import CacheStore, WindowEntry, WindowStore
from .admission import AdmissionController
from .engine import MaintenanceEngine
from .plan import MaintenanceReport
from .replacement import ReplacementPolicy
from .scheduler import MaintenanceScheduler, SyncMaintenanceScheduler

if TYPE_CHECKING:  # pragma: no cover - type-only (see the ftv/methods
    # import-cycle note in repro.core.policies.engine)
    from ..query_index import QueryGraphIndex

__all__ = ["WindowManager"]


class WindowManager:
    """Feeds the Window and submits maintenance rounds when it fills.

    Either pass a ready-made ``engine`` or the parts to build one from
    (``index``, ``policy`` and optionally ``admission``) — the seed's
    constructor signature, kept so existing callers and tests work
    unchanged.  ``scheduler`` selects where rounds execute; omitting it
    yields a :class:`~repro.core.policies.scheduler.SyncMaintenanceScheduler`
    over the engine (the seed's inline behaviour).
    """

    def __init__(
        self,
        cache_store: CacheStore,
        window_store: WindowStore,
        statistics: StatisticsManager,
        index: Optional["QueryGraphIndex"] = None,
        policy: Optional[ReplacementPolicy] = None,
        admission: Optional[AdmissionController] = None,
        engine: Optional[MaintenanceEngine] = None,
        scheduler: Optional[MaintenanceScheduler] = None,
    ) -> None:
        if engine is None and scheduler is not None:
            engine = scheduler.engine
        if engine is None:
            if index is None or policy is None:
                raise ValueError(
                    "WindowManager needs either an engine or index + policy"
                )
            engine = MaintenanceEngine(
                cache_store=cache_store,
                statistics=statistics,
                index=index,
                policy=policy,
                admission=admission,
            )
        if scheduler is None:
            scheduler = SyncMaintenanceScheduler(engine)
        self._engine = engine
        self._scheduler = scheduler
        self._cache_store = cache_store
        self._window_store = window_store
        self._statistics = statistics

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> MaintenanceEngine:
        """The maintenance engine running the decide/apply rounds."""
        return self._engine

    @property
    def scheduler(self) -> MaintenanceScheduler:
        """The scheduler deciding where maintenance rounds execute."""
        return self._scheduler

    @property
    def reports(self) -> List[MaintenanceReport]:
        """Reports of every completed cache-update round so far."""
        return self._scheduler.reports

    @property
    def total_maintenance_s(self) -> float:
        """Cumulative wall-clock time spent on cache maintenance."""
        return self._scheduler.total_maintenance_s

    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy in use."""
        return self._engine.policy

    @property
    def admission(self) -> AdmissionController:
        """The admission controller in use."""
        return self._engine.admission

    def window_entries(self) -> List[WindowEntry]:
        """Current window contents (ordered by serial), without draining."""
        return self._window_store.entries()

    # ------------------------------------------------------------------ #
    def add_query(self, entry: WindowEntry) -> Optional[MaintenanceReport]:
        """Add a processed query to the Window; submit maintenance if it filled.

        Returns the round's report when the scheduler completed it before
        returning (``sync``/``barrier``); ``None`` when nothing was due or a
        background round is still in flight.
        """
        self._window_store.add(entry)
        # Window queries get their static statistics recorded immediately so
        # that, if admitted, their history starts at first execution.
        self._statistics.register_query(
            CachedQueryStats(
                serial=entry.serial,
                order=entry.query.order,
                size=entry.query.size,
                distinct_labels=len(entry.query.distinct_labels()),
                filter_time_s=entry.filter_time_s,
                verify_time_s=entry.verify_time_s,
            )
        )
        if self._window_store.is_full:
            return self.run_maintenance(current_serial=entry.serial)
        return None

    # ------------------------------------------------------------------ #
    def run_maintenance(self, current_serial: int) -> Optional[MaintenanceReport]:
        """Drain the window and submit one round to the scheduler.

        The drain itself stays on the calling thread (the window store can
        never overflow while a round is pending); the scheduler decides
        whether decide/apply run inline, behind a barrier, or asynchronously
        (in which case ``None`` is returned and the report appears in
        :attr:`reports` once applied).
        """
        window_entries = self._window_store.drain()
        if not window_entries:
            return None
        return self._scheduler.submit(window_entries, current_serial)
