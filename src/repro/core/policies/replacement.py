"""Cache replacement policies: LRU, POP, PIN, PINC and the hybrid HD (§6.3).

Every policy assigns each cached query a *utility* value from its statistics
snapshot and evicts the entries with the lowest utility.  The GC-exclusive
policies differ in which statistics they consume:

========  =========================  =======================================
Policy    Utility                    Interpretation
========  =========================  =======================================
LRU       last hit serial            classic recency
POP       ``H / A``                  popularity (hits) over age
PIN       ``R / A``                  alleviated sub-iso *tests* over age
PINC      ``C / A``                  alleviated estimated sub-iso *cost* over age
HD        PIN or PINC                picks PIN when the ``R`` values are highly
                                     variable (squared CoV > 1), else PINC
========  =========================  =======================================

where ``A`` is the entry's age (current serial minus the entry's serial),
``H`` its hit count, ``R`` its total candidate-set reduction and ``C`` its
total estimated cost reduction.  The running example of Table 1 in the paper
is reproduced exactly by the unit tests and by ``benchmarks/bench_table1``.

:meth:`ReplacementPolicy.select_victims` over a full snapshot list is the
*reference oracle*; the production eviction path scores incrementally through
:class:`~repro.core.policies.heap.UtilityHeap`, whose victim selection is
pinned to be identical to the oracle's.  The class attribute
``age_normalized`` tells the heap which selection strategy applies: utilities
of age-normalized policies decay as the current serial advances (they must be
re-evaluated at decision time), while recency utilities (LRU) only change on
a hit and support a true lazy heap.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Sequence

from ...exceptions import CacheError
from ..statistics import CachedQueryStats

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "POPPolicy",
    "PINPolicy",
    "PINCPolicy",
    "HybridPolicy",
    "policy_by_name",
    "available_policies",
    "squared_coefficient_of_variation",
]


def _age(stats: CachedQueryStats, current_serial: int) -> float:
    """Age of a cached entry: serial distance to the most recent query (>= 1)."""
    return max(1.0, float(current_serial - stats.serial))


def squared_coefficient_of_variation(values: Sequence[float]) -> float:
    """Squared coefficient of variation ``s² / µ²`` (sample variance).

    Returns 0.0 for fewer than two values or a zero mean; exponential
    distributions have CoV² = 1, heavy-tailed ones exceed 1 (§6.3).
    """
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return variance / (mean * mean)


class ReplacementPolicy(abc.ABC):
    """Base class: score entries, evict the lowest-utility ones."""

    #: Short policy name ("lru", "pop", ...).
    name: str = "abstract"

    #: ``True`` when the utility divides by the entry's age, so every stored
    #: utility decays as the current serial advances.  The incremental heap
    #: re-evaluates such utilities at decision time; recency utilities
    #: (``age_normalized = False``) change only on hits and live in a true
    #: lazy heap.
    age_normalized: bool = True

    @abc.abstractmethod
    def utility(self, stats: CachedQueryStats, current_serial: int) -> float:
        """Utility of one cached entry (higher = more worth keeping)."""

    def utilities(
        self, snapshots: Iterable[CachedQueryStats], current_serial: int
    ) -> Dict[int, float]:
        """Utilities of several entries keyed by serial number."""
        return {
            stats.serial: self.utility(stats, current_serial) for stats in snapshots
        }

    def select_victims(
        self,
        snapshots: Sequence[CachedQueryStats],
        evict_count: int,
        current_serial: int,
    ) -> List[int]:
        """Serial numbers of the ``evict_count`` lowest-utility entries.

        Ties are broken in favour of evicting the *older* entry (smaller
        serial number), which keeps the policies deterministic.  This is the
        full-snapshot *reference oracle*; the maintenance engine's hot path
        selects through the incremental
        :class:`~repro.core.policies.heap.UtilityHeap` instead, with
        identical results by construction (same utility formulas, same
        ``(utility, serial)`` total order).
        """
        if evict_count < 0:
            raise CacheError("evict_count must be non-negative")
        if evict_count == 0:
            return []
        if evict_count > len(snapshots):
            raise CacheError(
                f"cannot evict {evict_count} entries from a cache of {len(snapshots)}"
            )
        ranked = sorted(
            snapshots,
            key=lambda stats: (self.utility(stats, current_serial), stats.serial),
        )
        return [stats.serial for stats in ranked[:evict_count]]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class LRUPolicy(ReplacementPolicy):
    """Least Recently Used: utility is the serial of the last benefited query."""

    name = "lru"
    age_normalized = False

    def utility(self, stats: CachedQueryStats, current_serial: int) -> float:
        if stats.last_hit_serial is None:
            # Entries that never contributed fall back to their own serial
            # (they were "used" when inserted).
            return float(stats.serial)
        return float(stats.last_hit_serial)


class POPPolicy(ReplacementPolicy):
    """Popularity-based ranking: hits per unit of age (``H / A``)."""

    name = "pop"

    def utility(self, stats: CachedQueryStats, current_serial: int) -> float:
        return stats.hits / _age(stats, current_serial)


class PINPolicy(ReplacementPolicy):
    """POP + number of alleviated sub-iso tests (``R / A``), GC-exclusive."""

    name = "pin"

    def utility(self, stats: CachedQueryStats, current_serial: int) -> float:
        return stats.cs_reduction / _age(stats, current_serial)


class PINCPolicy(ReplacementPolicy):
    """PIN + estimated sub-iso test costs (``C / A``), GC-exclusive."""

    name = "pinc"

    def utility(self, stats: CachedQueryStats, current_serial: int) -> float:
        return stats.cost_reduction / _age(stats, current_serial)


class HybridPolicy(ReplacementPolicy):
    """HD: dynamically chooses PIN or PINC based on the variability of ``R``.

    When the squared coefficient of variation of the cached entries' ``R``
    values exceeds 1 the ``R`` component alone is discriminative enough and
    PIN is used; otherwise the estimated cost component is added (PINC).
    """

    name = "hd"

    def __init__(self) -> None:
        self._pin = PINPolicy()
        self._pinc = PINCPolicy()

    def choose(self, snapshots: Sequence[CachedQueryStats]) -> ReplacementPolicy:
        """Return the delegate policy HD would use for this cache state."""
        cov_squared = squared_coefficient_of_variation(
            [stats.cs_reduction for stats in snapshots]
        )
        return self._pin if cov_squared > 1.0 else self._pinc

    def utility(self, stats: CachedQueryStats, current_serial: int) -> float:
        # Utility of a single entry in isolation defaults to PINC's view; the
        # meaningful entry point for HD is select_victims / utilities, where
        # the whole population is visible.
        return self._pinc.utility(stats, current_serial)

    def utilities(
        self, snapshots: Iterable[CachedQueryStats], current_serial: int
    ) -> Dict[int, float]:
        population = list(snapshots)
        delegate = self.choose(population)
        return delegate.utilities(population, current_serial)

    def select_victims(
        self,
        snapshots: Sequence[CachedQueryStats],
        evict_count: int,
        current_serial: int,
    ) -> List[int]:
        delegate = self.choose(snapshots)
        return delegate.select_victims(snapshots, evict_count, current_serial)


_POLICIES = {
    "lru": LRUPolicy,
    "pop": POPPolicy,
    "pin": PINPolicy,
    "pinc": PINCPolicy,
    "hd": HybridPolicy,
}


def policy_by_name(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return _POLICIES[key]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise CacheError(f"unknown replacement policy {name!r}; known: {known}") from None


def available_policies() -> List[str]:
    """Names of all bundled replacement policies."""
    return sorted(_POLICIES)
