"""Registries for the pluggable maintenance components.

The replacement-policy registry lives next to the policies themselves
(:func:`~repro.core.policies.replacement.policy_by_name`); this module adds
the admission-controller registry so the configuration, the CLI and the
snapshot loader can name controllers the same way they name policies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...exceptions import CacheError
from .adaptive import AdaptiveAdmissionController
from .admission import AdmissionController

__all__ = [
    "admission_by_name",
    "admission_from_record",
    "available_admission_controllers",
]

_ADMISSIONS = {
    AdmissionController.kind: AdmissionController,
    AdaptiveAdmissionController.kind: AdaptiveAdmissionController,
}


def admission_by_name(
    name: str,
    enabled: bool = False,
    expensive_fraction: float = 0.25,
    calibration_windows: int = 2,
    threshold: Optional[float] = None,
) -> AdmissionController:
    """Instantiate an admission controller by (case-insensitive) kind name."""
    key = name.strip().lower()
    try:
        cls = _ADMISSIONS[key]
    except KeyError:
        known = ", ".join(sorted(_ADMISSIONS))
        raise CacheError(
            f"unknown admission controller {name!r}; known: {known}"
        ) from None
    return cls(
        enabled=enabled,
        expensive_fraction=expensive_fraction,
        calibration_windows=calibration_windows,
        threshold=threshold,
    )


def admission_from_record(record: Dict[str, Any]) -> AdmissionController:
    """Rebuild an admission controller from a persisted state record."""
    kind = str(record.get("kind", AdmissionController.kind)).strip().lower()
    try:
        cls = _ADMISSIONS[kind]
    except KeyError:
        known = ", ".join(sorted(_ADMISSIONS))
        raise CacheError(
            f"unknown admission controller {kind!r} in snapshot; known: {known}"
        ) from None
    return cls.from_state_record(record)


def available_admission_controllers() -> List[str]:
    """Names of all bundled admission-controller kinds."""
    return sorted(_ADMISSIONS)
