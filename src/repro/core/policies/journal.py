"""Append-only journal of applied maintenance plans.

Every cache-update round the scheduler executes appends the round's
:class:`~repro.core.policies.plan.MaintenancePlan` — as its
:meth:`~repro.core.policies.plan.MaintenancePlan.to_record` dictionary — to a
:class:`PlanJournal`.  The journal is the durable, ordered decision stream of
one cache (one journal per shard for a sharded cache):

* **audit log** — each record carries the complete rationale of one round
  (admitted/rejected/evicted serials, policy, HD delegate, admission
  threshold, per-victim utilities), so ``graphcache maintenance`` can explain
  any admission or eviction after the fact;
* **replication feed** — the decide/apply split makes a plan mechanically
  applicable, so shipping the record stream to a replica replays the
  primary's cache evolution without re-deciding anything;
* **equivalence evidence** — :meth:`dumps` renders the stream in a canonical
  byte form (sorted-key JSON lines), which is what the scheduler benchmarks
  compare to prove ``barrier`` scheduling produces a byte-identical plan
  stream to ``sync``.

When constructed with a ``path`` the journal is also written through to disk
as JSON lines, one record per line, append-only (the file is opened in append
mode per record, so a crash can lose at most the round being written and
never corrupts earlier records).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from ...analysis.runtime import make_lock
from ...exceptions import CacheError
from .plan import MaintenancePlan

__all__ = ["PlanJournal"]

PathLike = Union[str, Path]


def _canonical_line(record: Dict[str, Any]) -> str:
    """One canonical JSON line per record (sorted keys, compact separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class PlanJournal:
    """In-memory (and optionally on-disk) append-only stream of plan records.

    Parameters
    ----------
    path:
        Optional file to write the stream through to, one JSON line per
        applied plan.  ``None`` keeps the journal in memory only.

    Memory bound: an in-memory-only journal (``path=None``) retains every
    record — it *is* the store.  A file-backed journal retains only the most
    recent :data:`MEMORY_LIMIT` records in RAM (the full stream lives on
    disk; use :meth:`load` to read it back), so a long-running service's
    audit log does not grow the process without bound.
    """

    #: In-memory records retained by a *file-backed* journal (newest kept).
    MEMORY_LIMIT = 4096

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._path = None if path is None else Path(path)
        self._count = 0
        self._records: Deque[Dict[str, Any]] = deque(
            maxlen=self.MEMORY_LIMIT if self._path is not None else None
        )
        self._lock = make_lock("journal")

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Optional[Path]:
        """The backing file, or ``None`` for an in-memory journal."""
        return self._path

    def __len__(self) -> int:
        """Total number of plans ever appended (not the retained tail)."""
        with self._lock:
            return self._count

    def append(self, plan: MaintenancePlan) -> None:
        """Append one applied plan (and write it through, if file-backed)."""
        record = plan.to_record()
        line = _canonical_line(record)
        with self._lock:
            self._count += 1
            self._records.append(record)
            if self._path is not None:
                with self._path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def records(self) -> List[Dict[str, Any]]:
        """The retained plan records, in application order.

        Complete for in-memory journals; the most recent
        :data:`MEMORY_LIMIT` for file-backed ones (read the file via
        :meth:`load` for the full stream).
        """
        with self._lock:
            return list(self._records)

    def plans(self) -> List[MaintenancePlan]:
        """The retained plans, rebuilt from their records."""
        return [MaintenancePlan.from_record(record) for record in self.records()]

    def dumps(self) -> str:
        """Canonical byte stream of the retained records (sorted-key JSON
        lines).

        Two schedulers that made identical decisions produce identical
        strings — the byte-identity the ``barrier``-vs-``sync`` benchmark
        asserts (in-memory journals retain the whole stream).
        """
        return "\n".join(_canonical_line(record) for record in self.records())

    # ------------------------------------------------------------------ #
    @staticmethod
    def load(path: PathLike) -> List[MaintenancePlan]:
        """Read a journal file back into plans (skipping blank lines).

        Append-only journals can legitimately end mid-record: a crash while
        :meth:`append` was writing leaves a torn final line.  That tail is
        skipped — every complete earlier round is still returned.  An
        undecodable line anywhere *before* the tail means the file is not a
        plan journal (or was corrupted in place) and raises
        :class:`~repro.exceptions.CacheError`; a missing or unreadable file
        raises the underlying :class:`OSError`.
        """
        numbered = [
            (lineno, line.strip())
            for lineno, line in enumerate(
                Path(path).read_text(encoding="utf-8").splitlines(), start=1
            )
            if line.strip()
        ]
        plans: List[MaintenancePlan] = []
        for position, (lineno, line) in enumerate(numbered):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if position == len(numbered) - 1:
                    break  # torn tail of an interrupted append
                raise CacheError(
                    f"{path}: line {lineno} is not a journal record ({exc.msg}); "
                    f"only the final line of a crashed append may be partial"
                ) from exc
            plans.append(MaintenancePlan.from_record(record))
        return plans
