"""Append-only journal of applied maintenance plans.

Every cache-update round the scheduler executes appends the round's
:class:`~repro.core.policies.plan.MaintenancePlan` — as its
:meth:`~repro.core.policies.plan.MaintenancePlan.to_record` dictionary — to a
:class:`PlanJournal`.  The journal is the durable, ordered decision stream of
one cache (one journal per shard for a sharded cache):

* **audit log** — each record carries the complete rationale of one round
  (admitted/rejected/evicted serials, policy, HD delegate, admission
  threshold, per-victim utilities), so ``graphcache maintenance`` can explain
  any admission or eviction after the fact;
* **replication feed** — the decide/apply split makes a plan mechanically
  applicable, so each record also carries the round's *admitted entries*
  (encoded window entries) and the *hit events* observed since the previous
  round: a frame a replica (or a crash recovery) can replay through
  :meth:`~repro.core.policies.engine.MaintenanceEngine.replay` to reproduce
  the primary's cache evolution without re-deciding anything.  Live shipping
  goes through :meth:`subscribe` — subscribers see every appended record in
  order;
* **equivalence evidence** — :meth:`dumps` renders the stream in a canonical
  byte form (sorted-key JSON lines), which is what the scheduler benchmarks
  compare to prove ``barrier`` scheduling produces a byte-identical plan
  stream to ``sync``.  Volatile keys (``admitted_entries`` carries measured
  wall-clock filter/verify times) are excluded from that rendering, so the
  identity remains a statement about *decisions*, not timings.

When constructed with a ``path`` the journal is also written through to disk
as JSON lines, one record per line, append-only (the file is opened in append
mode per record, so a crash can lose at most the round being written and
never corrupts earlier records).  ``fsync=True`` additionally flushes and
fsyncs every append, so a checkpoint taken after a round can never be durably
ahead of its own journal.

Each record carries a 1-based ``round`` sequence number.  Re-opening an
existing file adopts the highest round already on disk, so a recovered cache
continues the numbering instead of restarting it.  :meth:`truncate_before`
compacts the file by dropping rounds already folded into a checkpoint
(atomic tempfile publish; surviving rounds keep their original numbers).
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from ...analysis.runtime import make_lock
from ...exceptions import CacheError
from ..stores import WindowEntry, WindowEntryCodec
from .plan import MaintenancePlan

__all__ = ["PlanJournal"]

PathLike = Union[str, Path]

#: Record keys excluded from :meth:`PlanJournal.dumps`: they carry measured
#: wall-clock times (window-entry filter/verify seconds), which differ between
#: two otherwise decision-identical runs.
_VOLATILE_KEYS = ("admitted_entries", "hits")

#: One hit event as journaled: ``(serial, benefiting_serial, cs_reduction,
#: cost_reduction, special)`` — the exact argument tuple of
#: :meth:`~repro.core.policies.engine.MaintenanceEngine.on_hit`.
HitEvent = Tuple[int, int, float, float, bool]


def _canonical_line(record: Dict[str, Any]) -> str:
    """One canonical JSON line per record (sorted keys, compact separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def decode_hits(raw: Sequence[Sequence[Any]]) -> Tuple[HitEvent, ...]:
    """Decode journaled hit events back into ``on_hit`` argument tuples."""
    return tuple(
        (int(s), int(b), float(cs), float(cost), bool(special))
        for s, b, cs, cost, special in raw
    )


class PlanJournal:
    """In-memory (and optionally on-disk) append-only stream of plan records.

    Parameters
    ----------
    path:
        Optional file to write the stream through to, one JSON line per
        applied plan.  ``None`` keeps the journal in memory only.
    fsync:
        When ``True`` (and file-backed), every append is flushed and
        fsync'd before :meth:`append` returns — the durability mode the
        crash-recovery tests run under.

    Memory bound: an in-memory-only journal (``path=None``) retains every
    record — it *is* the store.  A file-backed journal retains only the most
    recent :data:`MEMORY_LIMIT` records in RAM (the full stream lives on
    disk; use :meth:`load` to read it back), so a long-running service's
    audit log does not grow the process without bound.
    """

    #: In-memory records retained by a *file-backed* journal (newest kept).
    MEMORY_LIMIT = 4096

    def __init__(self, path: Optional[PathLike] = None, fsync: bool = False) -> None:
        self._path = None if path is None else Path(path)
        self._fsync = bool(fsync)
        self._count = 0
        self._records: Deque[Dict[str, Any]] = deque(
            maxlen=self.MEMORY_LIMIT if self._path is not None else None
        )
        self._lock = make_lock("journal")
        self._subscribers: List[Callable[[Dict[str, Any], str], None]] = []
        # Adopt the numbering of an existing file so a recovered cache
        # continues the round sequence instead of colliding with it.
        self._last_round = 0
        if self._path is not None and self._path.exists():
            existing = self.read_records(self._path)
            if existing:
                self._last_round = existing[-1]["round"]

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Optional[Path]:
        """The backing file, or ``None`` for an in-memory journal."""
        return self._path

    @property
    def fsync(self) -> bool:
        """Whether appends are fsync'd through to disk."""
        return self._fsync

    @property
    def last_round(self) -> int:
        """The highest round number appended (or adopted from the file)."""
        with self._lock:
            return self._last_round

    def __len__(self) -> int:
        """Total number of plans ever appended (not the retained tail)."""
        with self._lock:
            return self._count

    def subscribe(self, callback: Callable[[Dict[str, Any], str], None]) -> None:
        """Register ``callback(record, line)`` for every future append.

        Callbacks run under the journal lock, so a subscriber observes the
        exact append order — the property replication relies on.  They must
        therefore be cheap (enqueue-and-return) and must not acquire any
        lock ranked at or below ``journal``.
        """
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Dict[str, Any], str], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def append(
        self,
        plan: MaintenancePlan,
        admitted_entries: Optional[Sequence[WindowEntry]] = None,
        hits: Optional[Sequence[HitEvent]] = None,
    ) -> None:
        """Append one applied plan (and write it through, if file-backed).

        ``admitted_entries`` (the window entries the plan admitted, in plan
        order) and ``hits`` (the hit events observed since the previous
        round) make the record a complete replayable frame; omitting them
        keeps the record a pure audit entry, as pre-replication journals
        were.
        """
        record = plan.to_record()
        if admitted_entries is not None:
            record["admitted_entries"] = [
                WindowEntryCodec.encode(entry) for entry in admitted_entries
            ]
        if hits is not None:
            record["hits"] = [list(event) for event in hits]
        with self._lock:
            self._last_round += 1
            record["round"] = self._last_round
            line = _canonical_line(record)
            self._count += 1
            self._records.append(record)
            if self._path is not None:
                with self._path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    if self._fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
            for callback in self._subscribers:
                callback(record, line)

    def records(self) -> List[Dict[str, Any]]:
        """The retained plan records, in application order.

        Complete for in-memory journals; the most recent
        :data:`MEMORY_LIMIT` for file-backed ones (read the file via
        :meth:`load` for the full stream).
        """
        with self._lock:
            return list(self._records)

    def plans(self) -> List[MaintenancePlan]:
        """The retained plans, rebuilt from their records."""
        return [MaintenancePlan.from_record(record) for record in self.records()]

    def dumps(self) -> str:
        """Canonical byte stream of the retained records (sorted-key JSON
        lines).

        Two schedulers that made identical decisions produce identical
        strings — the byte-identity the ``barrier``-vs-``sync`` benchmark
        asserts (in-memory journals retain the whole stream).  Volatile
        keys (:data:`_VOLATILE_KEYS` — measured wall-clock times) are
        excluded so the identity covers decisions, not timings.
        """
        return "\n".join(
            _canonical_line(
                {k: v for k, v in record.items() if k not in _VOLATILE_KEYS}
            )
            for record in self.records()
        )

    # ------------------------------------------------------------------ #
    # Compaction.
    # ------------------------------------------------------------------ #
    def truncate_before(self, round_watermark: int) -> int:
        """Drop every record with ``round <= round_watermark`` from the file.

        The compaction counterpart of a checkpoint: once a snapshot's
        watermark covers a round, its record is dead weight for recovery
        and can be folded away.  The surviving tail is republished
        atomically (tempfile + ``os.replace``), so a crash mid-compaction
        leaves either the old or the new file, never a torn mix.  Surviving
        records keep their original round numbers.  Returns the number of
        records dropped.  In-memory journals compact their deque directly.
        """
        with self._lock:
            dropped = 0
            if self._path is not None and self._path.exists():
                all_records = self.read_records(self._path)
                kept = [r for r in all_records if r["round"] > round_watermark]
                dropped = len(all_records) - len(kept)
                fd, tmp_name = tempfile.mkstemp(
                    dir=str(self._path.parent), prefix=self._path.name + ".tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        for record in kept:
                            handle.write(_canonical_line(record) + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp_name, self._path)
                except BaseException:
                    Path(tmp_name).unlink(missing_ok=True)
                    raise
            retained = [
                r
                for r in self._records
                if r.get("round", round_watermark + 1) > round_watermark
            ]
            if self._path is None:
                dropped = len(self._records) - len(retained)
            self._records = deque(retained, maxlen=self._records.maxlen)
            return dropped

    # ------------------------------------------------------------------ #
    @staticmethod
    def read_records(
        path: PathLike,
        since_round: Optional[int] = None,
        tail: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Read a journal file back into records (skipping blank lines).

        Every returned record carries a ``round`` number: taken from the
        record when present, else inferred sequentially (legacy journals
        predate round numbering).  ``since_round`` keeps only records with
        ``round >= since_round``; ``tail`` keeps only the last ``tail``
        records (applied after ``since_round``).

        Append-only journals can legitimately end mid-record: a crash while
        :meth:`append` was writing leaves a torn final line.  That tail is
        skipped — every complete earlier round is still returned.  An
        undecodable line anywhere *before* the tail means the file is not a
        plan journal (or was corrupted in place) and raises
        :class:`~repro.exceptions.CacheError`; a missing or unreadable file
        raises the underlying :class:`OSError`.
        """
        numbered = [
            (lineno, line.strip())
            for lineno, line in enumerate(
                Path(path).read_text(encoding="utf-8").splitlines(), start=1
            )
            if line.strip()
        ]
        records: List[Dict[str, Any]] = []
        previous_round = 0
        for position, (lineno, line) in enumerate(numbered):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if position == len(numbered) - 1:
                    break  # torn tail of an interrupted append
                raise CacheError(
                    f"{path}: line {lineno} is not a journal record ({exc.msg}); "
                    f"only the final line of a crashed append may be partial"
                ) from exc
            record["round"] = int(record.get("round", previous_round + 1))
            previous_round = record["round"]
            records.append(record)
        if since_round is not None:
            records = [r for r in records if r["round"] >= since_round]
        if tail is not None and tail >= 0:
            records = records[-tail:] if tail else []
        return records

    @staticmethod
    def load(path: PathLike) -> List[MaintenancePlan]:
        """Read a journal file back into plans (see :meth:`read_records`)."""
        return [
            MaintenancePlan.from_record(record)
            for record in PlanJournal.read_records(path)
        ]
