"""MaintenanceScheduler: where and when cache-update rounds execute.

The paper runs window maintenance off the query path; until this layer the
reproduction ran every round *synchronously inside the commit stage*, so the
query that filled a window stalled behind decide+apply under the GC lock.
The engine's strict decide/apply split (pure
:class:`~repro.core.policies.plan.MaintenancePlan` → row-level deltas) makes
the decoupling mechanical, and this module provides it as a pluggable
policy — ``config.maintenance_mode`` selects one of three schedulers:

``sync`` (default)
    :class:`SyncMaintenanceScheduler` — the round runs inline on the
    committing thread, under the GC lock it already holds.  Deterministic,
    and exactly the pre-scheduler behaviour.

``background``
    :class:`BackgroundMaintenanceScheduler` — the drained window is handed
    to a dedicated worker thread.  ``decide()`` runs entirely off the query
    path; ``apply()`` runs phased (store delta under the store lock, GCindex
    delta as one double-buffered batch that lookups never block on, and only
    the small heap/statistics delta briefly under the GC lock).  The
    committing query returns immediately: its ``maintenance_time_s`` is 0
    and the round's :class:`~repro.core.policies.plan.MaintenanceReport`
    appears asynchronously.  Plans may legitimately differ from ``sync``
    when hits land between the window fill and the worker's decide.

``barrier``
    :class:`BarrierMaintenanceScheduler` — the deterministic test mode:
    rounds still execute on the worker thread (so *zero* decide-phase work
    runs on the query thread — the scheduler counters prove it), but the
    submitting query blocks until the round completes.  No hit can
    interleave with a round, so the plan stream is byte-identical to
    ``sync`` — the equivalence the scheduler benchmark pins on all
    scenarios.

Every applied plan is appended to the scheduler's
:class:`~repro.core.policies.journal.PlanJournal` (the per-shard audit log /
replication feed), and schedulers expose :meth:`~MaintenanceScheduler.drain`
so caches can guarantee **drain-before-snapshot** and **drain-on-close**:
pending plans are applied in full, never half-persisted.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

from ...analysis.runtime import make_lock
from ...exceptions import CacheError
from ..stores import WindowEntry
from .engine import MaintenanceEngine
from .journal import PlanJournal
from .plan import MaintenanceReport

__all__ = [
    "SCHEDULER_MODES",
    "SchedulerCounters",
    "MaintenanceScheduler",
    "SyncMaintenanceScheduler",
    "BackgroundMaintenanceScheduler",
    "BarrierMaintenanceScheduler",
    "create_scheduler",
]

#: Valid ``config.maintenance_mode`` values, in documentation order.
SCHEDULER_MODES: Tuple[str, ...] = ("sync", "background", "barrier")


@dataclass
class SchedulerCounters:
    """Deterministic accounting of where maintenance rounds executed.

    ``inline_rounds`` counts rounds run on the thread that submitted them
    (the query/commit thread); ``worker_rounds`` counts rounds run on the
    scheduler's worker thread.  ``decide_thread_idents`` records the thread
    idents that executed decide+apply — the background benchmark asserts the
    query thread's ident never appears there, i.e. zero decide-phase ops on
    the query path.

    ``tasks`` / ``inline_tasks`` / ``worker_tasks`` /
    ``task_thread_idents`` account for *storage-maintenance tasks* submitted
    through :meth:`MaintenanceScheduler.submit_task` (arena compaction) the
    same way — the compaction tests pin "no compaction work on the query
    thread" on them in background mode.
    """

    rounds: int = 0
    inline_rounds: int = 0
    worker_rounds: int = 0
    decide_thread_idents: Set[int] = field(default_factory=set)
    tasks: int = 0
    inline_tasks: int = 0
    worker_tasks: int = 0
    task_thread_idents: Set[int] = field(default_factory=set)


class MaintenanceScheduler:
    """Common machinery: round execution, reports, journal, counters.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.policies.engine.MaintenanceEngine` executing
        decide/apply.
    gc_lock:
        The owning cache's GC lock, threaded into the engine's apply phase
        that mutates commit-shared structures.  ``None`` for standalone
        (single-threaded) use.
    journal:
        The :class:`~repro.core.policies.journal.PlanJournal` receiving every
        applied plan; a fresh in-memory journal is created when omitted.
    """

    #: Registry name of the scheduler (``config.maintenance_mode``).
    mode: str = "abstract"

    def __init__(
        self,
        engine: MaintenanceEngine,
        gc_lock: Optional[threading.RLock] = None,
        journal: Optional[PlanJournal] = None,
    ) -> None:
        self._engine = engine
        self._gc_lock = gc_lock
        self._journal = journal if journal is not None else PlanJournal()
        self._reports: List[MaintenanceReport] = []
        self._state_lock = make_lock("scheduler.state")
        self._total_maintenance_s = 0.0
        self.counters = SchedulerCounters()

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> MaintenanceEngine:
        """The maintenance engine running the decide/apply rounds."""
        return self._engine

    @property
    def journal(self) -> PlanJournal:
        """The append-only journal of every plan this scheduler applied."""
        return self._journal

    @property
    def reports(self) -> List[MaintenanceReport]:
        """Reports of every completed round so far (application order)."""
        with self._state_lock:
            return list(self._reports)

    @property
    def total_maintenance_s(self) -> float:
        """Cumulative wall-clock seconds spent executing rounds."""
        with self._state_lock:
            return self._total_maintenance_s

    # ------------------------------------------------------------------ #
    def _round_lock(self) -> Optional[threading.RLock]:
        """The lock the engine's commit-shared apply phase should take."""
        return self._gc_lock

    def _execute_round(
        self,
        window_entries: Sequence[WindowEntry],
        current_serial: int,
        inline: bool,
    ) -> MaintenanceReport:
        """Run decide+apply for one drained window and record everything."""
        started = time.perf_counter()
        plan, index_ops, backend_row_ops, hit_events = self._engine.run(
            window_entries, current_serial, lock=self._round_lock()
        )
        elapsed = time.perf_counter() - started
        report = MaintenanceReport(
            window_queries=len(window_entries),
            admitted_serials=plan.admitted_serials,
            rejected_serials=plan.rejected_serials,
            evicted_serials=plan.evicted_serials,
            cache_size_after=len(self._engine.cache_store),
            elapsed_s=elapsed,
            index_ops=index_ops,
            backend_row_ops=backend_row_ops,
            plan=plan,
        )
        # Journal the round as a complete replayable frame: the plan, the
        # admitted window entries (the rows a replica must install) and the
        # hit events the round consumed.
        by_serial = {entry.serial: entry for entry in window_entries}
        self._journal.append(
            plan,
            admitted_entries=tuple(
                by_serial[serial] for serial in plan.admitted_serials
            ),
            hits=hit_events,
        )
        with self._state_lock:
            self._reports.append(report)
            self._total_maintenance_s += elapsed
            self.counters.rounds += 1
            if inline:
                self.counters.inline_rounds += 1
            else:
                self.counters.worker_rounds += 1
            self.counters.decide_thread_idents.add(threading.get_ident())
        return report

    def _execute_task(self, task: Callable[[], None], inline: bool) -> None:
        """Run one storage-maintenance task and account for where it ran.

        The task executes *before* the state lock is taken (tasks do their
        own locking — arena compaction runs under the backend lock — and
        nesting it inside ``scheduler.state`` would invert the lock ranks).
        """
        task()
        with self._state_lock:
            self.counters.tasks += 1
            if inline:
                self.counters.inline_tasks += 1
            else:
                self.counters.worker_tasks += 1
            self.counters.task_thread_idents.add(threading.get_ident())

    # ------------------------------------------------------------------ #
    # The scheduling contract.
    # ------------------------------------------------------------------ #
    def submit(
        self, window_entries: Sequence[WindowEntry], current_serial: int
    ) -> Optional[MaintenanceReport]:
        """Schedule one round for a drained window.

        Returns the completed report when the round ran to completion before
        returning (``sync``/``barrier``), else ``None`` (``background``).
        """
        raise NotImplementedError

    def submit_task(self, task: Callable[[], None]) -> None:
        """Schedule one storage-maintenance task (e.g. arena compaction).

        Tasks follow the scheduler's round placement: ``sync`` runs them
        inline on the submitting thread, ``background`` hands them to the
        worker thread (off the query path), ``barrier`` runs them on the
        worker and waits.  :meth:`drain` covers pending tasks exactly like
        pending rounds.
        """
        self._execute_task(task, inline=True)

    def drain(self) -> None:
        """Block until every submitted round has been applied.

        Callers must **not** hold the GC lock: a pending background round
        needs it briefly to finish its apply.
        """

    def idle(self) -> bool:
        """``True`` when no submitted round is queued or in flight.

        A non-blocking probe (safe under the GC lock, unlike :meth:`drain`):
        the quiesce loops in ``snapshot_state``/``restore`` use it to detect
        a round submitted between their drain and their lock acquisition.
        """
        return True

    def close(self) -> None:
        """Drain pending rounds and release scheduler resources."""
        self.drain()


class SyncMaintenanceScheduler(MaintenanceScheduler):
    """Inline scheduling: the pre-scheduler behaviour, byte for byte."""

    mode = "sync"

    def submit(
        self, window_entries: Sequence[WindowEntry], current_serial: int
    ) -> Optional[MaintenanceReport]:
        # The submitter is the committing thread and already holds the GC
        # lock (re-entrant), so taking it again in the apply phase is free.
        return self._execute_round(window_entries, current_serial, inline=True)


class BackgroundMaintenanceScheduler(MaintenanceScheduler):
    """Worker-thread scheduling: maintenance fully off the query path."""

    mode = "background"

    #: Seconds to wait for the worker thread to exit on close.
    JOIN_TIMEOUT_S = 30.0

    def __init__(
        self,
        engine: MaintenanceEngine,
        gc_lock: Optional[threading.RLock] = None,
        journal: Optional[PlanJournal] = None,
    ) -> None:
        super().__init__(engine, gc_lock=gc_lock, journal=journal)
        # Queue items: None (shutdown sentinel), a (window, serial) round, or
        # a callable storage-maintenance task (submit_task).
        self._queue: "queue.Queue[Union[None, Tuple[List[WindowEntry], int], Callable[[], None]]]" = (
            queue.Queue()
        )
        self._worker: Optional[threading.Thread] = None
        self._worker_lock = make_lock("scheduler.worker")
        self._failure: Optional[BaseException] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    def _ensure_worker_locked(self) -> None:
        """Start the worker if needed.  Caller holds ``_worker_lock``."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop,
                name="gc-maintenance",
                daemon=True,
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            try:
                if task is None:
                    return
                if callable(task):
                    self._execute_task(task, inline=False)
                    continue
                window_entries, current_serial = task
                self._execute_round(window_entries, current_serial, inline=False)
            except BaseException as exc:  # noqa: BLE001 - surfaced on drain
                self._failure = exc
            finally:
                self._queue.task_done()

    def _raise_pending_failure(self) -> None:
        failure, self._failure = self._failure, None
        if failure is not None:
            raise CacheError(
                f"background maintenance round failed: {failure!r}"
            ) from failure

    # ------------------------------------------------------------------ #
    def submit(
        self, window_entries: Sequence[WindowEntry], current_serial: int
    ) -> Optional[MaintenanceReport]:
        self._raise_pending_failure()
        # The closed-check, worker start and enqueue form one critical
        # section against close(): a round can never land on the queue
        # after close() decided the worker's shutdown sentinel was final
        # (which would silently drop the round and hang the next drain).
        with self._worker_lock:
            if self._closed:
                raise CacheError("maintenance scheduler is closed")
            self._ensure_worker_locked()
            self._queue.put((list(window_entries), current_serial))
        return None

    def submit_task(self, task: Callable[[], None]) -> None:
        self._raise_pending_failure()
        # Same critical section as submit(): never enqueue after close().
        with self._worker_lock:
            if self._closed:
                raise CacheError("maintenance scheduler is closed")
            self._ensure_worker_locked()
            self._queue.put(task)

    def drain(self) -> None:
        self._queue.join()
        self._raise_pending_failure()

    def idle(self) -> bool:
        with self._queue.all_tasks_done:
            return self._queue.unfinished_tasks == 0

    def close(self) -> None:
        with self._worker_lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        if worker is not None and worker.is_alive():
            # Finish pending rounds (drain-on-close), then stop the worker.
            self._queue.join()
            self._queue.put(None)
            worker.join(timeout=self.JOIN_TIMEOUT_S)
        self._raise_pending_failure()


class BarrierMaintenanceScheduler(BackgroundMaintenanceScheduler):
    """Worker-thread scheduling with a completion barrier per round.

    Decide still runs on the worker (never on the query thread), but the
    submitter waits for the round, so no hit can interleave between window
    fill and decide — plans and counters are byte-identical to ``sync``.
    """

    mode = "barrier"

    def _round_lock(self) -> Optional[threading.RLock]:
        # The submitting thread is parked inside ``submit`` *holding the GC
        # lock* (it is the commit stage); the worker taking it again would
        # deadlock.  The barrier itself provides the mutual exclusion: no
        # other thread can commit while the submitter holds the lock.
        return None

    def submit(
        self, window_entries: Sequence[WindowEntry], current_serial: int
    ) -> Optional[MaintenanceReport]:
        super().submit(window_entries, current_serial)
        self._queue.join()
        self._raise_pending_failure()
        with self._state_lock:
            return self._reports[-1] if self._reports else None

    def submit_task(self, task: Callable[[], None]) -> None:
        # Tasks keep the barrier semantics: run on the worker, wait here.
        super().submit_task(task)
        self._queue.join()
        self._raise_pending_failure()


_SCHEDULERS = {
    SyncMaintenanceScheduler.mode: SyncMaintenanceScheduler,
    BackgroundMaintenanceScheduler.mode: BackgroundMaintenanceScheduler,
    BarrierMaintenanceScheduler.mode: BarrierMaintenanceScheduler,
}


def create_scheduler(
    mode: str,
    engine: MaintenanceEngine,
    gc_lock: Optional[threading.RLock] = None,
    journal: Optional[PlanJournal] = None,
) -> MaintenanceScheduler:
    """Build the scheduler ``config.maintenance_mode`` names."""
    try:
        factory = _SCHEDULERS[mode.lower()]
    except KeyError:
        raise CacheError(
            f"unknown maintenance mode {mode!r}; "
            f"valid modes: {', '.join(SCHEDULER_MODES)}"
        ) from None
    return factory(engine, gc_lock=gc_lock, journal=journal)
