"""The unified cache-maintenance subsystem (the paper's §6, as one package).

The seed scattered the maintenance machinery across five loosely coupled
modules (window, admission, adaptive admission, replacement, statistics) and
ran every window fill as stop-the-world O(cache) work.  This package unifies
it behind two registries and one engine:

* :mod:`~repro.core.policies.replacement` — the five paper policies
  (LRU/POP/PIN/PINC/HD) behind :func:`policy_by_name`;
* :mod:`~repro.core.policies.admission` /
  :mod:`~repro.core.policies.adaptive` — the §6.2 admission controllers
  behind :func:`admission_by_name`, now with persistable calibration state;
* :mod:`~repro.core.policies.heap` — the incremental utility scorer with
  per-hit update hooks (the full-snapshot re-score survives only as the
  reference oracle);
* :mod:`~repro.core.policies.engine` — :class:`MaintenanceEngine`, the
  decide/apply split: a pure, serializable :class:`MaintenancePlan` per
  round, applied as O(window) row-level deltas;
* :mod:`~repro.core.policies.scheduler` — the maintenance schedulers
  (``sync``/``background``/``barrier``): *where* rounds execute, taking
  maintenance off the query path;
* :mod:`~repro.core.policies.journal` — the append-only
  :class:`PlanJournal` of applied plans (audit log / replication feed);
* :mod:`~repro.core.policies.window` — the Window Manager, now a thin
  batching front end over the scheduler.

The seed modules (``repro.core.window``, ``repro.core.admission``,
``repro.core.adaptive_admission``, ``repro.core.replacement``) remain as
re-export shims so existing imports keep working.
"""

from __future__ import annotations

from .adaptive import AdaptiveAdmissionController
from .admission import AdmissionController
from .engine import MaintenanceEngine
from .heap import SelectionOutcome, UtilityHeap
from .journal import PlanJournal
from .plan import MaintenancePlan, MaintenanceReport
from .registry import (
    admission_by_name,
    admission_from_record,
    available_admission_controllers,
)
from .replacement import (
    HybridPolicy,
    LRUPolicy,
    PINCPolicy,
    PINPolicy,
    POPPolicy,
    ReplacementPolicy,
    available_policies,
    policy_by_name,
    squared_coefficient_of_variation,
)
from .scheduler import (
    SCHEDULER_MODES,
    BackgroundMaintenanceScheduler,
    BarrierMaintenanceScheduler,
    MaintenanceScheduler,
    SchedulerCounters,
    SyncMaintenanceScheduler,
    create_scheduler,
)
from .window import WindowManager

__all__ = [
    "SCHEDULER_MODES",
    "AdaptiveAdmissionController",
    "AdmissionController",
    "BackgroundMaintenanceScheduler",
    "BarrierMaintenanceScheduler",
    "HybridPolicy",
    "LRUPolicy",
    "MaintenanceEngine",
    "MaintenancePlan",
    "MaintenanceReport",
    "MaintenanceScheduler",
    "PlanJournal",
    "SchedulerCounters",
    "SyncMaintenanceScheduler",
    "PINCPolicy",
    "PINPolicy",
    "POPPolicy",
    "ReplacementPolicy",
    "SelectionOutcome",
    "UtilityHeap",
    "WindowManager",
    "admission_by_name",
    "admission_from_record",
    "available_admission_controllers",
    "create_scheduler",
    "available_policies",
    "policy_by_name",
    "squared_coefficient_of_variation",
]
