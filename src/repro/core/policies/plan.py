"""Maintenance decisions as pure, serializable data.

The decide/apply split (like the DB-nets line of work in PAPERS.md) makes
every cache-update round auditable: :class:`MaintenancePlan` is the complete
decision — which window queries are admitted or rejected, which cached
entries are evicted, and why — produced *before* any state is touched.  The
apply step consumes the plan mechanically, so a plan can be golden-tested
(the paper's Table 1 running example reproduces byte-for-byte from the plan
alone), logged, or shipped to a replica.

:class:`MaintenanceReport` wraps one executed round: the plan plus the
measured apply-side work (wall-clock, index ops, backend row ops).  The op
counters are the deterministic evidence that maintenance is O(window): they
scale with the window size, never with the cache size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["MaintenancePlan", "MaintenanceReport"]


@dataclass(frozen=True)
class MaintenancePlan:
    """One cache-update decision, as pure data.

    Attributes
    ----------
    current_serial:
        Serial of the query that filled the window (ages are measured
        against it).
    window_serials:
        Serials of the drained window queries, in serial order.
    admitted_serials:
        Window queries entering the cache, in window order.
    rejected_serials:
        Window queries denied by admission control (or truncated away when
        the window exceeds the cache capacity).  Computed per *serial*:
        a serial is rejected iff it was not admitted.
    evicted_serials:
        Cached entries leaving the cache, lowest utility first.
    policy:
        Name of the replacement policy that decided the evictions.
    policy_delegate:
        The delegate HD resolved to for this round (``None`` otherwise).
    admission_threshold:
        The admission controller's threshold at decision time (``None``
        while calibrating).
    victim_utilities:
        ``(serial, utility)`` pairs for the victims, in eviction order —
        the per-victim rationale.
    """

    current_serial: int
    window_serials: Tuple[int, ...]
    admitted_serials: Tuple[int, ...]
    rejected_serials: Tuple[int, ...]
    evicted_serials: Tuple[int, ...]
    policy: str
    policy_delegate: Optional[str] = None
    admission_threshold: Optional[float] = None
    victim_utilities: Tuple[Tuple[int, float], ...] = ()

    def to_record(self) -> Dict[str, Any]:
        """JSON-compatible record (tuples become lists)."""
        return {
            "current_serial": self.current_serial,
            "window_serials": list(self.window_serials),
            "admitted_serials": list(self.admitted_serials),
            "rejected_serials": list(self.rejected_serials),
            "evicted_serials": list(self.evicted_serials),
            "policy": self.policy,
            "policy_delegate": self.policy_delegate,
            "admission_threshold": self.admission_threshold,
            "victim_utilities": [list(pair) for pair in self.victim_utilities],
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "MaintenancePlan":
        """Rebuild a plan from a :meth:`to_record` dictionary."""
        threshold = record.get("admission_threshold")
        return cls(
            current_serial=int(record["current_serial"]),
            window_serials=tuple(int(s) for s in record["window_serials"]),
            admitted_serials=tuple(int(s) for s in record["admitted_serials"]),
            rejected_serials=tuple(int(s) for s in record["rejected_serials"]),
            evicted_serials=tuple(int(s) for s in record["evicted_serials"]),
            policy=str(record["policy"]),
            policy_delegate=record.get("policy_delegate"),
            admission_threshold=None if threshold is None else float(threshold),
            victim_utilities=tuple(
                (int(serial), float(utility))
                for serial, utility in record.get("victim_utilities", ())
            ),
        )


@dataclass(frozen=True)
class MaintenanceReport:
    """Summary of one executed cache-update round.

    The first six fields are the seed's report (kept for compatibility);
    the engine-era fields carry the plan itself and the measured apply-side
    work counters.
    """

    window_queries: int
    admitted_serials: Tuple[int, ...]
    rejected_serials: Tuple[int, ...]
    evicted_serials: Tuple[int, ...]
    cache_size_after: int
    elapsed_s: float
    #: GCindex mutations (add + remove calls) performed by the apply step.
    index_ops: int = 0
    #: Storage-backend row mutations (inserts + deletes) performed by the
    #: apply step on the cache store.
    backend_row_ops: int = 0
    #: The full decision this round executed.
    plan: Optional[MaintenancePlan] = field(default=None, repr=False)
