"""Cache admission control: the expensiveness filter of §6.2.

While experimenting with dense datasets the paper's authors observed *cache
pollution*: the cache filled with cheap queries whose hits saved little time,
so the expensive queries that dominate total processing time saw no benefit.
The admission-control mechanism scores every executed query by its
*expensiveness* — the ratio of its verification time to its filtering time —
and only queries above a threshold may enter the cache.

The threshold is calibrated from the queries of the first few windows: it is
set so that a configured fraction of those queries classify as expensive.  A
threshold of zero disables the mechanism (the paper's "C" configuration; the
calibrated one is "C + AC").

Controllers are *stateful* (calibration scores, fixed threshold, adaptive
history) and that state is part of the cache's persistable identity: snapshot
format v3 carries :meth:`AdmissionController.state_record` so a cache split
mid-calibration resumes exactly where it stopped instead of silently
recalibrating from scratch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..stores import WindowEntry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Expensiveness-threshold admission filter.

    Parameters
    ----------
    enabled:
        Master switch; when ``False`` every query is admitted.
    expensive_fraction:
        Target fraction of calibration queries classified as expensive.
    calibration_windows:
        Number of initial windows whose queries are observed before the
        threshold is fixed.
    threshold:
        Explicit threshold.  ``None`` = calibrate automatically; ``0.0``
        disables admission control (every query admitted) per the paper.
    """

    #: Registry name of the controller (see :func:`~repro.core.policies.admission_by_name`).
    kind: str = "threshold"

    def __init__(
        self,
        enabled: bool = False,
        expensive_fraction: float = 0.25,
        calibration_windows: int = 2,
        threshold: Optional[float] = None,
    ) -> None:
        self._enabled = enabled
        self._expensive_fraction = expensive_fraction
        self._calibration_windows = calibration_windows
        self._explicit_threshold = threshold
        self._threshold: Optional[float] = threshold
        self._observed_scores: List[float] = []
        self._windows_observed = 0

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """``True`` when the admission filter is active."""
        return self._enabled

    @property
    def threshold(self) -> Optional[float]:
        """Current expensiveness threshold (``None`` while calibrating)."""
        return self._threshold

    @property
    def calibrated(self) -> bool:
        """``True`` once the threshold has been fixed."""
        return self._threshold is not None

    # ------------------------------------------------------------------ #
    def observe_window(self, entries: Sequence[WindowEntry]) -> None:
        """Feed one completed window into the calibration phase.

        Has no effect once the threshold is fixed or when an explicit
        threshold was supplied.
        """
        if not self._enabled or self._explicit_threshold is not None:
            return
        if self.calibrated:
            return
        self._observed_scores.extend(
            entry.expensiveness
            for entry in entries
            if entry.expensiveness != float("inf")
        )
        self._windows_observed += 1
        if self._windows_observed >= self._calibration_windows:
            self._threshold = self._quantile_threshold()

    def _quantile_threshold(self) -> float:
        """Threshold classifying ``expensive_fraction`` of observed queries as expensive."""
        if not self._observed_scores:
            return 0.0
        ordered = sorted(self._observed_scores)
        # The top ``expensive_fraction`` of scores should pass the filter.
        cut = int(round((1.0 - self._expensive_fraction) * (len(ordered) - 1)))
        cut = min(max(cut, 0), len(ordered) - 1)
        return ordered[cut]

    # ------------------------------------------------------------------ #
    def admit(self, entry: WindowEntry) -> bool:
        """Return ``True`` if ``entry`` may be considered for caching."""
        if not self._enabled:
            return True
        if self._threshold is None:
            # Still calibrating: admit everything, as the paper does for the
            # first few windows.
            return True
        if self._threshold <= 0.0:
            # A threshold of 0 disables the component (paper, §6.2).
            return True
        return entry.expensiveness >= self._threshold

    def filter_admitted(self, entries: Sequence[WindowEntry]) -> List[WindowEntry]:
        """Return the entries that pass the admission filter, preserving order."""
        return [entry for entry in entries if self.admit(entry)]

    # ------------------------------------------------------------------ #
    # Persistable state (snapshot format v3).
    # ------------------------------------------------------------------ #
    def state_record(self) -> Dict[str, Any]:
        """JSON-compatible record of the controller's full state.

        Carries both the constructor parameters and the mutable calibration
        state, so :func:`~repro.core.policies.admission_from_record` can
        rebuild an identical controller — including one interrupted
        mid-calibration, whose observed scores and window count must survive
        the round-trip for replay identity.
        """
        return {
            "kind": self.kind,
            "enabled": self._enabled,
            "expensive_fraction": self._expensive_fraction,
            "calibration_windows": self._calibration_windows,
            "explicit_threshold": self._explicit_threshold,
            "threshold": self._threshold,
            "observed_scores": list(self._observed_scores),
            "windows_observed": self._windows_observed,
        }

    def restore_state(self, record: Dict[str, Any]) -> None:
        """Adopt the mutable calibration state of a :meth:`state_record`."""
        threshold = record.get("threshold")
        self._threshold = None if threshold is None else float(threshold)
        self._observed_scores = [float(s) for s in record.get("observed_scores", ())]
        self._windows_observed = int(record.get("windows_observed", 0))

    @classmethod
    def from_state_record(cls, record: Dict[str, Any]) -> "AdmissionController":
        """Rebuild a controller from a :meth:`state_record`."""
        controller = cls(
            enabled=bool(record.get("enabled", False)),
            expensive_fraction=float(record.get("expensive_fraction", 0.25)),
            calibration_windows=int(record.get("calibration_windows", 2)),
            threshold=record.get("explicit_threshold"),
        )
        controller.restore_state(record)
        return controller
