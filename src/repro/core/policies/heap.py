"""Incremental utility scoring for the replacement policies.

The seed's maintenance path re-scored the *whole* cache on every window fill:
``StatisticsManager.snapshots()`` copied one triplet-store row per cached
entry (lock + dict copy + ten field conversions each) and the policy sorted
all of them — O(cache log cache) work to pick a handful of victims.

:class:`UtilityHeap` replaces that with incremental state:

* the policy-relevant statistics of every *cached* entry (hits, last hit
  serial, candidate-set reduction ``R``, cost reduction ``C``) are maintained
  in place by O(1) per-hit update hooks — the same increments, applied in the
  same order, as the Statistics Manager applies to its triplet store, so the
  maintained values are bit-identical to a fresh snapshot;
* for *recency* policies (``age_normalized = False``, i.e. LRU), utilities
  change only on hits, so victims come from a classic lazy min-heap:
  every add/hit pushes a re-keyed item, stale items are discarded on pop,
  and selection costs O((k + stale) log n);
* for *age-normalized* policies (POP/PIN/PINC/HD) every utility decays as
  the current serial advances, so no stored key survives to decision time —
  selection re-evaluates the maintained entries at the decision serial with
  a bounded-k heap (``heapq.nsmallest``), which is O(n + k log n) float
  arithmetic over in-memory state and touches neither the statistics store
  nor the storage backend.

Victim selection is pinned (unit tests and the maintenance benchmark) to be
identical to the full-snapshot reference oracle
(:meth:`~repro.core.policies.replacement.ReplacementPolicy.select_victims`):
same utility formulas, same ``(utility, serial)`` total order, and — for HD —
the same delegate choice over the same population in the same iteration
order, because the heap's entry order mirrors the cache store's insertion
order mutation for mutation.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from ...analysis.runtime import make_rlock
from ...exceptions import CacheError
from ..statistics import CachedQueryStats
from .replacement import HybridPolicy, ReplacementPolicy

__all__ = ["SelectionOutcome", "UtilityHeap"]


class SelectionOutcome:
    """One victim selection: the victims plus the policy rationale.

    Attributes
    ----------
    victims:
        Serials of the selected victims, lowest utility first.
    policy:
        Name of the configured policy.
    delegate:
        Name of the delegate HD resolved to (``None`` for non-hybrid
        policies).
    victim_utilities:
        ``(serial, utility)`` pairs for the victims, in eviction order —
        the per-victim rationale recorded in the maintenance plan.
    """

    __slots__ = ("victims", "policy", "delegate", "victim_utilities")

    def __init__(
        self,
        victims: Tuple[int, ...],
        policy: str,
        delegate: Optional[str],
        victim_utilities: Tuple[Tuple[int, float], ...],
    ) -> None:
        self.victims = victims
        self.policy = policy
        self.delegate = delegate
        self.victim_utilities = victim_utilities


class UtilityHeap:
    """Incrementally maintained utility state for one replacement policy.

    The heap tracks exactly the entries currently *cached* (window entries
    are not eviction candidates).  Mutations mirror the cache store:
    :meth:`add` on admission, :meth:`remove` on eviction, :meth:`rebuild` on
    restore — so the entry iteration order always matches the store's
    insertion order, which HD's population-level delegate choice depends on.
    """

    def __init__(self, policy: ReplacementPolicy) -> None:
        self._policy = policy
        self._stats: Dict[int, CachedQueryStats] = {}
        # Lazy min-heap of (key, serial, stamp) for recency policies.  A
        # global monotone stamp marks the newest item per serial; anything
        # older is discarded on pop (lazy deletion).
        self._heap: List[Tuple[Tuple[float, int], int, int]] = []
        self._stamps: Dict[int, int] = {}
        self._counter = 0
        # Background scheduling runs victim selection (decide) on a worker
        # thread while the commit path keeps feeding per-hit updates; every
        # public method holds this lock so the heap's state and the lazy
        # heap array are never read and mutated concurrently.
        self._lock = make_rlock("heap")

    # ------------------------------------------------------------------ #
    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy this heap scores for."""
        return self._policy

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def __contains__(self, serial: int) -> bool:
        with self._lock:
            return serial in self._stats

    def entries(self) -> List[CachedQueryStats]:
        """The maintained statistics, in cache-store insertion order."""
        with self._lock:
            return list(self._stats.values())

    def stats(self, serial: int) -> CachedQueryStats:
        """The maintained statistics of one cached entry."""
        with self._lock:
            return self._stats[serial]

    # ------------------------------------------------------------------ #
    def _push(self, serial: int) -> None:
        """(Re-)key one entry in the lazy heap (recency policies only)."""
        if self._policy.age_normalized:
            return
        self._counter += 1
        self._stamps[serial] = self._counter
        utility = self._policy.utility(self._stats[serial], 0)
        heapq.heappush(self._heap, ((utility, serial), serial, self._counter))

    def add(self, stats: CachedQueryStats) -> None:
        """Start tracking a newly admitted entry (O(log n))."""
        with self._lock:
            if stats.serial in self._stats:
                raise CacheError(f"query {stats.serial} is already scored")
            self._stats[stats.serial] = stats
            self._push(stats.serial)

    def remove(self, serial: int) -> None:
        """Stop tracking an evicted entry (lazy: heap items expire on pop)."""
        with self._lock:
            self._stats.pop(serial, None)
            self._stamps.pop(serial, None)

    def rebuild(self, snapshots: Iterable[CachedQueryStats]) -> None:
        """Reset the tracked population (cache restore / warm start)."""
        with self._lock:
            self._stats = {}
            self._heap = []
            self._stamps = {}
            for stats in snapshots:
                self.add(stats)

    def record_hit(
        self,
        serial: int,
        benefiting_serial: int,
        cs_reduction: float,
        cost_reduction: float,
        special: bool = False,
    ) -> None:
        """Per-hit update hook: O(1) field updates plus one lazy re-key.

        Mirrors :meth:`~repro.core.statistics.StatisticsManager.record_hit`
        increment for increment, so the maintained values never drift from
        the statistics store.
        """
        with self._lock:
            stats = self._stats.get(serial)
            if stats is None:
                return
            stats.hits += 1
            if special:
                stats.special_hits += 1
            stats.last_hit_serial = benefiting_serial
            if cs_reduction:
                stats.cs_reduction += cs_reduction
            if cost_reduction:
                stats.cost_reduction += cost_reduction
            self._push(serial)

    # ------------------------------------------------------------------ #
    def select_victims(self, evict_count: int, current_serial: int) -> SelectionOutcome:
        """Pick the ``evict_count`` lowest-utility entries at ``current_serial``.

        Identical victims to the reference oracle
        (``policy.select_victims`` over fresh snapshots), selected without
        touching the statistics store.
        """
        with self._lock:
            if evict_count < 0:
                raise CacheError("evict_count must be non-negative")
            if evict_count > len(self._stats):
                raise CacheError(
                    f"cannot evict {evict_count} entries from a cache of {len(self._stats)}"
                )
            delegate: Optional[ReplacementPolicy] = None
            scorer = self._policy
            if isinstance(self._policy, HybridPolicy):
                # Same population, same order as the oracle's snapshot list.
                delegate = self._policy.choose(self.entries())
                scorer = delegate
            if evict_count == 0:
                victims: List[Tuple[int, float]] = []
            elif scorer.age_normalized:
                ranked = heapq.nsmallest(
                    evict_count,
                    self._stats.values(),
                    key=lambda stats: (
                        scorer.utility(stats, current_serial),
                        stats.serial,
                    ),
                )
                victims = [
                    (stats.serial, scorer.utility(stats, current_serial))
                    for stats in ranked
                ]
            else:
                victims = self._pop_lazy(evict_count)
            return SelectionOutcome(
                victims=tuple(serial for serial, _ in victims),
                policy=self._policy.name,
                delegate=None if delegate is None else delegate.name,
                victim_utilities=tuple(victims),
            )

    def _pop_lazy(self, evict_count: int) -> List[Tuple[int, float]]:
        """Lazy-heap selection for recency policies (keys never decay).

        Stale items (superseded by a hit re-key, or belonging to an entry
        that was evicted) are discarded permanently; live items popped as
        victims are pushed back so that a pure *decide* (without an apply)
        leaves the heap intact.
        """
        victims: List[Tuple[int, float]] = []
        live: List[Tuple[Tuple[float, int], int, int]] = []
        while len(victims) < evict_count:
            key, serial, stamp = heapq.heappop(self._heap)
            if self._stamps.get(serial) != stamp:
                continue  # superseded or removed: drop for good
            victims.append((serial, key[0]))
            live.append((key, serial, stamp))
        for item in live:
            heapq.heappush(self._heap, item)
        return victims
