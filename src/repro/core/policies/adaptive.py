"""Adaptive admission control: greedy threshold tuning (§6.2, "dynamic approaches").

Besides the quantile-calibrated threshold, the paper mentions experimenting
with "more dynamic approaches (e.g., greedily adapting the threshold using an
exponential back-off approach until the achieved time speedup reaches a local
maximum)".  This module implements that extension.

The adaptive controller starts from the calibrated threshold and, after every
completed window, compares the cache's recent per-query time saving against
the previous window's.  While the saving keeps improving it keeps moving the
threshold in the same direction (multiplying the step); when the saving drops
it reverses direction and halves the step — a 1-D hill climb on the
expensiveness threshold.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..stores import WindowEntry
from .admission import AdmissionController

__all__ = ["AdaptiveAdmissionController"]


class AdaptiveAdmissionController(AdmissionController):
    """Admission controller that keeps tuning its threshold after calibration.

    Parameters
    ----------
    enabled, expensive_fraction, calibration_windows, threshold:
        As in :class:`AdmissionController`.
    step_factor:
        Multiplicative step applied to the threshold on every adjustment.
    min_threshold:
        Lower bound; the threshold never adapts below this value.
    """

    kind = "adaptive"

    def __init__(
        self,
        enabled: bool = True,
        expensive_fraction: float = 0.25,
        calibration_windows: int = 2,
        threshold: Optional[float] = None,
        step_factor: float = 1.5,
        min_threshold: float = 0.0,
    ) -> None:
        super().__init__(
            enabled=enabled,
            expensive_fraction=expensive_fraction,
            calibration_windows=calibration_windows,
            threshold=threshold,
        )
        if step_factor <= 1.0:
            raise ValueError("step_factor must be greater than 1")
        self._step_factor = step_factor
        self._min_threshold = min_threshold
        self._direction = 1.0  # +1 = raise the threshold, -1 = lower it
        self._previous_saving: Optional[float] = None
        self._history: List[float] = []

    # ------------------------------------------------------------------ #
    @property
    def threshold_history(self) -> List[float]:
        """Threshold values after each adaptation step (newest last)."""
        return list(self._history)

    def record_window_saving(self, saving_per_query_s: float) -> None:
        """Feed the average per-query time saving observed in the last window.

        The maintenance engine calls this after every cache-update round with
        the window's average *estimated sub-iso cost alleviated* per query
        (deterministic, accumulated from the per-hit hooks); external
        monitoring loops may instead feed measured *plain method time −
        cached time*.  Either way the controller uses consecutive
        observations to hill-climb its threshold.
        """
        if not self.enabled or not self.calibrated:
            return
        if self._previous_saving is not None:
            if saving_per_query_s < self._previous_saving:
                # The last move hurt: reverse and shrink the step.
                self._direction = -self._direction
                self._step_factor = max(1.05, 1.0 + (self._step_factor - 1.0) / 2.0)
        self._previous_saving = saving_per_query_s
        self._adjust_threshold()

    def _adjust_threshold(self) -> None:
        current = self.threshold or 0.0
        if current <= 0.0:
            # Bootstrapping from a disabled threshold: use the smallest
            # positive value so multiplicative steps have something to act on.
            current = 1.0
        factor = self._step_factor if self._direction > 0 else 1.0 / self._step_factor
        updated = max(self._min_threshold, current * factor)
        self._threshold = updated
        self._history.append(updated)

    # ------------------------------------------------------------------ #
    def observe_window(self, entries: Sequence[WindowEntry]) -> None:
        """Calibrate as the base class does, then seed the adaptation history."""
        was_calibrated = self.calibrated
        super().observe_window(entries)
        if not was_calibrated and self.calibrated and self.threshold is not None:
            self._history.append(self.threshold)

    # ------------------------------------------------------------------ #
    # Persistable state (snapshot format v3).
    # ------------------------------------------------------------------ #
    def state_record(self) -> Dict[str, Any]:
        """Base record plus the hill-climb state (direction, step, history)."""
        record = super().state_record()
        record.update(
            {
                "step_factor": self._step_factor,
                "min_threshold": self._min_threshold,
                "direction": self._direction,
                "previous_saving": self._previous_saving,
                "history": list(self._history),
            }
        )
        return record

    def restore_state(self, record: Dict[str, Any]) -> None:
        super().restore_state(record)
        self._step_factor = float(record.get("step_factor", self._step_factor))
        self._direction = float(record.get("direction", 1.0))
        previous = record.get("previous_saving")
        self._previous_saving = None if previous is None else float(previous)
        self._history = [float(v) for v in record.get("history", ())]

    @classmethod
    def from_state_record(cls, record: Dict[str, Any]) -> "AdaptiveAdmissionController":
        controller = cls(
            enabled=bool(record.get("enabled", True)),
            expensive_fraction=float(record.get("expensive_fraction", 0.25)),
            calibration_windows=int(record.get("calibration_windows", 2)),
            threshold=record.get("explicit_threshold"),
            step_factor=float(record.get("step_factor", 1.5)),
            min_threshold=float(record.get("min_threshold", 0.0)),
        )
        controller.restore_state(record)
        return controller
