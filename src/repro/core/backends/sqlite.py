"""Write-through SQLite storage backend (larger-than-RAM stores).

Entries are encoded through the owning store's codec into JSON records and
written to a SQLite table immediately (autocommit — the database is the
store, not a periodic snapshot of it).  Reads decode on demand, so only the
entries the cache logic actually touches are materialised in RAM: answer
sets load lazily with their entry instead of living resident for the whole
cache, which is what lets a cache grow past one process's memory.

Insertion order is preserved through an explicit monotone position column
(``INSERT OR REPLACE`` would recycle rowids), giving the backend the same
observable iteration order as a Python ``dict`` — a requirement for
backend-neutral replacement decisions and work counters.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...analysis.runtime import make_rlock
from .base import EntryCodec, StorageBackend

__all__ = ["SQLiteBackend"]


class SQLiteBackend(StorageBackend):
    """Keyed record store over a SQLite table.

    Parameters
    ----------
    codec:
        Encodes entries to JSON-compatible dictionaries and back.
    path:
        Database file.  ``None`` uses a private in-memory database: no
        durability, but the same lazy-loading behaviour and contract.
    table:
        Table name, so several stores (cache entries, window entries, one
        pair per shard) can share a single database file.
    """

    name = "sqlite"

    def __init__(
        self,
        codec: EntryCodec,
        path: Optional[str] = None,
        table: str = "entries",
    ) -> None:
        if not table.replace("_", "").isalnum():
            raise ValueError(f"invalid table name {table!r}")
        super().__init__()
        self._codec = codec
        self._table = table
        # One connection per backend; sqlite3 objects are confined behind a
        # lock because the stores are shared across pipeline threads.
        self._connection = sqlite3.connect(
            path if path is not None else ":memory:",
            check_same_thread=False,
            isolation_level=None,  # autocommit: every mutation is written through
        )
        self._lock = make_rlock("backend")
        with self._lock:
            self._connection.execute(
                f"CREATE TABLE IF NOT EXISTS {table} ("
                " pos INTEGER PRIMARY KEY AUTOINCREMENT,"
                " serial INTEGER NOT NULL UNIQUE,"
                " record TEXT NOT NULL)"
            )

    # ------------------------------------------------------------------ #
    def put(self, serial: int, entry: Any) -> None:
        record = json.dumps(self._codec.encode(entry))
        with self._lock:
            updated = self._connection.execute(
                f"UPDATE {self._table} SET record = ? WHERE serial = ?",
                (record, serial),
            )
            if updated.rowcount == 0:
                self._connection.execute(
                    f"INSERT INTO {self._table} (serial, record) VALUES (?, ?)",
                    (serial, record),
                )
            self.op_counts.rows_inserted += 1

    def get(self, serial: int) -> Any:
        with self._lock:
            row = self._connection.execute(
                f"SELECT record FROM {self._table} WHERE serial = ?", (serial,)
            ).fetchone()
        if row is None:
            return None
        return self._codec.decode(json.loads(row[0]))

    def delete(self, serial: int) -> bool:
        with self._lock:
            cursor = self._connection.execute(
                f"DELETE FROM {self._table} WHERE serial = ?", (serial,)
            )
            existed = cursor.rowcount > 0
            if existed:
                self.op_counts.rows_deleted += 1
            return existed

    def contains(self, serial: int) -> bool:
        with self._lock:
            row = self._connection.execute(
                f"SELECT 1 FROM {self._table} WHERE serial = ?", (serial,)
            ).fetchone()
        return row is not None

    # ------------------------------------------------------------------ #
    def serials(self) -> List[int]:
        with self._lock:
            rows = self._connection.execute(
                f"SELECT serial FROM {self._table} ORDER BY pos"
            ).fetchall()
        return [row[0] for row in rows]

    def entries(self) -> List[Any]:
        with self._lock:
            rows = self._connection.execute(
                f"SELECT record FROM {self._table} ORDER BY pos"
            ).fetchall()
        return [self._codec.decode(json.loads(row[0])) for row in rows]

    def count(self) -> int:
        with self._lock:
            row = self._connection.execute(
                f"SELECT COUNT(*) FROM {self._table}"
            ).fetchone()
        return int(row[0])

    def replace_all(self, items: Iterable[Tuple[int, Any]]) -> None:
        encoded = [
            (serial, json.dumps(self._codec.encode(entry))) for serial, entry in items
        ]
        with self._lock:
            old_count = self.count()
            self._connection.execute("BEGIN")
            try:
                self._connection.execute(f"DELETE FROM {self._table}")
                # Reset the order column so iteration follows the new sequence.
                self._connection.execute(
                    "DELETE FROM sqlite_sequence WHERE name = ?", (self._table,)
                )
                self._connection.executemany(
                    f"INSERT INTO {self._table} (serial, record) VALUES (?, ?)",
                    encoded,
                )
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")
            self.op_counts.bulk_rewrites += 1
            self.op_counts.rows_deleted += old_count
            self.op_counts.rows_inserted += len(encoded)

    def clear(self) -> None:
        self.replace_all(())

    def apply_delta(
        self, add: Iterable[Tuple[int, Any]], remove: Iterable[int]
    ) -> None:
        """Row-level DELETE/INSERT in one transaction (no full rewrite).

        Surviving rows keep their ``pos`` (iteration position); inserted
        rows take fresh autoincrement positions at the end — the same
        observable order a full ``replace_all`` would have produced, at
        O(delta) row cost instead of O(store).
        """
        removals = [(serial,) for serial in remove]
        encoded = [
            (serial, json.dumps(self._codec.encode(entry))) for serial, entry in add
        ]
        with self._lock:
            self._connection.execute("BEGIN")
            try:
                self._connection.executemany(
                    f"DELETE FROM {self._table} WHERE serial = ?", removals
                )
                self._connection.executemany(
                    f"INSERT INTO {self._table} (serial, record) VALUES (?, ?)",
                    encoded,
                )
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")
            self.op_counts.rows_deleted += len(removals)
            self.op_counts.rows_inserted += len(encoded)

    # ------------------------------------------------------------------ #
    def dump_records(self) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._connection.execute(
                f"SELECT record FROM {self._table} ORDER BY pos"
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def close(self) -> None:
        with self._lock:
            self._connection.close()
