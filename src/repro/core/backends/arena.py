"""Append-only packed-graph arena segments with atomic publish-on-seal.

A :class:`GraphArena` is the storage substrate of the mmap backend: packed
graph records (:meth:`~repro.graphs.packed.PackedGraph.to_bytes`) are
appended to a write-once byte segment and addressed by ``(offset, length)``
extents.  The lifecycle has two phases:

* **open** — appends go to an in-RAM tail buffer; reads are zero-copy numpy
  views over that buffer.  Deleting an entry only marks its extent dead
  (:meth:`free`); the bytes stay until the next seal.
* **sealed** — :meth:`seal` compacts the live extents into a single segment
  file (fixed header, packed records, trailing JSON offset table) written to
  a temp file and published atomically with ``os.replace``, then re-opens it
  as a read-only ``np.memmap``.  Any process may :meth:`attach` the sealed
  file and share the pages; appends after sealing land in a fresh
  process-local tail, so read-only workers keep serving full pipelines
  (their admissions stay private) while the sealed prefix is shared.
* **delta-sealed** — :meth:`seal_delta` publishes just the open tail as an
  additional ``<segment>.deltaN`` file instead of rewriting the whole arena.
  Offsets do not move (the tail already starts where the sealed region
  ends), so no remap is needed and long-lived serving pools absorb new
  admissions without a stop-the-world rewrite; the next full :meth:`seal`
  folds every delta back into one compacted base segment.

Offsets are payload-relative and stable within a phase; full sealing
compacts dead extents away and returns an old→new offset remap for the
owner's offset table.  :meth:`view_at` memoises one
:class:`~repro.graphs.packed.PackedGraphView` per live offset — the arena
address keys the memo, so matcher plan caches keyed on the (hash-cached)
view keep hitting across requests.  The arena itself is deliberately
lock-free: the owning :class:`~repro.core.backends.mmapped.MmapBackend`
serialises access under its ``backend`` lock, exactly like the dict inside
the in-memory backend.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from ...exceptions import CacheError
from ...graphs.packed import PackedGraph, PackedGraphView

__all__ = ["ArenaExtent", "GraphArena"]

PathLike = Union[str, "os.PathLike[str]"]

#: Segment-file header: 8-byte magic + four little-endian int64 fields
#: (version, payload length, table offset, table length).
_MAGIC = b"GCARENA1"
_HEADER_BYTES = 8 + 4 * 8
_VERSION = 1


class ArenaExtent(NamedTuple):
    """Address of one packed record inside an arena (payload-relative)."""

    offset: int
    length: int


class _Segment(NamedTuple):
    """One sealed, mmapped region of the arena's payload address space."""

    start: int  # payload-relative offset of the segment's first byte
    length: int  # payload bytes in this segment
    buffer: np.memmap
    path: Path


class GraphArena:
    """One append-only packed-graph segment (see module docstring)."""

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._path: Optional[Path] = Path(path) if path is not None else None
        # Sealed regions, in address order: segment 0 is the base file, the
        # rest are delta files published by seal_delta().
        self._segments: List[_Segment] = []
        self._sealed_end = 0  # payload bytes served by the sealed mmaps
        # Tail records are kept as one immutable bytes object per append:
        # zero-copy views stay valid forever and never block later appends
        # (a shared bytearray would raise BufferError on resize while any
        # numpy view over it is alive).
        self._tail: Dict[int, bytes] = {}
        self._tail_end = 0  # payload-relative offset of the next append
        self._live_bytes = 0
        self._dead_bytes = 0
        self._extents: Dict[int, ArenaExtent] = {}
        # One PackedGraphView per live offset (see view_at).
        self._views: Dict[int, PackedGraphView] = {}

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Optional[Path]:
        """Segment file this arena seals to / was attached from."""
        return self._path

    @property
    def sealed(self) -> bool:
        """Whether a sealed segment file backs the arena's base region."""
        return bool(self._segments)

    @property
    def delta_count(self) -> int:
        """Delta segments published since the last full seal (or attach)."""
        return max(0, len(self._segments) - 1)

    @property
    def total_bytes(self) -> int:
        """Bytes addressable through the arena (sealed segments + tail)."""
        return self._tail_end if self._tail else self._sealed_end

    @property
    def live_bytes(self) -> int:
        """Bytes referenced by live extents."""
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes of freed extents awaiting reclamation by the next seal."""
        return self._dead_bytes

    # ------------------------------------------------------------------ #
    # Appending / freeing
    # ------------------------------------------------------------------ #
    def append(self, payload: bytes) -> ArenaExtent:
        """Append one packed record; returns its extent."""
        if len(payload) % 8:
            raise CacheError("arena records must be 8-byte aligned")
        offset = max(self._tail_end, self._sealed_end)
        payload = bytes(payload)
        self._tail[offset] = payload
        self._tail_end = offset + len(payload)
        extent = ArenaExtent(offset, len(payload))
        self._extents[offset] = extent
        self._live_bytes += len(payload)
        return extent

    def append_graph(self, graph) -> ArenaExtent:
        """Pack ``graph`` (a :class:`~repro.graphs.graph.Graph`) and append it."""
        return self.append(graph.to_packed().to_bytes())

    def free(self, extent: ArenaExtent) -> None:
        """Mark an extent dead.

        Tail records are dropped immediately (their chunk is private);
        sealed-region extents only stop being counted live — the bytes stay
        in the segment file until the next :meth:`seal` compacts them away.
        """
        self._live_bytes -= extent.length
        self._extents.pop(extent.offset, None)
        self._views.pop(extent.offset, None)
        if self._tail.pop(extent.offset, None) is None:
            self._dead_bytes += extent.length

    # ------------------------------------------------------------------ #
    # Zero-copy reads
    # ------------------------------------------------------------------ #
    def _sealed_location(self, extent: ArenaExtent):
        """Resolve a sealed extent to ``(segment buffer, byte offset)``."""
        offset, length = extent
        for segment in reversed(self._segments):
            if offset >= segment.start:
                if offset + length > segment.start + segment.length:
                    raise CacheError(
                        f"arena extent {extent} crosses a segment boundary"
                    )
                return segment.buffer, _HEADER_BYTES + (offset - segment.start)
        raise CacheError(f"arena extent {extent} is not in any sealed segment")

    def packed_at(self, extent: ArenaExtent) -> PackedGraph:
        """Open the record at ``extent`` as a zero-copy :class:`PackedGraph`."""
        offset, length = extent
        if offset < self._sealed_end:
            buffer, start = self._sealed_location(extent)
            return PackedGraph.from_buffer(buffer, start)
        chunk = self._tail.get(offset)
        if chunk is None or len(chunk) != length:
            raise CacheError(f"arena extent {extent} is not a live tail record")
        return PackedGraph.from_buffer(chunk, 0)

    def graph_at(self, extent: ArenaExtent):
        """Decode the record at ``extent`` straight into a ``Graph``.

        Uses :meth:`PackedGraph.decode_graph`, the struct-unpacking fast
        path, instead of materialising intermediate numpy views first.
        """
        offset, length = extent
        if offset < self._sealed_end:
            buffer, start = self._sealed_location(extent)
            return PackedGraph.decode_graph(buffer, start)
        chunk = self._tail.get(offset)
        if chunk is None or len(chunk) != length:
            raise CacheError(f"arena extent {extent} is not a live tail record")
        return PackedGraph.decode_graph(chunk, 0)

    def view_at(self, extent: ArenaExtent) -> PackedGraphView:
        """The memoised CSR-native match view of the record at ``extent``.

        One :class:`PackedGraphView` per live offset: repeat requests get
        the *same* object back, so lazily-derived state (bitmask core,
        cached hash — and with it downstream matcher plan-cache entries
        keyed on the view) survives across requests.  The memo is dropped
        per-offset by :meth:`free` and wholesale by a full :meth:`seal`
        (offsets move); :meth:`seal_delta` keeps it (offsets don't).
        """
        view = self._views.get(extent.offset)
        if view is None:
            view = PackedGraphView(self.packed_at(extent))
            self._views[extent.offset] = view
        return view

    def bytes_at(self, extent: ArenaExtent) -> bytes:
        """Copy out the raw record bytes at ``extent`` (seal/compact path)."""
        offset, length = extent
        if offset < self._sealed_end:
            buffer, start = self._sealed_location(extent)
            return bytes(memoryview(buffer)[start : start + length])
        chunk = self._tail.get(offset)
        if chunk is None or len(chunk) != length:
            raise CacheError(f"arena extent {extent} is not a live tail record")
        return chunk

    # ------------------------------------------------------------------ #
    # Seal / attach lifecycle
    # ------------------------------------------------------------------ #
    def seal(
        self,
        live: Sequence[ArenaExtent],
        path: Optional[PathLike] = None,
    ) -> Dict[int, int]:
        """Compact ``live`` extents into the segment file and publish it.

        The records are rewritten densely in the given order; dead extents
        are reclaimed and every delta segment is folded into the new base
        file (the delta files are deleted).  The file is written to a temp
        file in the target directory and moved into place with
        ``os.replace``, so readers only ever observe a complete segment.
        Afterwards the arena serves the sealed file through a read-only
        ``np.memmap`` and starts an empty tail.  Returns the ``old offset ->
        new offset`` remap.
        """
        target = Path(path) if path is not None else self._path
        if target is None:
            raise CacheError("cannot seal an arena without a segment path")
        records: List[Tuple[ArenaExtent, bytes]] = [
            (extent, self.bytes_at(extent)) for extent in live
        ]
        remap: Dict[int, int] = {}
        position = 0
        for extent, payload in records:
            remap[extent.offset] = position
            position += len(payload)
        table = {
            "version": _VERSION,
            "graphs": [
                [remap[extent.offset], extent.length] for extent, _ in records
            ],
        }
        stale_deltas = [segment.path for segment in self._segments[1:]]
        self._write_segment_file(target, records, table)
        self._path = target
        self._install_segments(
            [self._open_segment(target, 0, position)]
        )
        for stale in stale_deltas + self._existing_delta_paths(target):
            if stale.exists():
                stale.unlink()
        self._tail = {}
        self._tail_end = 0
        self._extents = {
            remap[extent.offset]: ArenaExtent(remap[extent.offset], extent.length)
            for extent, _ in records
        }
        self._live_bytes = position
        self._dead_bytes = 0
        return remap

    def seal_delta(self) -> int:
        """Publish the open tail as one additional delta segment file.

        The tail region ``[sealed_end, tail_end)`` is written verbatim to
        ``<segment>.deltaN`` — holes left by records freed while still in
        the tail are zero-filled and counted dead — so **offsets do not
        move**: no remap, the offset table stays valid, and memoised views
        (:meth:`view_at`) survive.  Returns the number of records published
        (0 when the tail is empty, making re-seal ticks free).
        """
        if self._path is None:
            raise CacheError("cannot seal an arena without a segment path")
        if not self._segments:
            raise CacheError("seal_delta requires a sealed base segment; seal() first")
        if not self._tail:
            return 0
        start = self._sealed_end
        end = self._tail_end
        payload = bytearray(end - start)
        live: List[ArenaExtent] = []
        for offset, chunk in sorted(self._tail.items()):
            payload[offset - start : offset - start + len(chunk)] = chunk
            live.append(self._extents[offset])
        gap_bytes = len(payload) - sum(len(chunk) for chunk in self._tail.values())
        index = len(self._segments)  # base is segment 0, deltas are 1..N
        target = self._delta_path(self._path, index)
        table = {
            "version": _VERSION,
            "start": start,
            "graphs": [[extent.offset - start, extent.length] for extent in live],
        }
        self._write_segment_file(target, [(None, bytes(payload))], table)
        self._segments.append(self._open_segment(target, start, len(payload)))
        self._sealed_end = end
        self._tail = {}
        self._tail_end = 0
        self._dead_bytes += gap_bytes
        return len(live)

    @classmethod
    def attach(cls, path: PathLike) -> "GraphArena":
        """Open a sealed segment file read-only (shared pages across processes).

        Delta files published by :meth:`seal_delta` are discovered and
        mapped in order after the base segment, so an attaching worker sees
        exactly the records the owner had sealed (base + every delta).
        """
        arena = cls(path)
        base = Path(path)
        payload_length, table = cls._read_segment_table(base)
        segments = [arena._open_segment(base, 0, payload_length)]
        extents = {
            int(o): ArenaExtent(int(o), int(n)) for o, n in table["graphs"]
        }
        position = payload_length
        for delta in cls._existing_delta_paths(base):
            delta_length, delta_table = cls._read_segment_table(delta)
            start = int(delta_table["start"])
            if start != position:
                raise CacheError(
                    f"{delta}: delta segment starts at {start}, expected {position}"
                )
            segments.append(arena._open_segment(delta, start, delta_length))
            for o, n in delta_table["graphs"]:
                offset = start + int(o)
                extents[offset] = ArenaExtent(offset, int(n))
            position = start + delta_length
        arena._install_segments(segments)
        arena._extents = extents
        arena._live_bytes = sum(
            extent.length for extent in arena._extents.values()
        )
        arena._dead_bytes = position - arena._live_bytes
        return arena

    def extents(self) -> List[ArenaExtent]:
        """Extents of every live record, in append order (the offset table)."""
        return list(self._extents.values())

    def segment_stats(self) -> List[Dict[str, object]]:
        """Per-segment occupancy: name, kind, total/live/dead bytes.

        The observable that makes re-seal pressure visible from the CLI —
        dead bytes in the base/delta files are only reclaimed by the next
        full :meth:`seal`.
        """
        stats: List[Dict[str, object]] = []
        for position, segment in enumerate(self._segments):
            live = sum(
                extent.length
                for extent in self._extents.values()
                if segment.start <= extent.offset < segment.start + segment.length
            )
            stats.append(
                {
                    "segment": segment.path.name,
                    "kind": "base" if position == 0 else "delta",
                    "bytes": segment.length,
                    "live_bytes": live,
                    "dead_bytes": segment.length - live,
                }
            )
        if self._tail:
            tail_bytes = sum(len(chunk) for chunk in self._tail.values())
            stats.append(
                {
                    "segment": "<tail>",
                    "kind": "tail",
                    "bytes": tail_bytes,
                    "live_bytes": tail_bytes,
                    "dead_bytes": 0,
                }
            )
        return stats

    # ------------------------------------------------------------------ #
    # Segment-file plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _delta_path(base: Path, index: int) -> Path:
        return base.with_name(f"{base.name}.delta{index}")

    @classmethod
    def _existing_delta_paths(cls, base: Path) -> List[Path]:
        """Delta files for ``base`` that exist on disk, in publish order."""
        paths: List[Path] = []
        index = 1
        while True:
            candidate = cls._delta_path(base, index)
            if not candidate.exists():
                return paths
            paths.append(candidate)
            index += 1

    @staticmethod
    def _write_segment_file(target, records, table) -> None:
        """Write header + record payloads + JSON table atomically to ``target``."""
        position = sum(len(payload) for _, payload in records)
        table_blob = json.dumps(table).encode("utf-8")
        header = _MAGIC + np.array(
            [_VERSION, position, _HEADER_BYTES + position, len(table_blob)],
            dtype="<i8",
        ).tobytes()
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(header)
                for _, payload in records:
                    stream.write(payload)
                stream.write(table_blob)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    @staticmethod
    def _read_segment_table(path: Path):
        """Validate ``path``'s header and return ``(payload_length, table)``."""
        raw = path.read_bytes()[:_HEADER_BYTES]
        if len(raw) < _HEADER_BYTES or raw[:8] != _MAGIC:
            raise CacheError(f"{path}: not a graph-arena segment file")
        version, payload_length, table_offset, table_length = np.frombuffer(
            raw, dtype="<i8", count=4, offset=8
        ).tolist()
        if version != _VERSION:
            raise CacheError(f"{path}: unsupported arena version {version}")
        with open(path, "rb") as stream:
            stream.seek(int(table_offset))
            table = json.loads(stream.read(int(table_length)).decode("utf-8"))
        return int(payload_length), table

    @staticmethod
    def _open_segment(path: Path, start: int, payload_length: int) -> _Segment:
        buffer = np.memmap(path, dtype=np.uint8, mode="r")
        return _Segment(start, payload_length, buffer, path)

    def _install_segments(self, segments: List[_Segment]) -> None:
        self._segments = segments
        self._sealed_end = (
            segments[-1].start + segments[-1].length if segments else 0
        )
        self._views.clear()

    def close(self) -> None:
        """Release the mmaps (the tail buffer stays usable)."""
        if self._segments:
            # np.memmap has no public close; dropping the references unmaps.
            self._segments = []
            self._sealed_end = 0
            self._views.clear()

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "open"
        return (
            f"<GraphArena {state} path={str(self._path) if self._path else None!r} "
            f"live={self._live_bytes}B dead={self._dead_bytes}B>"
        )
