"""Append-only packed-graph arena segments with atomic publish-on-seal.

A :class:`GraphArena` is the storage substrate of the mmap backend: packed
graph records (:meth:`~repro.graphs.packed.PackedGraph.to_bytes`) are
appended to a write-once byte segment and addressed by ``(offset, length)``
extents.  The lifecycle has two phases:

* **open** — appends go to an in-RAM tail buffer; reads are zero-copy numpy
  views over that buffer.  Deleting an entry only marks its extent dead
  (:meth:`free`); the bytes stay until the next seal.
* **sealed** — :meth:`seal` compacts the live extents into a single segment
  file (fixed header, packed records, trailing JSON offset table) written to
  a temp file and published atomically with ``os.replace``, then re-opens it
  as a read-only ``np.memmap``.  Any process may :meth:`attach` the sealed
  file and share the pages; appends after sealing land in a fresh
  process-local tail, so read-only workers keep serving full pipelines
  (their admissions stay private) while the sealed prefix is shared.

Offsets are payload-relative and stable within a phase; sealing compacts
dead extents away and returns an old→new offset remap for the owner's
offset table.  The arena itself is deliberately lock-free: the owning
:class:`~repro.core.backends.mmapped.MmapBackend` serialises access under
its ``backend`` lock, exactly like the dict inside the in-memory backend.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from ...exceptions import CacheError
from ...graphs.packed import PackedGraph

__all__ = ["ArenaExtent", "GraphArena"]

PathLike = Union[str, "os.PathLike[str]"]

#: Segment-file header: 8-byte magic + four little-endian int64 fields
#: (version, payload length, table offset, table length).
_MAGIC = b"GCARENA1"
_HEADER_BYTES = 8 + 4 * 8
_VERSION = 1


class ArenaExtent(NamedTuple):
    """Address of one packed record inside an arena (payload-relative)."""

    offset: int
    length: int


class GraphArena:
    """One append-only packed-graph segment (see module docstring)."""

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._path: Optional[Path] = Path(path) if path is not None else None
        self._base: Optional[np.memmap] = None
        self._base_length = 0  # payload bytes served by the sealed mmap
        # Tail records are kept as one immutable bytes object per append:
        # zero-copy views stay valid forever and never block later appends
        # (a shared bytearray would raise BufferError on resize while any
        # numpy view over it is alive).
        self._tail: Dict[int, bytes] = {}
        self._tail_end = 0  # payload-relative offset of the next append
        self._live_bytes = 0
        self._dead_bytes = 0
        self._extents: Dict[int, ArenaExtent] = {}

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Optional[Path]:
        """Segment file this arena seals to / was attached from."""
        return self._path

    @property
    def sealed(self) -> bool:
        """Whether a sealed segment file backs the arena's base region."""
        return self._base is not None

    @property
    def total_bytes(self) -> int:
        """Bytes addressable through the arena (sealed base + tail)."""
        return self._tail_end if self._tail else self._base_length

    @property
    def live_bytes(self) -> int:
        """Bytes referenced by live extents."""
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes of freed extents awaiting reclamation by the next seal."""
        return self._dead_bytes

    # ------------------------------------------------------------------ #
    # Appending / freeing
    # ------------------------------------------------------------------ #
    def append(self, payload: bytes) -> ArenaExtent:
        """Append one packed record; returns its extent."""
        if len(payload) % 8:
            raise CacheError("arena records must be 8-byte aligned")
        offset = max(self._tail_end, self._base_length)
        payload = bytes(payload)
        self._tail[offset] = payload
        self._tail_end = offset + len(payload)
        extent = ArenaExtent(offset, len(payload))
        self._extents[offset] = extent
        self._live_bytes += len(payload)
        return extent

    def append_graph(self, graph) -> ArenaExtent:
        """Pack ``graph`` (a :class:`~repro.graphs.graph.Graph`) and append it."""
        return self.append(graph.to_packed().to_bytes())

    def free(self, extent: ArenaExtent) -> None:
        """Mark an extent dead.

        Tail records are dropped immediately (their chunk is private);
        sealed-region extents only stop being counted live — the bytes stay
        in the segment file until the next :meth:`seal` compacts them away.
        """
        self._live_bytes -= extent.length
        self._extents.pop(extent.offset, None)
        if self._tail.pop(extent.offset, None) is None:
            self._dead_bytes += extent.length

    # ------------------------------------------------------------------ #
    # Zero-copy reads
    # ------------------------------------------------------------------ #
    def packed_at(self, extent: ArenaExtent) -> PackedGraph:
        """Open the record at ``extent`` as a zero-copy :class:`PackedGraph`."""
        offset, length = extent
        if offset < self._base_length:
            if offset + length > self._base_length:
                raise CacheError(f"arena extent {extent} crosses the sealed boundary")
            return PackedGraph.from_buffer(self._base, _HEADER_BYTES + offset)
        chunk = self._tail.get(offset)
        if chunk is None or len(chunk) != length:
            raise CacheError(f"arena extent {extent} is not a live tail record")
        return PackedGraph.from_buffer(chunk, 0)

    def graph_at(self, extent: ArenaExtent):
        """Decode the record at ``extent`` straight into a ``Graph``.

        Uses :meth:`PackedGraph.decode_graph`, the struct-unpacking fast
        path, instead of materialising intermediate numpy views first.
        """
        offset, length = extent
        if offset < self._base_length:
            if offset + length > self._base_length:
                raise CacheError(f"arena extent {extent} crosses the sealed boundary")
            return PackedGraph.decode_graph(self._base, _HEADER_BYTES + offset)
        chunk = self._tail.get(offset)
        if chunk is None or len(chunk) != length:
            raise CacheError(f"arena extent {extent} is not a live tail record")
        return PackedGraph.decode_graph(chunk, 0)

    def bytes_at(self, extent: ArenaExtent) -> bytes:
        """Copy out the raw record bytes at ``extent`` (seal/compact path)."""
        offset, length = extent
        if offset < self._base_length:
            view = memoryview(self._base)
            start = _HEADER_BYTES + offset
            return bytes(view[start : start + length])
        chunk = self._tail.get(offset)
        if chunk is None or len(chunk) != length:
            raise CacheError(f"arena extent {extent} is not a live tail record")
        return chunk

    # ------------------------------------------------------------------ #
    # Seal / attach lifecycle
    # ------------------------------------------------------------------ #
    def seal(
        self,
        live: Sequence[ArenaExtent],
        path: Optional[PathLike] = None,
    ) -> Dict[int, int]:
        """Compact ``live`` extents into the segment file and publish it.

        The records are rewritten densely in the given order; dead extents
        are reclaimed.  The file is written to a temp file in the target
        directory and moved into place with ``os.replace``, so readers only
        ever observe a complete segment.  Afterwards the arena serves the
        sealed file through a read-only ``np.memmap`` and starts an empty
        tail.  Returns the ``old offset -> new offset`` remap.
        """
        target = Path(path) if path is not None else self._path
        if target is None:
            raise CacheError("cannot seal an arena without a segment path")
        records: List[Tuple[ArenaExtent, bytes]] = [
            (extent, self.bytes_at(extent)) for extent in live
        ]
        remap: Dict[int, int] = {}
        position = 0
        for extent, payload in records:
            remap[extent.offset] = position
            position += len(payload)
        table = {
            "version": _VERSION,
            "graphs": [
                [remap[extent.offset], extent.length] for extent, _ in records
            ],
        }
        table_blob = json.dumps(table).encode("utf-8")
        header = _MAGIC + np.array(
            [_VERSION, position, _HEADER_BYTES + position, len(table_blob)],
            dtype="<i8",
        ).tobytes()
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(header)
                for _, payload in records:
                    stream.write(payload)
                stream.write(table_blob)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._path = target
        self._open_base(target, position)
        self._tail = {}
        self._tail_end = 0
        self._extents = {
            remap[extent.offset]: ArenaExtent(remap[extent.offset], extent.length)
            for extent, _ in records
        }
        self._live_bytes = position
        self._dead_bytes = 0
        return remap

    @classmethod
    def attach(cls, path: PathLike) -> "GraphArena":
        """Open a sealed segment file read-only (shared pages across processes)."""
        arena = cls(path)
        raw = Path(path).read_bytes()[:_HEADER_BYTES]
        if len(raw) < _HEADER_BYTES or raw[:8] != _MAGIC:
            raise CacheError(f"{path}: not a graph-arena segment file")
        version, payload_length, table_offset, table_length = np.frombuffer(
            raw, dtype="<i8", count=4, offset=8
        ).tolist()
        if version != _VERSION:
            raise CacheError(f"{path}: unsupported arena version {version}")
        arena._open_base(Path(path), int(payload_length))
        with open(path, "rb") as stream:
            stream.seek(int(table_offset))
            table = json.loads(stream.read(int(table_length)).decode("utf-8"))
        arena._extents = {
            int(o): ArenaExtent(int(o), int(n)) for o, n in table["graphs"]
        }
        arena._live_bytes = sum(
            extent.length for extent in arena._extents.values()
        )
        return arena

    def extents(self) -> List[ArenaExtent]:
        """Extents of every live record, in append order (the offset table)."""
        return list(self._extents.values())

    def _open_base(self, path: Path, payload_length: int) -> None:
        self.close()
        self._base = np.memmap(path, dtype=np.uint8, mode="r")
        self._base_length = payload_length

    def close(self) -> None:
        """Release the mmap (the tail buffer stays usable)."""
        if self._base is not None:
            # np.memmap has no public close; dropping the reference unmaps.
            self._base = None
            self._base_length = 0

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "open"
        return (
            f"<GraphArena {state} path={str(self._path) if self._path else None!r} "
            f"live={self._live_bytes}B dead={self._dead_bytes}B>"
        )
