"""The storage-backend contract shared by every data-layer implementation.

A backend is a bounded-free (capacity policy stays in the store facade),
keyed record container with ``dict``-like observable semantics:

* entries are keyed by the query serial number (an ``int``),
* iteration yields entries in **insertion order** (``replace_all`` resets
  that order to the order of the given sequence; ``apply_delta`` preserves
  the survivors' order and appends the additions),
* mutations are atomic with respect to concurrent readers.

Backends never interpret entries; serialization — when a backend needs it —
goes through the :class:`EntryCodec` provided by the owning store, which maps
an entry object to a JSON-compatible record dictionary and back.

Every backend counts its row mutations in :attr:`StorageBackend.op_counts`
(:class:`BackendOpCounts`).  The counters are deterministic functions of the
workload, which is what lets the maintenance benchmark assert — by counting,
not timing — that a cache-update round performs O(window) row operations
instead of rewriting the whole store.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Protocol, Tuple

__all__ = ["BackendOpCounts", "EntryCodec", "StorageBackend"]


@dataclass
class BackendOpCounts:
    """Row-mutation counters of one storage backend.

    ``bulk_rewrites`` counts whole-store swaps (``replace_all``/``clear``);
    their per-row cost still lands in ``rows_inserted``/``rows_deleted``, so
    ``row_ops`` is the total number of row mutations however they happened.
    """

    rows_inserted: int = 0
    rows_deleted: int = 0
    bulk_rewrites: int = 0

    @property
    def row_ops(self) -> int:
        """Total row mutations (inserts + deletes)."""
        return self.rows_inserted + self.rows_deleted


class EntryCodec(Protocol):
    """Maps typed store entries to JSON-compatible record dictionaries."""

    def encode(self, entry: Any) -> Dict[str, Any]:
        """Serialize ``entry`` into a JSON-compatible dictionary."""
        ...  # pragma: no cover

    def decode(self, record: Dict[str, Any]) -> Any:
        """Reconstruct an entry from a dictionary produced by :meth:`encode`."""
        ...  # pragma: no cover


class StorageBackend(ABC):
    """Keyed entry container with dict-like, insertion-ordered semantics."""

    #: Registry name of the backend (``"memory"``, ``"sqlite"``, ...).
    name: str = "abstract"

    def __init__(self) -> None:
        #: Deterministic row-mutation counters (see :class:`BackendOpCounts`).
        self.op_counts = BackendOpCounts()

    # ------------------------------------------------------------------ #
    # Single-entry operations.
    # ------------------------------------------------------------------ #
    @abstractmethod
    def put(self, serial: int, entry: Any) -> None:
        """Insert or overwrite the entry stored under ``serial``."""

    @abstractmethod
    def get(self, serial: int) -> Any:
        """Return the entry stored under ``serial`` or ``None`` if absent."""

    @abstractmethod
    def delete(self, serial: int) -> bool:
        """Remove the entry under ``serial``; return whether it existed."""

    @abstractmethod
    def contains(self, serial: int) -> bool:
        """Whether an entry is stored under ``serial``."""

    # ------------------------------------------------------------------ #
    # Bulk operations.
    # ------------------------------------------------------------------ #
    @abstractmethod
    def serials(self) -> List[int]:
        """All keys, in insertion order."""

    @abstractmethod
    def entries(self) -> List[Any]:
        """All entries, in insertion order (a point-in-time snapshot)."""

    @abstractmethod
    def count(self) -> int:
        """Number of stored entries."""

    @abstractmethod
    def replace_all(self, items: Iterable[Tuple[int, Any]]) -> None:
        """Atomically swap the whole contents for ``items`` (sets the order)."""

    @abstractmethod
    def clear(self) -> None:
        """Remove every entry."""

    def apply_delta(
        self, add: Iterable[Tuple[int, Any]], remove: Iterable[int]
    ) -> None:
        """Row-level delta: delete ``remove``, then append ``add``.

        The maintenance engine's apply step — O(len(add) + len(remove))
        row mutations where ``replace_all`` costs O(store).  Survivors keep
        their iteration position; additions append in the given order (the
        same observable result a ``replace_all`` with survivors + additions
        would produce).  The default implementation composes the primitive
        ``delete``/``put`` ops; backends with cheaper bulk paths (one SQLite
        transaction) override it.
        """
        for serial in remove:
            self.delete(serial)
        for serial, entry in add:
            self.put(serial, entry)

    # ------------------------------------------------------------------ #
    # Lifecycle / persistence hooks.
    # ------------------------------------------------------------------ #
    @abstractmethod
    def dump_records(self) -> List[Dict[str, Any]]:
        """Encoded records of every entry, in insertion order (for snapshots)."""

    def close(self) -> None:
        """Release any resources held by the backend (no-op by default)."""

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.count()

    def __contains__(self, serial: int) -> bool:
        return self.contains(serial)
