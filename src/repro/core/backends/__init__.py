"""Pluggable storage backends for the Cache/Window data layer (§6.1).

The paper separates the Cache Manager's *logic* from its *data layer*
precisely so the stores can grow independently of the cache algorithms.
This package makes that separation concrete: the typed stores in
:mod:`repro.core.stores` are thin facades over a :class:`StorageBackend`,
a small keyed-record interface with two implementations:

* :class:`InMemoryBackend` — today's in-RAM dictionaries, extracted.  Zero
  serialization cost on the hot path; the store's contents live exactly as
  long as the process.  This is the default and the right choice for
  benchmark runs and any cache that fits in RAM.
* :class:`SQLiteBackend` — a write-through backend over the standard
  library's ``sqlite3``.  Every mutation is committed to the database
  immediately and entries are decoded lazily on access, so the working set
  in RAM is bounded by what the cache logic actually touches rather than by
  the full store contents — the prerequisite for larger-than-RAM caches and
  for warm restarts that do not re-parse a JSON snapshot (the
  persistent-memory-engine direction of WorldDB in PAPERS.md).
* :class:`MmapBackend` — query graphs as packed CSR records in an
  append-only :class:`~repro.core.backends.arena.GraphArena`.  ``get()``
  decodes lazily to zero-copy numpy views over the segment; once sealed the
  segment is a single read-only ``np.memmap`` that any number of processes
  can attach and share pages over — the storage substrate of the
  multi-process serving path (:mod:`repro.core.workers`).

Backends store *entries* (opaque typed objects such as
:class:`~repro.core.stores.CacheEntry`) keyed by the query's serial number
and preserve insertion order when iterating — the same observable behaviour
as a Python ``dict`` — so switching backends never changes replacement
decisions or work counters.  Serialization is delegated to an
:class:`EntryCodec` supplied by the owning store; in-memory backends skip it
entirely.

Choosing a backend is a :class:`~repro.core.config.GraphCacheConfig` concern
(``backend="memory" | "sqlite" | "mmap"``, optional ``backend_path`` for a
durable file); :func:`create_backend` is the single construction point.
"""

from __future__ import annotations

from typing import Optional

from ...exceptions import CacheError
from .arena import ArenaExtent, GraphArena
from .base import BackendOpCounts, EntryCodec, StorageBackend
from .memory import InMemoryBackend
from .mmapped import MmapBackend
from .sqlite import SQLiteBackend

__all__ = [
    "AVAILABLE_BACKENDS",
    "ArenaExtent",
    "BackendOpCounts",
    "EntryCodec",
    "GraphArena",
    "StorageBackend",
    "InMemoryBackend",
    "MmapBackend",
    "SQLiteBackend",
    "create_backend",
]

#: Registry names accepted by :func:`create_backend` and the configuration.
AVAILABLE_BACKENDS = ("memory", "sqlite", "mmap")


def create_backend(
    kind: str,
    codec: EntryCodec,
    path: Optional[str] = None,
    table: str = "entries",
    packed_views: bool = False,
) -> StorageBackend:
    """Build a storage backend by registry name.

    Parameters
    ----------
    kind:
        ``"memory"``, ``"sqlite"`` or ``"mmap"``.
    codec:
        The entry codec of the owning store (used by serializing backends).
    path:
        SQLite: database file; mmap: base path the arena segment and its
        sidecar are derived from.  ``None`` keeps the data in memory
        (useful for tests and for bounded-RAM behaviour without durability).
    table:
        Logical table name, so several stores (cache entries, window
        entries, shards) can share one database file / base path.
    packed_views:
        mmap only: serve entry queries as CSR-native
        :class:`~repro.graphs.packed.PackedGraphView` objects instead of
        decoded ``Graph`` instances (the ``packed_match`` serving mode).
        Ignored by the other backends, which store real ``Graph`` objects.
    """
    name = kind.lower()
    if name == "memory":
        return InMemoryBackend(codec)
    if name == "sqlite":
        return SQLiteBackend(codec, path=path, table=table)
    if name == "mmap":
        return MmapBackend(codec, path=path, table=table, packed_views=packed_views)
    raise CacheError(
        f"unknown storage backend {kind!r}; available: {', '.join(AVAILABLE_BACKENDS)}"
    )
