"""In-memory storage backend: the extracted dictionaries of the seed stores."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...analysis.runtime import make_rlock
from .base import EntryCodec, StorageBackend

__all__ = ["InMemoryBackend"]


class InMemoryBackend(StorageBackend):
    """Entries live in a plain dict; no serialization on any path.

    This is exactly the data structure the stores used before the backend
    abstraction existed, so it is the zero-overhead default.  The codec is
    only exercised by :meth:`dump_records` (snapshot writing).
    """

    name = "memory"

    def __init__(self, codec: Optional[EntryCodec] = None) -> None:
        super().__init__()
        self._codec = codec
        self._entries: Dict[int, Any] = {}
        # Backends may be used directly (contract tests, ad-hoc tools); the
        # store facades add their own coarser lock on top.
        self._lock = make_rlock("backend")

    # ------------------------------------------------------------------ #
    def put(self, serial: int, entry: Any) -> None:
        with self._lock:
            self._entries[serial] = entry
            self.op_counts.rows_inserted += 1

    def get(self, serial: int) -> Any:
        with self._lock:
            return self._entries.get(serial)

    def delete(self, serial: int) -> bool:
        with self._lock:
            existed = self._entries.pop(serial, None) is not None
            if existed:
                self.op_counts.rows_deleted += 1
            return existed

    def contains(self, serial: int) -> bool:
        with self._lock:
            return serial in self._entries

    # ------------------------------------------------------------------ #
    def serials(self) -> List[int]:
        with self._lock:
            return list(self._entries)

    def entries(self) -> List[Any]:
        with self._lock:
            return list(self._entries.values())

    def count(self) -> int:
        with self._lock:
            return len(self._entries)

    def replace_all(self, items: Iterable[Tuple[int, Any]]) -> None:
        replacement = {serial: entry for serial, entry in items}
        with self._lock:
            self.op_counts.bulk_rewrites += 1
            self.op_counts.rows_deleted += len(self._entries)
            self.op_counts.rows_inserted += len(replacement)
            self._entries = replacement

    def clear(self) -> None:
        with self._lock:
            self.op_counts.bulk_rewrites += 1
            self.op_counts.rows_deleted += len(self._entries)
            self._entries = {}

    def apply_delta(
        self, add: Iterable[Tuple[int, Any]], remove: Iterable[int]
    ) -> None:
        # Override the base composition to hold the lock across the whole
        # delta: a concurrent reader never observes the evictions without
        # the admissions (the same atomicity replace_all and the SQLite
        # transaction give).
        additions = list(add)
        with self._lock:
            for serial in remove:
                if self._entries.pop(serial, None) is not None:
                    self.op_counts.rows_deleted += 1
            for serial, entry in additions:
                self._entries[serial] = entry
                self.op_counts.rows_inserted += 1

    # ------------------------------------------------------------------ #
    def dump_records(self) -> List[Dict[str, Any]]:
        if self._codec is None:
            raise RuntimeError("InMemoryBackend has no codec; cannot encode records")
        with self._lock:
            entries = list(self._entries.values())
        return [self._codec.encode(entry) for entry in entries]
