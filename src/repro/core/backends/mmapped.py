"""Memory-mapped storage backend: entries as offsets into a graph arena.

:class:`MmapBackend` keeps every entry's *query graph* as a packed record in
a :class:`~repro.core.backends.arena.GraphArena` and everything else (serial,
answer set, timings) as a small typed stub in RAM.  ``get()`` decodes lazily:
the stored extent is opened as a zero-copy
:class:`~repro.graphs.packed.PackedGraph` view over the arena — a single
``np.memmap`` once sealed — and rehydrated through the CSR fast path
(:meth:`~repro.graphs.graph.Graph.from_packed`), never through the dict/text
materialising codec route the SQLite backend takes.

``apply_delta`` stays transactional through the offset table: removals and
additions mutate the ``serial -> extent`` dict under one lock hold, and the
bytes of removed entries merely become dead extents that the next
:meth:`seal` compacts away.  Sealing writes the segment file atomically
(tempfile + ``os.replace``) together with a ``<segment>.meta.json`` sidecar
holding the per-entry records, so another process — typically a forked
:class:`~repro.core.workers.ProcessPoolCacheService` worker — can attach the
pair read-only and adopt the warm contents with shared pages.

The codec contract is honoured with a twist: the entry codec's ``query``
field stores an arena extent instead of graph text inside the sidecar (and
alongside the text in :meth:`dump_records`, so JSON snapshots record the
arena path + offsets while staying loadable by the ordinary codecs).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...analysis.runtime import make_rlock
from ...exceptions import CacheError
from ...graphs.graph import Graph
from .arena import ArenaExtent, GraphArena
from .base import EntryCodec, StorageBackend

__all__ = ["MmapBackend"]

_META_VERSION = 1

#: Stand-in query used to run an entry through the owning store's text codec
#: without serialising the real graph: the mmap backend stores graphs as
#: arena extents, so the codec's ``query`` field is filled with the empty
#: graph's text and replaced by the extent.
_STUB_GRAPH = Graph(labels=(), edges=())


class MmapBackend(StorageBackend):
    """Arena-backed storage backend (see module docstring).

    Parameters
    ----------
    codec:
        The owning store's entry codec; used for the seal sidecar and for
        :meth:`dump_records` (snapshots).
    path:
        Base path of the backing files; the segment lands in
        ``<path>.<table>.arena`` and its sidecar in
        ``<path>.<table>.arena.meta.json``.  ``None`` keeps the arena in RAM
        (no sealing — tests and bounded-RAM behaviour without durability).
        If a sealed segment already exists at the derived path, the backend
        attaches it and adopts its entries (warm start, like SQLite).
    table:
        Logical table name, so the cache and window stores of one cache (and
        every shard) derive distinct files from one base path.
    packed_views:
        When true, ``get()``/``entries()`` return entries whose ``query`` is
        the arena's memoised CSR-native
        :class:`~repro.graphs.packed.PackedGraphView` instead of a decoded
        ``Graph`` — the zero-decode serving mode (``packed_match``).
    """

    name = "mmap"

    def __init__(
        self,
        codec: EntryCodec,
        path: Optional[str] = None,
        table: str = "entries",
        packed_views: bool = False,
    ) -> None:
        super().__init__()
        self._codec = codec
        self._table = table
        self._packed_views = packed_views
        self._segment: Optional[Path] = (
            Path(f"{path}.{table}.arena") if path is not None else None
        )
        self._lock = make_rlock("backend")
        # The offset table: serial -> (extent, entry-with-query=None stub).
        self._records: Dict[int, Tuple[ArenaExtent, Any]] = {}
        if self._segment is not None and self._segment.exists():
            self._arena = GraphArena.attach(self._segment)
            self._adopt_sidecar()
        else:
            self._arena = GraphArena(self._segment)

    # ------------------------------------------------------------------ #
    @property
    def arena(self) -> GraphArena:
        """The backing arena (exposed for inspection and benchmarks)."""
        return self._arena

    @property
    def arena_path(self) -> Optional[str]:
        """Path of the (future or attached) segment file, if any."""
        return str(self._segment) if self._segment is not None else None

    @property
    def meta_path(self) -> Optional[Path]:
        """Path of the sealed sidecar describing the entries."""
        if self._segment is None:
            return None
        return self._segment.with_name(self._segment.name + ".meta.json")

    # ------------------------------------------------------------------ #
    # Single-entry operations.
    # ------------------------------------------------------------------ #
    def put(self, serial: int, entry: Any) -> None:
        with self._lock:
            previous = self._records.get(serial)
            if previous is not None:
                self._arena.free(previous[0])
            extent = self._arena.append_graph(entry.query)
            self._records[serial] = (extent, replace(entry, query=None))
            self.op_counts.rows_inserted += 1

    def get(self, serial: int) -> Any:
        with self._lock:
            record = self._records.get(serial)
            if record is None:
                return None
            extent, stub = record
            if self._packed_views:
                query = self._arena.view_at(extent)
            else:
                query = self._arena.graph_at(extent)
        return replace(stub, query=query)

    def delete(self, serial: int) -> bool:
        with self._lock:
            record = self._records.pop(serial, None)
            if record is None:
                return False
            self._arena.free(record[0])
            self.op_counts.rows_deleted += 1
            return True

    def contains(self, serial: int) -> bool:
        with self._lock:
            return serial in self._records

    # ------------------------------------------------------------------ #
    # Bulk operations.
    # ------------------------------------------------------------------ #
    def serials(self) -> List[int]:
        with self._lock:
            return list(self._records)

    def entries(self) -> List[Any]:
        with self._lock:
            if self._packed_views:
                decoded = [
                    (stub, self._arena.view_at(extent))
                    for _, (extent, stub) in self._records.items()
                ]
            else:
                decoded = [
                    (stub, self._arena.graph_at(extent))
                    for _, (extent, stub) in self._records.items()
                ]
        return [replace(stub, query=query) for stub, query in decoded]

    def count(self) -> int:
        with self._lock:
            return len(self._records)

    def replace_all(self, items: Iterable[Tuple[int, Any]]) -> None:
        replacement = list(items)
        with self._lock:
            self.op_counts.bulk_rewrites += 1
            self.op_counts.rows_deleted += len(self._records)
            self.op_counts.rows_inserted += len(replacement)
            for extent, _ in self._records.values():
                self._arena.free(extent)
            self._records = {}
            for serial, entry in replacement:
                extent = self._arena.append_graph(entry.query)
                self._records[serial] = (extent, replace(entry, query=None))

    def clear(self) -> None:
        with self._lock:
            self.op_counts.bulk_rewrites += 1
            self.op_counts.rows_deleted += len(self._records)
            for extent, _ in self._records.values():
                self._arena.free(extent)
            self._records = {}

    def apply_delta(
        self, add: Iterable[Tuple[int, Any]], remove: Iterable[int]
    ) -> None:
        # One lock hold across the whole delta — the offset table never
        # exposes the evictions without the admissions (same atomicity as
        # the in-memory dict swap and the SQLite transaction).
        additions = list(add)
        with self._lock:
            for serial in remove:
                record = self._records.pop(serial, None)
                if record is not None:
                    self._arena.free(record[0])
                    self.op_counts.rows_deleted += 1
            for serial, entry in additions:
                previous = self._records.get(serial)
                if previous is not None:
                    self._arena.free(previous[0])
                extent = self._arena.append_graph(entry.query)
                self._records[serial] = (extent, replace(entry, query=None))
                self.op_counts.rows_inserted += 1

    # ------------------------------------------------------------------ #
    # Seal / attach lifecycle.
    # ------------------------------------------------------------------ #
    def seal(self) -> None:
        """Compact live extents into the segment file and publish atomically.

        Writes the arena segment plus the ``.meta.json`` sidecar describing
        every entry (codec record with the ``query`` field replaced by the
        new extent).  After sealing, this backend serves reads from the
        read-only mmap, and other processes may attach the same files.
        """
        if self._segment is None:
            raise CacheError(
                "cannot seal an mmap backend without a backend_path"
            )
        with self._lock:
            order = list(self._records.items())
            remap = self._arena.seal([extent for _, (extent, _) in order])
            records: List[Dict[str, Any]] = []
            resealed: Dict[int, Tuple[ArenaExtent, Any]] = {}
            for serial, (extent, stub) in order:
                moved = ArenaExtent(remap[extent.offset], extent.length)
                resealed[serial] = (moved, stub)
                record = self._codec.encode(replace(stub, query=_STUB_GRAPH))
                record["query"] = [moved.offset, moved.length]
                records.append(record)
            self._records = resealed
            self._write_sidecar(records)

    def seal_delta(self) -> int:
        """Publish new admissions as a delta segment — no stop-the-world rewrite.

        Falls back to a full :meth:`seal` when no base segment exists yet
        (first seal of the backend's lifetime).  Otherwise the arena appends
        one ``.deltaN`` file holding just the tail records — extents do not
        move, so only the sidecar is rewritten — and an attaching worker
        picks up base + deltas.  Returns the number of records published.
        """
        if self._segment is None:
            raise CacheError(
                "cannot seal an mmap backend without a backend_path"
            )
        with self._lock:
            if not self._arena.sealed:
                before = len(self._records)
                self.seal()
                return before
            published = self._arena.seal_delta()
            if published:
                records: List[Dict[str, Any]] = []
                for serial, (extent, stub) in self._records.items():
                    record = self._codec.encode(replace(stub, query=_STUB_GRAPH))
                    record["query"] = [extent.offset, extent.length]
                    records.append(record)
                self._write_sidecar(records)
            return published

    def compact(self, trigger_ratio: Optional[float] = None) -> Dict[str, Any]:
        """Fold every delta segment (and all dead bytes) into a fresh base seal.

        This is the reclamation half of the delta lifecycle: ``seal_delta``
        appends segments forever and never reclaims dead extents, so a
        long-lived backend calls ``compact`` when the dead/live ratio crosses
        the configured threshold (see
        :attr:`~repro.core.config.GraphCacheConfig.compaction_threshold`).
        Runs a full :meth:`seal` under the backend lock — extents move, but
        every live record survives byte-identically — and returns the event
        record the cache surfaces to the CLI: trigger ratio, bytes
        reclaimed, and how many delta segments were folded.
        """
        with self._lock:
            before_dead = self._arena.dead_bytes
            folded = self._arena.delta_count
            ratio = (
                trigger_ratio
                if trigger_ratio is not None
                else before_dead / self._arena.live_bytes
                if self._arena.live_bytes
                else float("inf")
            )
            self.seal()
            return {
                "table": self._table,
                "trigger_ratio": ratio,
                "bytes_reclaimed": before_dead - self._arena.dead_bytes,
                "segments_folded": folded,
                "live_bytes": self._arena.live_bytes,
                "dead_bytes": self._arena.dead_bytes,
            }

    def arena_statistics(self) -> Dict[str, Any]:
        """Occupancy of the backing arena (re-seal pressure observability)."""
        with self._lock:
            return {
                "table": self._table,
                "live_bytes": self._arena.live_bytes,
                "dead_bytes": self._arena.dead_bytes,
                "delta_segments": self._arena.delta_count,
                "segments": self._arena.segment_stats(),
            }

    def _write_sidecar(self, records: List[Dict[str, Any]]) -> None:
        payload = {
            "version": _META_VERSION,
            "table": self._table,
            "arena": self._segment.name,
            "records": records,
        }
        meta = self.meta_path
        fd, tmp_name = tempfile.mkstemp(
            dir=str(meta.parent), prefix=meta.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(tmp_name, meta)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def _adopt_sidecar(self) -> None:
        """Rebuild the offset table of an attached sealed segment."""
        meta = self.meta_path
        if meta is None or not meta.exists():
            raise CacheError(
                f"sealed arena {self._segment} has no sidecar {meta}"
            )
        payload = json.loads(meta.read_text(encoding="utf-8"))
        if payload.get("version") != _META_VERSION:
            raise CacheError(f"{meta}: unsupported sidecar version")
        stub_text = None
        for record in payload["records"]:
            offset, length = (int(x) for x in record["query"])
            if stub_text is None:
                from ...graphs.io import graph_to_text

                stub_text = graph_to_text(_STUB_GRAPH)
            entry = self._codec.decode({**record, "query": stub_text})
            self._records[int(record["serial"])] = (
                ArenaExtent(offset, length),
                replace(entry, query=None),
            )

    # ------------------------------------------------------------------ #
    # Lifecycle / persistence hooks.
    # ------------------------------------------------------------------ #
    def dump_records(self) -> List[Dict[str, Any]]:
        with self._lock:
            snapshot = [
                (serial, extent, stub, self._arena.graph_at(extent))
                for serial, (extent, stub) in self._records.items()
            ]
            arena_path = self.arena_path
        records = []
        for serial, extent, stub, query in snapshot:
            record = self._codec.encode(replace(stub, query=query))
            # Snapshot v3 carries the arena address next to the portable
            # text so a restore can re-attach the packed bytes.
            record["arena"] = {
                "path": arena_path,
                "offset": extent.offset,
                "length": extent.length,
            }
            records.append(record)
        return records

    def close(self) -> None:
        with self._lock:
            self._arena.close()
