"""GraphCache core: the paper's primary contribution."""

from .adaptive_admission import AdaptiveAdmissionController
from .admission import AdmissionController
from .backends import (
    AVAILABLE_BACKENDS,
    InMemoryBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
)
from .cache import CacheQueryResult, CacheRuntimeStatistics, GraphCache
from .config import GraphCacheConfig
from .persistence import load_cache, save_cache
from .sharding import ShardedGraphCache, build_cache, stable_feature_hash
from .pipeline import (
    STAGE_NAMES,
    CommitStage,
    MfilterStage,
    PipelineStage,
    ProcessorStage,
    PruneStage,
    QueryPipeline,
    StageContext,
    VerifyStage,
)
from .processors import CacheProcessors, ProcessorOutcome
from .pruner import CandidateSetPruner, PruningResult
from .query_index import QueryGraphIndex
from .service import GraphCacheService
from .replacement import (
    HybridPolicy,
    LRUPolicy,
    PINCPolicy,
    PINPolicy,
    POPPolicy,
    ReplacementPolicy,
    available_policies,
    policy_by_name,
    squared_coefficient_of_variation,
)
from .statistics import CachedQueryStats, StatisticsManager, TripletStore
from .stores import CacheEntry, CacheStore, WindowEntry, WindowStore
from .window import MaintenanceReport, WindowManager

__all__ = [
    "GraphCache",
    "GraphCacheConfig",
    "GraphCacheService",
    "ShardedGraphCache",
    "build_cache",
    "stable_feature_hash",
    "AVAILABLE_BACKENDS",
    "StorageBackend",
    "InMemoryBackend",
    "SQLiteBackend",
    "create_backend",
    "CacheQueryResult",
    "CacheRuntimeStatistics",
    "QueryPipeline",
    "StageContext",
    "PipelineStage",
    "MfilterStage",
    "ProcessorStage",
    "PruneStage",
    "VerifyStage",
    "CommitStage",
    "STAGE_NAMES",
    "AdmissionController",
    "AdaptiveAdmissionController",
    "load_cache",
    "save_cache",
    "CacheProcessors",
    "ProcessorOutcome",
    "CandidateSetPruner",
    "PruningResult",
    "QueryGraphIndex",
    "ReplacementPolicy",
    "LRUPolicy",
    "POPPolicy",
    "PINPolicy",
    "PINCPolicy",
    "HybridPolicy",
    "available_policies",
    "policy_by_name",
    "squared_coefficient_of_variation",
    "CachedQueryStats",
    "StatisticsManager",
    "TripletStore",
    "CacheEntry",
    "CacheStore",
    "WindowEntry",
    "WindowStore",
    "MaintenanceReport",
    "WindowManager",
]
