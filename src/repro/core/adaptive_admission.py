"""Compatibility shim: adaptive admission moved to :mod:`repro.core.policies`.

The hill-climbing controller now lives in
:mod:`repro.core.policies.adaptive`.  This module re-exports the seed-era
name so existing imports keep working.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.adaptive_admission is a deprecated re-export shim; "
    "import from repro.core.policies instead",
    DeprecationWarning,
    stacklevel=2,
)

from .policies.adaptive import AdaptiveAdmissionController

__all__ = ["AdaptiveAdmissionController"]
