"""QueryPipeline: the staged, concurrency-ready hit-path of GraphCache.

The paper's architecture (§4, Figure 2) is a dataflow of five stages over
shared state; this module makes that dataflow explicit instead of burying it
in one monolithic ``GraphCache.query()``:

* :class:`MfilterStage` — Method M filtering, producing ``CS_M`` (cache-state
  independent: it only reads the method's own dataset index);
* :class:`ProcessorStage` — the GCsub/GCsuper processors over the GCindex;
* :class:`PruneStage` — the Candidate Set Pruner (equations (1)/(2) and the
  two special cases), which may short-circuit verification entirely;
* :class:`VerifyStage` — ``Mverifier`` over the surviving candidates;
* :class:`CommitStage` — statistics recording, window admission and result
  construction, serialized so counters and maintenance stay deterministic.

Each stage implements the :class:`PipelineStage` protocol and communicates
through a typed :class:`StageContext`.  :class:`QueryPipeline` orchestrates
them and supports two execution modes:

* ``serial`` — stages run one after another on the calling thread;
* ``parallel`` — ``MfilterStage`` runs on a helper thread concurrently with
  ``ProcessorStage`` (the paper's Figure-2 parallel arrow); the GC stages
  still execute under the pipeline's GC lock so shared cache state is only
  ever read/mutated by one query at a time.

Concurrency model.  ``MfilterStage`` and ``VerifyStage`` never touch cache
state, so they run without the GC lock; ``ProcessorStage`` + ``PruneStage``
read the GCindex/stores as one critical section, and ``CommitStage`` (which
can trigger window maintenance and a GCindex rebuild) uses the same lock.
Because Mfilter is cache-state independent, pre-computing it concurrently for
many queries and then running the GC stages in serial order — what
:meth:`~repro.core.service.GraphCacheService.query_many` does — yields
byte-identical answer sets and work counters to a fully serial run.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Protocol, Tuple

from ..analysis.runtime import make_lock, make_rlock
from ..graphs.graph import Graph
from ..methods.base import Method
from ..methods.executor import verify_candidates
from .processors import CacheProcessors, ProcessorOutcome
from .pruner import CandidateSetPruner, PruningResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache builds us)
    from .cache import CacheQueryResult, GraphCache

__all__ = [
    "STAGE_NAMES",
    "StageContext",
    "PipelineStage",
    "MfilterStage",
    "ProcessorStage",
    "PruneStage",
    "VerifyStage",
    "CommitStage",
    "QueryPipeline",
]

#: Canonical stage order; ``StageContext.stage_times`` is keyed by these names.
STAGE_NAMES: Tuple[str, ...] = ("mfilter", "processors", "prune", "verify", "commit")


@dataclass
class StageContext:
    """Mutable per-query context threaded through the pipeline stages.

    Each stage reads the fields of the stages before it and fills in its own;
    the ``stage_times`` dictionary accumulates per-stage wall-clock seconds.
    """

    query: Graph
    serial: int

    # MfilterStage (may be pre-filled by GraphCacheService's batched prefetch).
    method_candidates: Optional[FrozenSet[int]] = None
    filter_time_s: float = 0.0

    # ProcessorStage.
    outcome: Optional[ProcessorOutcome] = None

    # PruneStage.
    pruning: Optional[PruningResult] = None
    short_circuit_stage: Optional[str] = None

    # VerifyStage.
    verified_answers: FrozenSet[int] = frozenset()
    verify_time_s: float = 0.0
    subiso_tests: int = 0

    # CommitStage.
    maintenance_time_s: float = 0.0
    result: Optional["CacheQueryResult"] = None

    stage_times: Dict[str, float] = field(default_factory=dict)


class PipelineStage(Protocol):
    """One stage of the query pipeline: consume/extend a :class:`StageContext`."""

    name: str

    def run(self, ctx: StageContext) -> None:
        """Execute the stage, reading and mutating ``ctx`` in place."""
        ...  # pragma: no cover


class MfilterStage:
    """Method M filtering (``Mfilter``): produce the candidate set ``CS_M``.

    This stage only reads the method's own dataset/index, never cache state —
    which is what makes it safe to run concurrently with the GC processors
    (Figure 2) or to prefetch for a whole batch of queries.
    """

    name = "mfilter"

    def __init__(self, method: Method) -> None:
        self._method = method

    def run(self, ctx: StageContext) -> None:
        if ctx.method_candidates is not None:
            # Prefetched by the batched service facade; surface the filter
            # time measured on the prefetch worker as this stage's cost.
            ctx.stage_times[self.name] = ctx.filter_time_s
            return
        started = time.perf_counter()
        ctx.method_candidates = frozenset(self._method.candidates(ctx.query))
        ctx.filter_time_s = time.perf_counter() - started


class ProcessorStage:
    """GCsub/GCsuper processors: containment relations against the GCindex."""

    name = "processors"

    def __init__(self, processors: CacheProcessors) -> None:
        self._processors = processors

    @property
    def processors(self) -> CacheProcessors:
        """The underlying processor pair (exposed for inspection and tests)."""
        return self._processors

    def run(self, ctx: StageContext) -> None:
        ctx.outcome = self._processors.process(ctx.query)


class PruneStage:
    """Candidate Set Pruner: equations (1)/(2) plus the two special cases."""

    name = "prune"

    def __init__(self, pruner: CandidateSetPruner) -> None:
        self._pruner = pruner

    def run(self, ctx: StageContext) -> None:
        ctx.pruning = self._pruner.prune(frozenset(ctx.method_candidates), ctx.outcome)
        if ctx.pruning.shortcut is not None:
            # An exact hit or empty-answer proof means verification is moot.
            ctx.short_circuit_stage = self.name


class VerifyStage:
    """``Mverifier`` over the surviving candidates (skipped on shortcuts)."""

    name = "verify"

    def __init__(self, method: Method, query_mode: str = "subgraph") -> None:
        self._method = method
        self._query_mode = query_mode

    def run(self, ctx: StageContext) -> None:
        if not ctx.pruning.final_candidates:
            return  # short-circuited (or fully pruned): nothing left to verify
        answers, raw_time, tests, _, _ = verify_candidates(
            self._method,
            ctx.query,
            ctx.pruning.final_candidates,
            query_mode=self._query_mode,
        )
        ctx.verified_answers = answers
        ctx.verify_time_s = raw_time / max(1, self._method.verify_parallelism)
        ctx.subiso_tests = tests


class CommitStage:
    """Statistics, window admission and result construction (serialized).

    The commit is the only stage that *mutates* shared cache state (window,
    stores, statistics, and — via maintenance — the GCindex), so the pipeline
    always runs it under the GC lock; the heavy lifting lives in
    :meth:`GraphCache._commit` next to the statistics helpers it uses.
    """

    name = "commit"

    def __init__(self, cache: "GraphCache") -> None:
        self._cache = cache

    def run(self, ctx: StageContext) -> None:
        self._cache._commit(ctx)


class QueryPipeline:
    """Orchestrates the five stages for one query at a time.

    Parameters
    ----------
    mfilter, processors, prune, verify, commit:
        The concrete stages, in dataflow order.
    gc_lock:
        Re-entrant lock serializing every access to shared cache state
        (processors + prune as one critical section, and commit).  Callers
        hammering one cache from many threads are safe; counters are
        deterministic whenever the GC stages execute in serial order.
    parallel_filter:
        When ``True``, run ``MfilterStage`` on a helper thread concurrently
        with ``ProcessorStage`` (the paper's Figure-2 parallel arrow).
    """

    def __init__(
        self,
        mfilter: MfilterStage,
        processors: ProcessorStage,
        prune: PruneStage,
        verify: VerifyStage,
        commit: CommitStage,
        gc_lock: Optional[threading.RLock] = None,
        parallel_filter: bool = False,
    ) -> None:
        self._mfilter = mfilter
        self._processors = processors
        self._prune = prune
        self._verify = verify
        self._commit = commit
        self._gc_lock = gc_lock if gc_lock is not None else make_rlock("gc")
        self._parallel_filter = parallel_filter
        # Persistent helper for parallel mode, created lazily on first use so
        # serial pipelines never spawn a thread.  A pool (not a per-query
        # Thread) keeps thread create/join churn off the per-query hot path.
        self._filter_pool: Optional[ThreadPoolExecutor] = None
        self._filter_pool_lock = make_lock("pipeline.filter_pool")

    # ------------------------------------------------------------------ #
    @property
    def stages(self) -> Tuple[PipelineStage, ...]:
        """The stages in dataflow order."""
        return (self._mfilter, self._processors, self._prune, self._verify, self._commit)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """Names of the stages in dataflow order."""
        return tuple(stage.name for stage in self.stages)

    @property
    def parallel_filter(self) -> bool:
        """``True`` when Mfilter runs concurrently with the GC processors."""
        return self._parallel_filter

    @property
    def gc_lock(self) -> threading.RLock:
        """The lock serializing access to shared cache state."""
        return self._gc_lock

    def close(self) -> None:
        """Shut down the lazy Mfilter helper pool (no-op for serial pipelines).

        Abandoned pools also self-clean when the pipeline is garbage
        collected (idle ``ThreadPoolExecutor`` workers exit once their
        executor is collected); ``close()`` just makes teardown deterministic
        for long-lived services.
        """
        with self._filter_pool_lock:
            pool, self._filter_pool = self._filter_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _timed(stage: PipelineStage, ctx: StageContext) -> None:
        started = time.perf_counter()
        stage.run(ctx)
        elapsed = time.perf_counter() - started
        # A stage may have recorded a larger, more truthful figure itself
        # (prefetched Mfilter reports the worker-side filtering time).
        ctx.stage_times[stage.name] = max(ctx.stage_times.get(stage.name, 0.0), elapsed)

    def execute(self, ctx: StageContext) -> "CacheQueryResult":
        """Run every stage for ``ctx`` and return the committed result."""
        if self._parallel_filter and ctx.method_candidates is None:
            self._filter_and_process_concurrently(ctx)
        else:
            self._timed(self._mfilter, ctx)
            with self._gc_lock:
                self._timed(self._processors, ctx)
                self._timed(self._prune, ctx)
        self._timed(self._verify, ctx)
        # CommitStage records its own stage time: the result object is frozen
        # inside the commit, so the measurement must happen there.
        with self._gc_lock:
            self._commit.run(ctx)
        return ctx.result

    def _filter_and_process_concurrently(self, ctx: StageContext) -> None:
        """Figure 2's parallel arrow: Mfilter on a helper worker, GC inline.

        The GC lock is held across the wait so that pruning sees exactly the
        cache state the processors read, even when several threads share the
        cache; the Mfilter worker never takes the lock, so this cannot
        deadlock.
        """
        # Create-or-submit under the pool lock so a concurrent close() can
        # never null the pool (or shut it down) between the check and the
        # submit; enqueueing a task is non-blocking, so the lock stays cheap.
        with self._filter_pool_lock:
            if self._filter_pool is None:
                self._filter_pool = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="gc-mfilter"
                )
            future = self._filter_pool.submit(self._timed, self._mfilter, ctx)
        with self._gc_lock:
            self._timed(self._processors, ctx)
            # The wait-under-lock is the figure's design: pruning must see
            # the exact cache state the processors read, and the Mfilter
            # worker never takes the GC lock, so the wait cannot deadlock.
            # repro: allow[REPRO002] intentional barrier, worker is lock-free
            future.result()  # re-raises any Mfilter exception
            self._timed(self._prune, ctx)
