"""Shared packed target dataset: seal once, attach read-only per worker.

The missing half of the zero-copy serving story: PR 7's arena covers the
*cached queries*, but every forked worker still held a private ``Graph``
copy of the whole target dataset.  This module packs the dataset itself
into one :class:`~repro.core.backends.arena.GraphArena` segment —
:func:`seal_dataset` writes it before the fork, and each worker
:meth:`~PackedGraphDataset.attach`-es the sealed file, so the dataset's
bytes are shared read-only mmap pages across the pool and the matchers run
CSR-native on memoised :class:`~repro.graphs.packed.PackedGraphView`
objects (per-graph bitmask cores materialise lazily, once per process, on
first verification against that graph).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..exceptions import DatasetError
from ..graphs.dataset import GraphDataset
from .backends.arena import GraphArena

__all__ = ["PackedGraphDataset", "seal_dataset"]

PathLike = Union[str, "Path"]


def seal_dataset(dataset: GraphDataset, path: PathLike) -> Path:
    """Pack every graph of ``dataset`` into a sealed arena segment at ``path``.

    Records are appended in graph-id order, so the sealed offset table's
    positions are the graph ids — :class:`PackedGraphDataset` relies on it.
    """
    arena = GraphArena(path)
    extents = [arena.append_graph(graph) for graph in dataset]
    arena.seal(extents)
    arena.close()
    return Path(path)


class PackedGraphDataset(GraphDataset):
    """A :class:`GraphDataset` served from a sealed arena segment.

    ``dataset[graph_id]`` returns the arena's memoised
    :class:`~repro.graphs.packed.PackedGraphView` for that record: a full
    ``Graph`` in every observable way, but backed by the shared read-only
    mmap pages and materialising derived state lazily.  The container API
    (iteration, ``graph_ids``, ``statistics()``, ...) is inherited.
    """

    def __init__(self, arena: GraphArena, name: str = "packed") -> None:
        extents = arena.extents()
        if not extents:
            raise DatasetError("packed dataset arena holds no graphs")
        self._name = name
        self._graphs = [arena.view_at(extent) for extent in extents]
        self._all_ids = frozenset(range(len(self._graphs)))
        self._arena = arena

    @classmethod
    def attach(cls, path: PathLike, name: Optional[str] = None) -> "PackedGraphDataset":
        """Attach the sealed dataset segment at ``path`` (read-only, shared)."""
        arena = GraphArena.attach(path)
        return cls(arena, name=name if name is not None else Path(path).stem)

    @property
    def arena(self) -> GraphArena:
        """The backing arena (exposed for inspection and tests)."""
        return self._arena

    def close(self) -> None:
        """Release the mmap (views created earlier keep their pages alive)."""
        self._arena.close()

    def __repr__(self) -> str:
        return f"<PackedGraphDataset {self._name!r} graphs={len(self._graphs)}>"
