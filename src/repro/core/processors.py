"""GCsub / GCsuper processors: discovering query–query containment relations.

Given a new query ``g`` and the GCindex over cached queries, the two
processors produce (§5.1):

* ``Resultsub(g)`` — cached queries ``g'`` with ``g ⊆ g'`` (GCsub processor),
* ``Resultsuper(g)`` — cached queries ``g''`` with ``g'' ⊆ g`` (GCsuper
  processor),

plus detection of the two special cases that yield the greatest gains:

* an **exact (isomorphic) hit**: a cached connected query with the same number
  of vertices and edges that contains or is contained in ``g``;
* an **empty-answer shortcut**: in subgraph mode, some ``g'' ⊆ g`` with an
  empty answer set proves ``g``'s answer set is empty (in supergraph mode the
  same holds for some ``g' ⊇ g``).

The processors only *confirm* candidates produced by the GCindex filters; all
confirmations are real sub-iso tests between query graphs (small), executed
with the configured matcher.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..analysis.runtime import make_lock, make_rlock
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.vf2_plus import VF2PlusMatcher
from .query_index import QueryGraphIndex

__all__ = ["ProcessorOutcome", "CacheProcessors"]

# Fallback matcher for processors constructed without one (standalone use in
# tests/tools).  A single module-level instance is shared so its plan cache is
# not duplicated per processor pair; GraphCache itself always resolves the
# configured matcher and passes it in explicitly.
_fallback_matcher: Optional[SubgraphMatcher] = None
_fallback_matcher_lock = make_lock("matcher.fallback")


def _shared_fallback_matcher() -> SubgraphMatcher:
    global _fallback_matcher
    with _fallback_matcher_lock:
        if _fallback_matcher is None:
            _fallback_matcher = VF2PlusMatcher()
        return _fallback_matcher


@dataclass(frozen=True)
class ProcessorOutcome:
    """Everything the two GC processors learned about a new query.

    Attributes
    ----------
    result_sub:
        Serial numbers of cached queries of which the new query is a subgraph
        (``Resultsub``).
    result_super:
        Serial numbers of cached queries of which the new query is a
        supergraph (``Resultsuper``).
    exact_match_serial:
        Serial of an isomorphic cached query, if one exists.
    elapsed_s:
        Wall-clock time spent in GC filtering (index lookups plus the
        query-vs-query confirmation sub-iso tests).
    containment_tests:
        Number of query-vs-query sub-iso tests actually executed (memoised
        verdicts do not count).
    memo_hits:
        Number of candidate confirmations answered from the containment memo
        without running a sub-iso test.
    """

    result_sub: FrozenSet[int]
    result_super: FrozenSet[int]
    exact_match_serial: Optional[int]
    elapsed_s: float
    containment_tests: int
    memo_hits: int = 0

    @property
    def hit(self) -> bool:
        """``True`` if any containment relationship was found."""
        return bool(self.result_sub or self.result_super)


class CacheProcessors:
    """The GCsub and GCsuper processors sharing one GCindex and one matcher.

    Query-vs-query containment verdicts are memoised across the processor's
    lifetime: the verdict of ``g1 ⊆ g2`` depends only on the two labelled
    structures, and skewed (e.g. Zipfian) workloads repeat query structures
    heavily, so re-confirming the same pair against the same cached query is
    pure waste.  The memo is keyed by the ``(pattern, target)`` graph pair —
    :class:`~repro.graphs.graph.Graph` hashes/compares on its exact labelled
    structure — and bounded by :data:`MEMO_LIMIT`.
    """

    #: Maximum number of memoised verdicts before the memo is reset.  Workload
    #: runs at reproduction scale produce a few thousand distinct pairs, so
    #: the bound exists purely as a safety valve for long-lived services.
    MEMO_LIMIT = 200_000

    def __init__(
        self,
        index: QueryGraphIndex,
        matcher: Optional[SubgraphMatcher] = None,
        memoize: bool = True,
    ) -> None:
        self._index = index
        self._matcher = matcher if matcher is not None else _shared_fallback_matcher()
        self._memoize = memoize
        self._memo: Dict[Tuple[Graph, Graph], bool] = {}
        self._memo_hits = 0
        self._memo_lock = make_rlock("processors.memo")

    @property
    def index(self) -> QueryGraphIndex:
        """The GCindex this processor pair reads."""
        return self._index

    @property
    def matcher(self) -> SubgraphMatcher:
        """Matcher used for query-vs-query containment confirmation."""
        return self._matcher

    @property
    def memo_hits(self) -> int:
        """Lifetime count of containment verdicts answered from the memo."""
        return self._memo_hits

    @property
    def memo_size(self) -> int:
        """Number of memoised query-vs-query verdicts currently held."""
        return len(self._memo)

    # ------------------------------------------------------------------ #
    def _contains(self, pattern: Graph, target: Graph) -> Tuple[bool, bool]:
        """Memoised ``pattern ⊆ target`` verdict.

        Returns ``(verdict, from_memo)``; only ``from_memo == False`` calls
        ran an actual sub-iso test.
        """
        if not self._memoize:
            return self._matcher.is_subgraph(pattern, target), False
        key = (pattern, target)
        with self._memo_lock:
            verdict = self._memo.get(key)
            if verdict is not None:
                self._memo_hits += 1
                return verdict, True
        verdict = self._matcher.is_subgraph(pattern, target)
        with self._memo_lock:
            if len(self._memo) >= self.MEMO_LIMIT:
                self._memo.clear()
            self._memo[key] = verdict
        return verdict, False

    # ------------------------------------------------------------------ #
    def process(self, query: Graph) -> ProcessorOutcome:
        """Run both processors for ``query`` against the current GCindex.

        The whole pass pins **one** published index snapshot
        (:meth:`~repro.core.query_index.QueryGraphIndex.view`), so a
        maintenance apply publishing mid-query can never make a candidate's
        graph disappear between filtering and confirmation — lookups always
        read a complete, point-in-time view of the cached queries.
        """
        with self._index.view() as snapshot:
            return self._process_on(snapshot, query)

    def _process_on(self, snapshot, query: Graph) -> ProcessorOutcome:
        started = time.perf_counter()
        tests = 0
        memo_hits = 0

        features = self._index.query_features(query)
        sub_candidates = snapshot.candidate_supergraphs(query, features)

        # Fast path: an isomorphic cached query (same vertex and edge counts,
        # containment in one direction) yields the greatest possible gain and
        # makes every other containment check unnecessary (§5.1, special case 1).
        for serial in sorted(sub_candidates):
            if not self._same_shape(snapshot, query, serial):
                continue
            cached_query = snapshot.graph(serial)
            verdict, from_memo = self._contains(query, cached_query)
            tests += not from_memo
            memo_hits += from_memo
            if verdict:
                elapsed = time.perf_counter() - started
                return ProcessorOutcome(
                    result_sub=frozenset({serial}),
                    result_super=frozenset({serial}),
                    exact_match_serial=serial,
                    elapsed_s=elapsed,
                    containment_tests=tests,
                    memo_hits=memo_hits,
                )

        # GCsub processor: cached queries that may contain the new query.
        result_sub: set = set()
        for serial in sub_candidates:
            if self._same_shape(snapshot, query, serial):
                continue  # already checked in the exact-match fast path
            cached_query = snapshot.graph(serial)
            verdict, from_memo = self._contains(query, cached_query)
            tests += not from_memo
            memo_hits += from_memo
            if verdict:
                result_sub.add(serial)

        # GCsuper processor: cached queries that may be contained in the query.
        result_super: set = set()
        for serial in snapshot.candidate_subgraphs(query, features):
            if serial in result_sub and self._same_shape(snapshot, query, serial):
                # Already confirmed in the other direction with equal size:
                # containment plus equal vertex/edge counts implies isomorphism,
                # no need for a second sub-iso test.
                result_super.add(serial)
                continue
            cached_query = snapshot.graph(serial)
            verdict, from_memo = self._contains(cached_query, query)
            tests += not from_memo
            memo_hits += from_memo
            if verdict:
                result_super.add(serial)

        exact = self._find_exact_match(snapshot, query, result_sub, result_super)
        elapsed = time.perf_counter() - started
        return ProcessorOutcome(
            result_sub=frozenset(result_sub),
            result_super=frozenset(result_super),
            exact_match_serial=exact,
            elapsed_s=elapsed,
            containment_tests=tests,
            memo_hits=memo_hits,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _same_shape(snapshot, query: Graph, serial: int) -> bool:
        cached_query = snapshot.graph(serial)
        return cached_query.order == query.order and cached_query.size == query.size

    def _find_exact_match(
        self,
        snapshot,
        query: Graph,
        result_sub: FrozenSet[int],
        result_super: FrozenSet[int],
    ) -> Optional[int]:
        """Detect an isomorphic cached query (first special case of §5.1).

        For connected query graphs, a containment relation in either direction
        together with equal vertex and edge counts implies isomorphism.
        """
        for serial in sorted(result_sub | result_super):
            if self._same_shape(snapshot, query, serial):
                return serial
        return None
