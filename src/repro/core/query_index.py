"""GCindex: the combined subgraph/supergraph index over cached queries.

GraphCache indexes the *cached query graphs* (not the dataset) so that, given
a new query ``g``, it can quickly find

* ``Resultsub(g)`` — cached queries ``g'`` with ``g ⊆ g'`` (``g`` is a
  subgraph of a previous query), and
* ``Resultsuper(g)`` — cached queries ``g''`` with ``g'' ⊆ g`` (``g`` is a
  supergraph of a previous query).

The index is loosely based on the GraphGrepSX path trie (as in the paper,
§6.1), augmented with per-query feature counters so the same structure serves
both directions:

* sub-direction filtering uses the trie: a cached query can only be a
  supergraph of ``g`` — i.e. contain ``g`` — if it contains every label path
  of ``g`` at least as often;
* super-direction filtering compares the cached query's stored feature
  counter against ``g``'s counter (the cache holds at most a few hundred
  entries, so the scan is cheap), plus vertex/edge/label-histogram dominance.

Both filters are *necessary-condition* filters: surviving candidates are then
confirmed with an actual sub-iso test by the GC processors.

Double-buffered reads
---------------------
With ``double_buffered=True`` the index keeps **two** complete copies of its
structures.  Readers always work against the *published* copy through a
reference-counted :class:`IndexView`; writers mutate the standby copy,
atomically publish it (bumping :attr:`version`), wait for the old copy's
readers to drain, and replay the same ops onto it so both copies converge.
Consequences:

* lookups never block on an in-flight mutation — a query served while a
  maintenance apply is still underway reads the previously published
  snapshot, in full;
* a :meth:`batch` groups a whole maintenance round's ``add``/``remove``
  calls into **one** publication, so readers observe a cache-update round
  atomically (never a half-applied window);
* mutation cost stays O(ops): each logical op is applied once per copy
  (``op_counts`` records logical ops, not per-copy applications).

With ``double_buffered=False`` (what :class:`~repro.core.cache.GraphCache`
selects under ``maintenance_mode="sync"``, where applies and lookups are
already serialized by the GC lock, and what the shard router uses for its
never-mutated feature extractor) a single copy is kept and views take the
write lock — the pre-scheduler locking, without the second copy's memory
or the twice-applied mutations.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..analysis.runtime import make_condition, make_lock, make_rlock
from ..ftv.features import path_features
from ..ftv.trie import PathTrie
from ..graphs.graph import Graph
from ..graphs.signatures import could_be_subgraph

__all__ = ["IndexOpCounts", "IndexView", "QueryGraphIndex"]


@dataclass
class IndexOpCounts:
    """Deterministic mutation counters of one :class:`QueryGraphIndex`.

    ``adds``/``removes`` count per-query index mutations (a rebuild's
    re-insertions also land in ``adds``); ``rebuilds`` counts whole-index
    swaps.  The maintenance benchmark asserts on :attr:`incremental_ops`
    deltas to prove a cache-update round touches O(window) index entries,
    not O(cache).  Each logical op counts once even though the double
    buffer applies it to both copies.
    """

    adds: int = 0
    removes: int = 0
    rebuilds: int = 0

    @property
    def incremental_ops(self) -> int:
        """Total per-query mutations (adds + removes)."""
        return self.adds + self.removes


class _IndexBuffer:
    """One complete copy of the index structures plus its reader count."""

    __slots__ = ("trie", "features", "probes", "graphs", "readers")

    def __init__(self) -> None:
        self.trie = PathTrie()
        self.features: Dict[int, Counter] = {}
        self.probes: Dict[int, Tuple[Tuple[Tuple[str, ...], int], ...]] = {}
        self.graphs: Dict[int, Graph] = {}
        self.readers = 0


class IndexView:
    """A reference-counted read view over one published index snapshot.

    Obtained from :meth:`QueryGraphIndex.view` (context manager) or
    :meth:`QueryGraphIndex.acquire_view`; while held, the snapshot is
    immutable — an in-flight maintenance apply publishes a *new* snapshot
    and waits for this view to be released before reusing the buffer.
    """

    __slots__ = ("_index", "_buffer", "version")

    def __init__(self, index: "QueryGraphIndex", buffer: _IndexBuffer, version: int) -> None:
        self._index = index
        self._buffer = buffer
        #: Publication version of the snapshot this view reads.
        self.version = version

    # -- read API (mirrors the index's own read methods) ---------------- #
    def __len__(self) -> int:
        return len(self._buffer.graphs)

    def __contains__(self, serial: int) -> bool:
        return serial in self._buffer.graphs

    def serials(self) -> List[int]:
        """Serial numbers of every indexed query (insertion order)."""
        return list(self._buffer.graphs)

    def graph(self, serial: int) -> Graph:
        """Return the indexed query graph with the given serial."""
        return self._buffer.graphs[serial]

    def candidate_supergraphs(
        self, query: Graph, features: Optional[Counter] = None
    ) -> FrozenSet[int]:
        """Cached queries that *may contain* ``query`` (``Resultsub`` candidates)."""
        buffer = self._buffer
        if not buffer.graphs:
            return frozenset()
        if features is None:
            features = self._index.query_features(query)
        probe = dict(QueryGraphIndex._probe_of(features))
        candidates = buffer.trie.filter(probe)
        return frozenset(
            serial
            for serial in candidates
            if could_be_subgraph(query, buffer.graphs[serial])
        )

    def candidate_subgraphs(
        self, query: Graph, features: Optional[Counter] = None
    ) -> FrozenSet[int]:
        """Cached queries that *may be contained in* ``query`` (``Resultsuper`` candidates)."""
        buffer = self._buffer
        if not buffer.graphs:
            return frozenset()
        if features is None:
            features = self._index.query_features(query)
        survivors: List[int] = []
        for serial, probe in buffer.probes.items():
            cached_graph = buffer.graphs[serial]
            if not could_be_subgraph(cached_graph, query):
                continue
            if all(features.get(feature, 0) >= count for feature, count in probe):
                survivors.append(serial)
        return frozenset(survivors)

    def approximate_size_bytes(self) -> int:
        """Rough memory footprint of the snapshot (trie + feature counters)."""
        counters = sum(
            48 + 24 * len(counter) for counter in self._buffer.features.values()
        )
        return self._buffer.trie.approximate_size_bytes() + counters

    def release(self) -> None:
        """Return the view (writers may then recycle the buffer)."""
        self._index._release_buffer(self._buffer)


class QueryGraphIndex:
    """Counted path index over a set of cached query graphs.

    Parameters
    ----------
    max_path_length:
        Maximum label-path length (in edges) extracted from each query graph.
        Queries are small, so a modest length (3 by default in
        :class:`~repro.core.config.GraphCacheConfig`) gives good pruning at a
        tiny indexing cost.
    """

    #: Number of (longest-first) features used as the filtering probe.  Longer
    #: paths are the most selective features; using only a bounded probe keeps
    #: GC's per-query filtering overhead small and independent of query size,
    #: and is sound — weakening a necessary-condition filter can only let more
    #: candidates through to the confirmation sub-iso test.
    PROBE_LIMIT = 24

    #: Maximum number of memoised query-feature counters (safety valve; the
    #: memo is keyed by the query's labelled structure, which Zipf-skewed
    #: workloads repeat heavily).
    FEATURE_MEMO_LIMIT = 8192

    def __init__(
        self, max_path_length: int = 3, double_buffered: bool = True
    ) -> None:
        self._max_path_length = max_path_length
        #: Deterministic mutation counters (see :class:`IndexOpCounts`).
        self.op_counts = IndexOpCounts()
        # Double buffer: readers use the published copy, writers mutate the
        # standby copy and swap.  At rest both copies hold identical content
        # and the standby has no readers.  Single-copy mode skips the second
        # copy; views then exclude writers via the write lock itself.
        self._double_buffered = double_buffered
        self._buffers = (
            (_IndexBuffer(), _IndexBuffer()) if double_buffered else (_IndexBuffer(),)
        )
        self._published = 0
        self._version = 0
        # Guards the published pointer and the per-buffer reader counts; the
        # condition wakes writers waiting for a retired buffer to drain.
        self._read_cond = make_condition("index.readers")
        # Serializes writers; re-entrant so nested batch()/add() compose.
        self._write_lock = make_rlock("index.write")
        self._batch_depth = 0
        self._batch_journal: List[Tuple] = []
        self._feature_memo: Dict[Graph, Counter] = {}
        self._memo_lock = make_lock("index.memo")

    # ------------------------------------------------------------------ #
    @property
    def max_path_length(self) -> int:
        """Maximum indexed label-path length in edges."""
        return self._max_path_length

    @property
    def version(self) -> int:
        """Publication counter: bumps once per published mutation batch.

        A reader that observes the same version before and after an
        operation is guaranteed to have read one unchanged snapshot — the
        deterministic evidence the mid-apply tests pin.
        """
        with self._read_cond:
            return self._version

    # ------------------------------------------------------------------ #
    # Read views.
    # ------------------------------------------------------------------ #
    def acquire_view(self) -> IndexView:
        """Pin the currently published snapshot for reading.

        Double-buffered: never blocks on an in-flight mutation — an apply
        that has not yet published is invisible, and one that has published
        is complete.  Single-copy: takes the (re-entrant) write lock, so
        reads and mutations exclude each other, as before the scheduler.
        Callers must :meth:`IndexView.release` (or use :meth:`view`).
        """
        if not self._double_buffered:
            self._write_lock.acquire()
            return IndexView(self, self._buffers[0], self._version)
        with self._read_cond:
            buffer = self._buffers[self._published]
            buffer.readers += 1
            return IndexView(self, buffer, self._version)

    def _release_buffer(self, buffer: _IndexBuffer) -> None:
        if not self._double_buffered:
            self._write_lock.release()
            return
        with self._read_cond:
            buffer.readers -= 1
            if buffer.readers == 0:
                self._read_cond.notify_all()

    @contextmanager
    def view(self):
        """Context-managed :meth:`acquire_view` / release pair."""
        snapshot = self.acquire_view()
        try:
            yield snapshot
        finally:
            snapshot.release()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self.view() as snapshot:
            return len(snapshot)

    def __contains__(self, serial: int) -> bool:
        with self.view() as snapshot:
            return serial in snapshot

    def serials(self) -> List[int]:
        """Serial numbers of every indexed query."""
        with self.view() as snapshot:
            return snapshot.serials()

    def graph(self, serial: int) -> Graph:
        """Return the indexed query graph with the given serial."""
        with self.view() as snapshot:
            return snapshot.graph(serial)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _probe_of(features: Counter) -> Tuple[Tuple[Tuple[str, ...], int], ...]:
        """The most selective (longest) features of a counter, probe-limited."""
        ordered = sorted(features.items(), key=lambda item: (-len(item[0]), item[0]))
        return tuple(ordered[: QueryGraphIndex.PROBE_LIMIT])

    # ------------------------------------------------------------------ #
    # Mutation: standby-apply, publish, drain, replay.
    # ------------------------------------------------------------------ #
    def _standby(self) -> _IndexBuffer:
        if not self._double_buffered:
            return self._buffers[0]
        return self._buffers[1 - self._published]

    def _apply_add(self, buffer: _IndexBuffer, serial: int, query: Graph) -> None:
        features = self.query_features(query)
        buffer.trie.insert_features(features, serial)
        buffer.features[serial] = features
        buffer.probes[serial] = self._probe_of(features)
        buffer.graphs[serial] = query

    def _apply_remove(self, buffer: _IndexBuffer, serial: int) -> None:
        if serial not in buffer.graphs:
            return
        buffer.trie.remove_owner(serial)
        del buffer.features[serial]
        del buffer.probes[serial]
        del buffer.graphs[serial]

    def _apply_rebuild(
        self, buffer: _IndexBuffer, entries: List[Tuple[int, Graph]]
    ) -> None:
        buffer.trie = PathTrie()
        buffer.features = {}
        buffer.probes = {}
        buffer.graphs = {}
        for serial, query in entries:
            self._apply_add(buffer, serial, query)

    def _replay(self, buffer: _IndexBuffer, journal: List[Tuple]) -> None:
        for op in journal:
            if op[0] == "add":
                self._apply_add(buffer, op[1], op[2])
            elif op[0] == "remove":
                self._apply_remove(buffer, op[1])
            else:  # "rebuild"
                self._apply_rebuild(buffer, op[1])

    def _publish(self) -> None:
        """Swap the buffers, bump the version, drain and converge the old copy.

        Single-copy mode: mutations already landed in the only copy (under
        the write lock, which also excludes views), so publication is just
        the version bump.
        """
        journal, self._batch_journal = self._batch_journal, []
        if not journal:
            return
        if not self._double_buffered:
            with self._read_cond:
                self._version += 1
            return
        with self._read_cond:
            retired = self._buffers[self._published]
            self._published = 1 - self._published
            self._version += 1
            while retired.readers > 0:
                self._read_cond.wait()
        self._replay(retired, journal)

    @contextmanager
    def batch(self):
        """Group mutations into one atomic publication.

        Every ``add``/``remove``/``rebuild`` inside the block lands in the
        standby copy only; readers keep seeing the previous snapshot until
        the block exits, at which point the whole delta publishes at once.
        The maintenance engine wraps each apply round in a batch, which is
        what makes a cache-update round atomic for concurrent lookups.
        """
        with self._write_lock:
            self._batch_depth += 1
            try:
                yield
            finally:
                self._batch_depth -= 1
                if self._batch_depth == 0:
                    self._publish()

    def add(self, serial: int, query: Graph) -> None:
        """Index a cached query graph under its serial number."""
        with self.batch():
            self.op_counts.adds += 1
            self._apply_add(self._standby(), serial, query)
            self._batch_journal.append(("add", serial, query))

    def remove(self, serial: int) -> None:
        """Remove a cached query from the index (no-op if absent)."""
        with self.batch():
            if serial not in self._standby().graphs:
                return
            self.op_counts.removes += 1
            self._apply_remove(self._standby(), serial)
            self._batch_journal.append(("remove", serial))

    def rebuild(self, entries: Iterable[Tuple[int, Graph]]) -> None:
        """Rebuild the index from scratch for a new set of cached queries.

        This mirrors the restore/warm-start path: the new index contents are
        built on the standby copy and swapped in wholesale.
        """
        materialized = list(entries)
        with self.batch():
            self.op_counts.rebuilds += 1
            self.op_counts.adds += len(materialized)
            self._apply_rebuild(self._standby(), materialized)
            self._batch_journal.append(("rebuild", materialized))

    # ------------------------------------------------------------------ #
    # Candidate generation (to be confirmed by sub-iso tests).
    # ------------------------------------------------------------------ #
    def query_features(self, query: Graph) -> Counter:
        """Feature counter of a new query (shared by both directions).

        Memoised on the query's labelled structure: repeated queries (the
        common case under skewed workloads) pay for path extraction once.
        Callers must treat the returned counter as read-only.
        """
        features = self._feature_memo.get(query)
        if features is None:
            features = path_features(query, self._max_path_length)
            with self._memo_lock:
                if len(self._feature_memo) >= self.FEATURE_MEMO_LIMIT:
                    self._feature_memo.clear()
                self._feature_memo[query] = features
        return features

    def candidate_supergraphs(
        self, query: Graph, features: Optional[Counter] = None
    ) -> FrozenSet[int]:
        """Cached queries that *may contain* ``query`` (``Resultsub`` candidates)."""
        with self.view() as snapshot:
            return snapshot.candidate_supergraphs(query, features)

    def candidate_subgraphs(
        self, query: Graph, features: Optional[Counter] = None
    ) -> FrozenSet[int]:
        """Cached queries that *may be contained in* ``query`` (``Resultsuper`` candidates)."""
        with self.view() as snapshot:
            return snapshot.candidate_subgraphs(query, features)

    # ------------------------------------------------------------------ #
    def approximate_size_bytes(self) -> int:
        """Rough memory footprint of the index (trie + feature counters).

        Reports one copy's footprint — the logical index size the
        paper-facing space-overhead figure measures.  A double-buffered
        index (non-``sync`` maintenance modes) physically holds two copies.
        """
        with self.view() as snapshot:
            return snapshot.approximate_size_bytes()
