"""GCindex: the combined subgraph/supergraph index over cached queries.

GraphCache indexes the *cached query graphs* (not the dataset) so that, given
a new query ``g``, it can quickly find

* ``Resultsub(g)`` — cached queries ``g'`` with ``g ⊆ g'`` (``g`` is a
  subgraph of a previous query), and
* ``Resultsuper(g)`` — cached queries ``g''`` with ``g'' ⊆ g`` (``g`` is a
  supergraph of a previous query).

The index is loosely based on the GraphGrepSX path trie (as in the paper,
§6.1), augmented with per-query feature counters so the same structure serves
both directions:

* sub-direction filtering uses the trie: a cached query can only be a
  supergraph of ``g`` — i.e. contain ``g`` — if it contains every label path
  of ``g`` at least as often;
* super-direction filtering compares the cached query's stored feature
  counter against ``g``'s counter (the cache holds at most a few hundred
  entries, so the scan is cheap), plus vertex/edge/label-histogram dominance.

Both filters are *necessary-condition* filters: surviving candidates are then
confirmed with an actual sub-iso test by the GC processors.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..ftv.features import path_features
from ..ftv.trie import PathTrie
from ..graphs.graph import Graph
from ..graphs.signatures import could_be_subgraph

__all__ = ["IndexOpCounts", "QueryGraphIndex"]


@dataclass
class IndexOpCounts:
    """Deterministic mutation counters of one :class:`QueryGraphIndex`.

    ``adds``/``removes`` count per-query index mutations (a rebuild's
    re-insertions also land in ``adds``); ``rebuilds`` counts whole-index
    swaps.  The maintenance benchmark asserts on :attr:`incremental_ops`
    deltas to prove a cache-update round touches O(window) index entries,
    not O(cache).
    """

    adds: int = 0
    removes: int = 0
    rebuilds: int = 0

    @property
    def incremental_ops(self) -> int:
        """Total per-query mutations (adds + removes)."""
        return self.adds + self.removes


class QueryGraphIndex:
    """Counted path index over a set of cached query graphs.

    Parameters
    ----------
    max_path_length:
        Maximum label-path length (in edges) extracted from each query graph.
        Queries are small, so a modest length (3 by default in
        :class:`~repro.core.config.GraphCacheConfig`) gives good pruning at a
        tiny indexing cost.
    """

    #: Number of (longest-first) features used as the filtering probe.  Longer
    #: paths are the most selective features; using only a bounded probe keeps
    #: GC's per-query filtering overhead small and independent of query size,
    #: and is sound — weakening a necessary-condition filter can only let more
    #: candidates through to the confirmation sub-iso test.
    PROBE_LIMIT = 24

    #: Maximum number of memoised query-feature counters (safety valve; the
    #: memo is keyed by the query's labelled structure, which Zipf-skewed
    #: workloads repeat heavily).
    FEATURE_MEMO_LIMIT = 8192

    def __init__(self, max_path_length: int = 3) -> None:
        self._max_path_length = max_path_length
        #: Deterministic mutation counters (see :class:`IndexOpCounts`).
        self.op_counts = IndexOpCounts()
        self._trie = PathTrie()
        self._features: Dict[int, Counter] = {}
        self._probes: Dict[int, Tuple[Tuple[Tuple[str, ...], int], ...]] = {}
        self._graphs: Dict[int, Graph] = {}
        self._feature_memo: Dict[Graph, Counter] = {}
        # Guards index mutation (add/remove/rebuild) and compound reads so a
        # GCindex rebuild never interleaves with candidate generation.  The
        # query pipeline additionally serializes processor stages behind the
        # cache-level GC lock; this lock protects direct concurrent use.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def max_path_length(self) -> int:
        """Maximum indexed label-path length in edges."""
        return self._max_path_length

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, serial: int) -> bool:
        return serial in self._graphs

    def serials(self) -> List[int]:
        """Serial numbers of every indexed query."""
        return list(self._graphs)

    def graph(self, serial: int) -> Graph:
        """Return the indexed query graph with the given serial."""
        return self._graphs[serial]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _probe_of(features: Counter) -> Tuple[Tuple[Tuple[str, ...], int], ...]:
        """The most selective (longest) features of a counter, probe-limited."""
        ordered = sorted(features.items(), key=lambda item: (-len(item[0]), item[0]))
        return tuple(ordered[: QueryGraphIndex.PROBE_LIMIT])

    def add(self, serial: int, query: Graph) -> None:
        """Index a cached query graph under its serial number."""
        with self._lock:
            self.op_counts.adds += 1
            features = self.query_features(query)
            self._trie.insert_features(features, serial)
            self._features[serial] = features
            self._probes[serial] = self._probe_of(features)
            self._graphs[serial] = query

    def remove(self, serial: int) -> None:
        """Remove a cached query from the index (no-op if absent)."""
        with self._lock:
            if serial not in self._graphs:
                return
            self.op_counts.removes += 1
            self._trie.remove_owner(serial)
            del self._features[serial]
            del self._probes[serial]
            del self._graphs[serial]

    def rebuild(self, entries: Iterable[Tuple[int, Graph]]) -> None:
        """Rebuild the index from scratch for a new set of cached queries.

        This mirrors the Window Manager's re-indexing step: the new index is
        built and swapped in wholesale after a cache-update round.
        """
        with self._lock:
            self.op_counts.rebuilds += 1
            self._trie = PathTrie()
            self._features = {}
            self._probes = {}
            self._graphs = {}
            for serial, query in entries:
                self.add(serial, query)

    # ------------------------------------------------------------------ #
    # Candidate generation (to be confirmed by sub-iso tests).
    # ------------------------------------------------------------------ #
    def query_features(self, query: Graph) -> Counter:
        """Feature counter of a new query (shared by both directions).

        Memoised on the query's labelled structure: repeated queries (the
        common case under skewed workloads) pay for path extraction once.
        Callers must treat the returned counter as read-only.
        """
        features = self._feature_memo.get(query)
        if features is None:
            features = path_features(query, self._max_path_length)
            with self._lock:
                if len(self._feature_memo) >= self.FEATURE_MEMO_LIMIT:
                    self._feature_memo.clear()
                self._feature_memo[query] = features
        return features

    def candidate_supergraphs(
        self, query: Graph, features: Optional[Counter] = None
    ) -> FrozenSet[int]:
        """Cached queries that *may contain* ``query`` (``Resultsub`` candidates)."""
        with self._lock:
            if not self._graphs:
                return frozenset()
            features = features if features is not None else self.query_features(query)
            probe = dict(self._probe_of(features))
            candidates = self._trie.filter(probe)
            return frozenset(
                serial
                for serial in candidates
                if could_be_subgraph(query, self._graphs[serial])
            )

    def candidate_subgraphs(
        self, query: Graph, features: Optional[Counter] = None
    ) -> FrozenSet[int]:
        """Cached queries that *may be contained in* ``query`` (``Resultsuper`` candidates)."""
        with self._lock:
            if not self._graphs:
                return frozenset()
            features = features if features is not None else self.query_features(query)
            survivors: List[int] = []
            for serial, probe in self._probes.items():
                cached_graph = self._graphs[serial]
                if not could_be_subgraph(cached_graph, query):
                    continue
                if all(features.get(feature, 0) >= count for feature, count in probe):
                    survivors.append(serial)
            return frozenset(survivors)

    # ------------------------------------------------------------------ #
    def approximate_size_bytes(self) -> int:
        """Rough memory footprint of the index (trie + feature counters)."""
        counters = sum(
            48 + 24 * len(counter) for counter in self._features.values()
        )
        return self._trie.approximate_size_bytes() + counters
