"""GraphCacheService: a batched, concurrency-ready facade over GraphCache.

The ROADMAP's north-star scenario is heavy query traffic against one shared
cache.  :class:`GraphCacheService` serves that shape and scales along two
axes, depending on what it wraps:

* **Plain** :class:`~repro.core.cache.GraphCache` — Method-M filtering (the
  cache-state independent ``MfilterStage``) is prefetched for the batch on a
  thread pool, while the GC stages — processors, pruning, verification and
  the serialized commit — still execute in submission order on the calling
  thread.  One GC lock means GC stages never overlap.
* :class:`~repro.core.sharding.ShardedGraphCache` — the batch is partitioned
  by the deterministic shard router and each shard's sub-batch runs its
  **full pipelines** (processors, prune, verify, commit) on its own worker
  thread: N shards, N GC locks, N concurrent commits.

Because ``Mfilter`` reads only the method's own dataset index, prefetching it
concurrently cannot change what any later stage observes; and because each
shard processes its sub-batch in submission order, sharded execution is
*deterministically equivalent* to a serial loop over ``cache.query``:
byte-identical answer sets and identical deterministic work counters
(``subiso_tests_alleviated``, ``containment_tests``, ...) per shard and in
aggregate, for any workload (property-tested in
``tests/core/test_pipeline_concurrency.py`` and
``tests/core/test_sharding_concurrency.py``).  Wall-clock timings are the
only thing that may differ.  The one deliberate exception is time-*based*
admission control (``admission_control=True``), whose expensiveness threshold
calibrates on measured wall-clock ratios and is thus non-deterministic even
across two serial runs.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..methods.base import Method
from .cache import CacheQueryResult, GraphCache
from .config import GraphCacheConfig
from .policies import MaintenanceReport
from .sharding import ShardedGraphCache, build_cache

__all__ = ["GraphCacheService"]


class GraphCacheService:
    """Batched query service over one (thread-safe) cache, plain or sharded.

    Parameters
    ----------
    cache:
        The cache instance to serve queries through — a :class:`GraphCache`
        or a :class:`~repro.core.sharding.ShardedGraphCache`.  One service
        per cache; several services may also share a cache — the underlying
        stores and the per-(shard-)cache GC locks make that safe.
    """

    def __init__(self, cache: Union[GraphCache, ShardedGraphCache]) -> None:
        self._cache = cache

    @classmethod
    def for_method(
        cls,
        method: Method,
        config: Optional[GraphCacheConfig] = None,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> "GraphCacheService":
        """Build a fresh cache over ``method`` (sharded when the config says
        so) and wrap it in a service."""
        return cls(build_cache(method, config=config, matcher=matcher))

    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> Union[GraphCache, ShardedGraphCache]:
        """The wrapped cache (exposed for inspection and statistics)."""
        return self._cache

    def query(self, query: Graph) -> CacheQueryResult:
        """Answer a single query (plain delegation to the cache)."""
        return self._cache.query(query)

    def query_many(
        self, queries: Iterable[Graph], jobs: int = 1
    ) -> List[CacheQueryResult]:
        """Answer a batch of independent queries, in order.

        With ``jobs > 1`` over a plain cache, Method M's filtering is
        prefetched for the whole batch on a pool of ``jobs`` worker threads,
        overlapping with the GC stages of earlier queries; the GC stages run
        in submission order.  Over a sharded cache, the batch is partitioned
        by the shard router and up to ``jobs`` shards execute their full
        pipelines concurrently, each in submission order.  Either way,
        results and work counters are byte-identical to a serial
        ``cache.query`` loop.
        """
        if jobs < 1:
            raise CacheError(f"jobs must be >= 1, got {jobs}")
        ordered: Sequence[Graph] = list(queries)
        if jobs == 1 or len(ordered) <= 1:
            return [self._cache.query(query) for query in ordered]
        if isinstance(self._cache, ShardedGraphCache):
            # Any shard count, including 1: the sharded path degenerates to a
            # single worker draining one bucket in submission order, which is
            # exactly a serial loop (ShardedGraphCache has no prefilter hook).
            return self._query_many_sharded(self._cache, ordered, jobs)
        return self._query_many_prefiltered(ordered, jobs)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _query_many_sharded(
        cache: ShardedGraphCache, ordered: Sequence[Graph], jobs: int
    ) -> List[CacheQueryResult]:
        """Partition by shard; each shard runs full pipelines on a worker.

        Every query keeps its batch position, so the returned list is in
        submission order even though shards complete independently.  Within a
        shard the sub-batch order equals submission order — the property that
        makes per-shard counters deterministic.
        """
        buckets: Dict[int, List[Tuple[int, Graph]]] = {}
        for position, query in enumerate(ordered):
            buckets.setdefault(cache.shard_of(query), []).append((position, query))

        results: List[Optional[CacheQueryResult]] = [None] * len(ordered)

        def run_shard(shard_id: int) -> None:
            shard = cache.shards[shard_id]
            for position, query in buckets[shard_id]:
                results[position] = shard.query(query)

        workers = min(jobs, len(buckets)) or 1
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="gc-shard"
        ) as pool:
            futures = [pool.submit(run_shard, shard_id) for shard_id in buckets]
            for future in futures:
                future.result()  # re-raises any shard-side exception
        return list(results)  # type: ignore[arg-type]

    def _query_many_prefiltered(
        self, ordered: Sequence[Graph], jobs: int
    ) -> List[CacheQueryResult]:
        """Plain cache: overlap Mfilter prefetch with in-order GC stages."""
        method = self._cache.method

        def prefilter(query: Graph) -> Tuple[FrozenSet[int], float]:
            started = time.perf_counter()
            candidates = frozenset(method.candidates(query))
            return candidates, time.perf_counter() - started

        # Bounded look-ahead: keep ~2*jobs prefetches in flight instead of
        # submitting the whole batch, so peak memory stays O(jobs) candidate
        # sets rather than O(batch) while the worker pool never starves.
        lookahead = 2 * jobs
        results: List[CacheQueryResult] = []
        pending: deque = deque()
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="gc-prefilter"
        ) as pool:
            for query in ordered[:lookahead]:
                pending.append(pool.submit(prefilter, query))
            for position, query in enumerate(ordered):
                candidates, filter_time = pending.popleft().result()
                if position + lookahead < len(ordered):
                    pending.append(pool.submit(prefilter, ordered[position + lookahead]))
                results.append(
                    self._cache.execute_prefiltered(query, candidates, filter_time)
                )
        return results

    def answers_many(
        self, queries: Iterable[Graph], jobs: int = 1
    ) -> List[FrozenSet[int]]:
        """Convenience wrapper returning only the answer sets, in order."""
        return [result.answer_ids for result in self.query_many(queries, jobs=jobs)]

    def drain_maintenance(self) -> None:
        """Block until the wrapped cache's pending maintenance is applied.

        Relevant under ``maintenance_mode="background"``: call it before
        reading maintenance reports/journals (or rely on the drain-on-close
        and drain-before-snapshot guarantees).  Must not be called while
        holding a shard's GC lock.
        """
        self._cache.drain_maintenance()

    def close(self) -> None:
        """Drain pending maintenance and release the cache's resources."""
        self._cache.close()

    def maintenance_reports(self) -> List[MaintenanceReport]:
        """Every cache-update round the wrapped cache has run so far.

        Sharded caches report all shards' rounds (grouped by shard id); each
        report carries its :class:`~repro.core.policies.plan.MaintenancePlan`
        and the O(window) apply-side op counters, so a service operator can
        audit admission/eviction decisions without touching cache internals.
        """
        if isinstance(self._cache, ShardedGraphCache):
            return self._cache.maintenance_reports()
        return self._cache.window_manager.reports
