"""GraphCacheService: a batched, concurrency-ready facade over GraphCache.

The ROADMAP's north-star scenario is heavy query traffic against one shared
cache.  :class:`GraphCacheService` serves that shape: it accepts a batch of
independent queries and overlaps their Method-M filtering (the cache-state
independent ``MfilterStage``) across a thread pool, while the GC stages —
processors, pruning, verification and the serialized commit — still execute
in submission order on the calling thread.

Because ``Mfilter`` reads only the method's own dataset index, prefetching it
concurrently cannot change what any later stage observes; the service is
therefore *deterministically equivalent* to a serial loop of
``GraphCache.query``: byte-identical answer sets and identical deterministic
work counters (``subiso_tests_alleviated``, ``containment_tests``, ...) for
any workload (property-tested in ``tests/core/test_pipeline_concurrency.py``).
Wall-clock timings are the only thing that may differ.  The one deliberate
exception is time-*based* admission control (``admission_control=True``),
whose expensiveness threshold calibrates on measured wall-clock ratios and is
thus non-deterministic even across two serial runs.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..methods.base import Method
from .cache import CacheQueryResult, GraphCache
from .config import GraphCacheConfig

__all__ = ["GraphCacheService"]


class GraphCacheService:
    """Batched query service over one (thread-safe) :class:`GraphCache`.

    Parameters
    ----------
    cache:
        The cache instance to serve queries through.  One service per cache;
        several services may also share a cache — the underlying stores and
        the pipeline's GC lock make that safe.
    """

    def __init__(self, cache: GraphCache) -> None:
        self._cache = cache

    @classmethod
    def for_method(
        cls,
        method: Method,
        config: Optional[GraphCacheConfig] = None,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> "GraphCacheService":
        """Build a fresh cache over ``method`` and wrap it in a service."""
        return cls(GraphCache(method, config=config, matcher=matcher))

    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> GraphCache:
        """The wrapped cache (exposed for inspection and statistics)."""
        return self._cache

    def query(self, query: Graph) -> CacheQueryResult:
        """Answer a single query (plain delegation to the cache)."""
        return self._cache.query(query)

    def query_many(
        self, queries: Iterable[Graph], jobs: int = 1
    ) -> List[CacheQueryResult]:
        """Answer a batch of independent queries, in order.

        With ``jobs > 1``, Method M's filtering is prefetched for the whole
        batch on a pool of ``jobs`` worker threads, overlapping with the GC
        stages of earlier queries; processors/prune/verify/commit run in
        submission order so results and work counters are byte-identical to
        a serial ``GraphCache.query`` loop.
        """
        if jobs < 1:
            raise CacheError(f"jobs must be >= 1, got {jobs}")
        ordered: Sequence[Graph] = list(queries)
        if jobs == 1 or len(ordered) <= 1:
            return [self._cache.query(query) for query in ordered]

        method = self._cache.method

        def prefilter(query: Graph) -> Tuple[FrozenSet[int], float]:
            started = time.perf_counter()
            candidates = frozenset(method.candidates(query))
            return candidates, time.perf_counter() - started

        # Bounded look-ahead: keep ~2*jobs prefetches in flight instead of
        # submitting the whole batch, so peak memory stays O(jobs) candidate
        # sets rather than O(batch) while the worker pool never starves.
        lookahead = 2 * jobs
        results: List[CacheQueryResult] = []
        pending: deque = deque()
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="gc-prefilter"
        ) as pool:
            for query in ordered[:lookahead]:
                pending.append(pool.submit(prefilter, query))
            for position, query in enumerate(ordered):
                candidates, filter_time = pending.popleft().result()
                if position + lookahead < len(ordered):
                    pending.append(pool.submit(prefilter, ordered[position + lookahead]))
                results.append(
                    self._cache.execute_prefiltered(query, candidates, filter_time)
                )
        return results

    def answers_many(
        self, queries: Iterable[Graph], jobs: int = 1
    ) -> List[FrozenSet[int]]:
        """Convenience wrapper returning only the answer sets, in order."""
        return [result.answer_ids for result in self.query_many(queries, jobs=jobs)]
