"""Compatibility shim: admission control moved to :mod:`repro.core.policies`.

The expensiveness-threshold controller of §6.2 now lives in
:mod:`repro.core.policies.admission` (with persistable calibration state and
a registry next to the replacement policies).  This module re-exports the
seed-era name so existing imports keep working.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.admission is a deprecated re-export shim; "
    "import from repro.core.policies instead",
    DeprecationWarning,
    stacklevel=2,
)

from .policies.admission import AdmissionController

__all__ = ["AdmissionController"]
