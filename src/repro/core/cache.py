"""GraphCache: the semantic cache front end for subgraph/supergraph queries.

:class:`GraphCache` wraps any :class:`~repro.methods.base.Method` ("Method M",
an FTV method or an SI method) and answers the same queries faster by reusing
the answer sets of previously executed queries (§4, Figure 2):

1. the query is filtered by Method M (``Mfilter``) producing ``CS_M``;
2. in parallel (conceptually), the GC processors look up the GCindex for
   cached queries that contain / are contained in the new query;
3. the Candidate Set Pruner applies equations (1) and (2) and the two special
   cases, producing a reduced candidate set and a set of "free" answers;
4. only the reduced candidate set is verified with ``Mverifier``;
5. statistics flow to the Statistics Manager, and the query joins the Window;
   when the Window fills up, the Window Manager runs admission control, the
   replacement policy and the GCindex rebuild.

The hit-path itself is implemented as an explicit staged dataflow in
:mod:`repro.core.pipeline` (``MfilterStage`` → ``ProcessorStage`` →
``PruneStage`` → ``VerifyStage`` → ``CommitStage``); :class:`GraphCache` is a
thin orchestrator that owns the shared state and delegates each query to a
:class:`~repro.core.pipeline.QueryPipeline`.  Batched, multi-query execution
lives in :class:`~repro.core.service.GraphCacheService`.

Correctness guarantee (proved in the companion paper [34] and enforced by the
property tests): for every query, the answer set returned with the cache is
exactly the answer set Method M would return on its own.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.runtime import make_lock, make_rlock
from ..exceptions import CacheError
from ..graphs.graph import Graph
from ..graphs.packed import PackedGraphView
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.cost import estimate_subiso_cost
from ..isomorphism.registry import matcher_by_name
from ..methods.base import Method
from ..methods.executor import verify_candidates
from .backends import StorageBackend, create_backend
from .config import GraphCacheConfig
from .pipeline import (
    CommitStage,
    MfilterStage,
    ProcessorStage,
    PruneStage,
    QueryPipeline,
    StageContext,
    VerifyStage,
)
from .policies import (
    MaintenanceEngine,
    MaintenancePlan,
    MaintenanceScheduler,
    PlanJournal,
    WindowManager,
    admission_by_name,
    create_scheduler,
    policy_by_name,
)
from .processors import CacheProcessors, ProcessorOutcome
from .pruner import CandidateSetPruner, PruningResult
from .query_index import QueryGraphIndex
from .statistics import CachedQueryStats, StatisticsManager
from .stores import (
    CacheEntry,
    CacheEntryCodec,
    CacheStore,
    WindowEntry,
    WindowEntryCodec,
    WindowStore,
)

__all__ = ["GraphCache", "CacheQueryResult", "CacheRuntimeStatistics"]


@dataclass(frozen=True)
class CacheQueryResult:
    """Result and accounting of one query answered through GraphCache.

    Attributes
    ----------
    serial:
        The serial number GraphCache assigned to the query.
    answer_ids:
        Dataset-graph ids in the query's answer set (identical to what Method
        M alone would return).
    method_candidates:
        Size of Method M's candidate set before cache-based pruning.
    final_candidates:
        Number of candidates actually verified after pruning.
    direct_answers:
        Number of answers obtained from the cache without verification.
    subiso_tests:
        Number of dataset-graph sub-iso tests executed.
    filter_time_s:
        Method M filtering time.
    gc_filter_time_s:
        GraphCache processor time (GCindex lookups + query-vs-query tests).
    verify_time_s:
        Effective verification time (divided by Method M's parallelism).
    maintenance_time_s:
        Cache-maintenance time triggered by this query (0 unless the query
        completed a window); reported separately, as in Figure 10.
    shortcut:
        ``"exact"``, ``"empty"`` or ``None``.
    sub_hits / super_hits:
        Number of cached queries whose answer sets were exploited via the
        subgraph / supergraph relationship.
    containment_tests:
        Query-vs-query sub-iso tests actually executed by the GC processors.
    containment_memo_hits:
        Query-vs-query verdicts answered from the containment memo instead.
    stage_times:
        Per-stage wall-clock seconds, keyed by pipeline stage name
        (:data:`~repro.core.pipeline.STAGE_NAMES`).  In parallel execution
        mode ``mfilter`` and ``processors`` overlap in wall-clock, so the
        values sum to more than the observed latency by design.
    short_circuit_stage:
        Name of the pipeline stage that short-circuited verification
        (``"prune"`` on an exact/empty shortcut), or ``None``.
    decode_avoided:
        1 when the query reached the cache as a CSR-native
        :class:`~repro.graphs.packed.PackedGraphView` (packed-match serving:
        no ``Graph`` was constructed for it), else 0.  The multi-process
        identity suites pin ``sum(decode_avoided) == requests served``.
    """

    serial: int
    answer_ids: FrozenSet[int]
    method_candidates: int
    final_candidates: int
    direct_answers: int
    subiso_tests: int
    filter_time_s: float
    gc_filter_time_s: float
    verify_time_s: float
    maintenance_time_s: float
    shortcut: Optional[str]
    sub_hits: int
    super_hits: int
    containment_tests: int = 0
    containment_memo_hits: int = 0
    stage_times: Dict[str, float] = field(default_factory=dict)
    short_circuit_stage: Optional[str] = None
    decode_avoided: int = 0

    @property
    def total_time_s(self) -> float:
        """Query response time: filtering (M + GC) plus verification."""
        return self.filter_time_s + self.gc_filter_time_s + self.verify_time_s

    @property
    def cache_hit(self) -> bool:
        """``True`` if the cache contributed to this query in any way."""
        return bool(self.sub_hits or self.super_hits or self.shortcut)


@dataclass
class CacheRuntimeStatistics:
    """Aggregate counters maintained by a :class:`GraphCache` instance."""

    queries_processed: int = 0
    cache_hits: int = 0
    exact_hits: int = 0
    empty_shortcuts: int = 0
    subiso_tests: int = 0
    subiso_tests_alleviated: int = 0
    containment_tests: int = 0
    containment_memo_hits: int = 0
    decode_avoided: int = 0
    total_query_time_s: float = 0.0
    total_maintenance_time_s: float = 0.0
    # Replication/recovery accounting: journal frames applied through
    # replay_plan() (replica followers and crash recovery), the shipped
    # bytes they carried, and the wall-clock spent applying them.
    replay_rounds: int = 0
    replay_bytes: int = 0
    replay_apply_time_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "queries_processed": self.queries_processed,
            "cache_hits": self.cache_hits,
            "exact_hits": self.exact_hits,
            "empty_shortcuts": self.empty_shortcuts,
            "subiso_tests": self.subiso_tests,
            "subiso_tests_alleviated": self.subiso_tests_alleviated,
            "containment_tests": self.containment_tests,
            "containment_memo_hits": self.containment_memo_hits,
            "decode_avoided": self.decode_avoided,
            "total_query_time_s": self.total_query_time_s,
            "total_maintenance_time_s": self.total_maintenance_time_s,
            "replay_rounds": self.replay_rounds,
            "replay_bytes": self.replay_bytes,
            "replay_apply_time_s": self.replay_apply_time_s,
        }


class GraphCache:
    """Semantic cache front end over a pluggable Method M.

    Parameters
    ----------
    method:
        The query-processing method to expedite (FTV or SI).
    config:
        Cache configuration; defaults to the paper's defaults.  Setting
        ``config.execution_mode = "parallel"`` runs Method M's filter
        concurrently with the GC processors (Figure 2's parallel arrow);
        ``config.containment_matcher`` names the matcher used for
        query-vs-query containment checks.
    matcher:
        Explicit matcher override for the containment checks.  The matcher is
        resolved exactly once, here: the explicit argument wins, then
        ``config.containment_matcher`` (by registry name), then the method's
        own verifier — so every pipeline stage shares one matcher instance
        and its plan cache.

    Examples
    --------
    >>> from repro.graphs.generators import aids_like
    >>> from repro.methods import SIMethod
    >>> dataset = aids_like(scale=0.05)
    >>> cache = GraphCache(SIMethod(dataset, matcher="vf2plus"))
    >>> some_query = dataset[0].induced_subgraph(range(5))
    >>> result = cache.query(some_query)
    >>> result.answer_ids  # doctest: +SKIP
    frozenset({0, ...})
    """

    def __init__(
        self,
        method: Method,
        config: Optional[GraphCacheConfig] = None,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        self._method = method
        self._config = config or GraphCacheConfig()
        if self._config.query_mode == "supergraph" and not method.supports_supergraph:
            raise CacheError(f"method {method.name!r} cannot serve supergraph queries")

        # Data layer: the stores are typed facades over the configured
        # storage backend (two tables sharing one SQLite file, or two dicts).
        # packed_match="on" puts the mmap backend in CSR-native view mode:
        # stored queries come back as PackedGraphView objects and no Graph
        # is ever rebuilt on the serving path ("auto" resolves to "on" only
        # inside forked pool workers — see repro.core.workers).
        packed_views = self._config.packed_match.lower() == "on"
        self._cache_store = CacheStore(
            self._config.cache_capacity,
            backend=create_backend(
                self._config.backend,
                CacheEntryCodec(),
                path=self._config.backend_path,
                table="cache_entries",
                packed_views=packed_views,
            ),
        )
        self._window_store = WindowStore(
            self._config.window_size,
            backend=create_backend(
                self._config.backend,
                WindowEntryCodec(),
                path=self._config.backend_path,
                table="window_entries",
                packed_views=packed_views,
            ),
        )
        self._statistics = StatisticsManager()
        # Sync scheduling serializes applies and lookups under the GC lock,
        # so the index keeps one copy; the background/barrier schedulers
        # need the double buffer for lock-free snapshot reads mid-apply.
        self._index = QueryGraphIndex(
            max_path_length=self._config.index_path_length,
            double_buffered=self._config.maintenance_mode.lower() != "sync",
        )
        self._containment_matcher = self._resolve_containment_matcher(matcher)
        self._processors = CacheProcessors(
            self._index, matcher=self._containment_matcher
        )
        self._pruner = CandidateSetPruner(
            self._cache_store, query_mode=self._config.query_mode
        )
        # The maintenance subsystem: policy and admission controller come
        # from the repro.core.policies registries; the engine owns the
        # decide/apply rounds and the incremental utility heap; the
        # scheduler (config.maintenance_mode) decides where rounds execute
        # and journals every applied plan.
        self._gc_lock = make_rlock("gc")
        self._engine = MaintenanceEngine(
            cache_store=self._cache_store,
            statistics=self._statistics,
            index=self._index,
            policy=policy_by_name(self._config.replacement_policy),
            admission=admission_by_name(
                self._config.admission_kind,
                enabled=self._config.admission_control,
                expensive_fraction=self._config.admission_expensive_fraction,
                calibration_windows=self._config.admission_calibration_windows,
                threshold=self._config.admission_threshold,
            ),
        )
        self._scheduler = create_scheduler(
            self._config.maintenance_mode,
            engine=self._engine,
            gc_lock=self._gc_lock,
            journal=PlanJournal(
                self._config.journal_path, fsync=self._config.journal_fsync
            ),
        )
        self._window_manager = WindowManager(
            cache_store=self._cache_store,
            window_store=self._window_store,
            statistics=self._statistics,
            engine=self._engine,
            scheduler=self._scheduler,
        )
        self._serial = 0
        self._runtime = CacheRuntimeStatistics()
        self._results: List[CacheQueryResult] = []
        # Arena-compaction bookkeeping: completed event records (list.append
        # is GIL-atomic — events land from scheduler worker threads) and the
        # backends with a fold currently scheduled (guards double-submission
        # when deltas publish faster than the worker folds).
        self._compaction_events: List[Dict[str, object]] = []
        self._compaction_pending: Set[int] = set()
        self._serial_lock = make_lock("serial")
        self._pipeline = QueryPipeline(
            MfilterStage(method),
            ProcessorStage(self._processors),
            PruneStage(self._pruner),
            VerifyStage(method, query_mode=self._config.query_mode),
            CommitStage(self),
            gc_lock=self._gc_lock,
            parallel_filter=self._config.execution_mode == "parallel",
        )
        self._warm_start_from_backend()

    def _warm_start_from_backend(self) -> None:
        """Adopt entries a durable (write-through) backend already holds.

        Reopening a SQLite-backed cache on an existing database warm-starts
        it without a JSON snapshot: the GCindex is rebuilt from the stored
        query graphs — the same code path the Window Manager uses after a
        cache-update round — and the serial counter resumes past every stored
        serial.  Hit/contribution statistics are *not* in the backend; they
        restart cold and re-accumulate (use :mod:`repro.core.persistence` for
        a full-fidelity restore including statistics).
        """
        entries = list(self._cache_store)
        window_entries = self._window_store.entries()
        if not entries and not window_entries:
            return
        self._index.rebuild((entry.serial, entry.query) for entry in entries)
        for entry in entries:
            self._statistics.register_query(
                CachedQueryStats(
                    serial=entry.serial,
                    order=entry.query.order,
                    size=entry.query.size,
                    distinct_labels=len(entry.query.distinct_labels()),
                )
            )
        for entry in window_entries:
            self._statistics.register_query(
                CachedQueryStats(
                    serial=entry.serial,
                    order=entry.query.order,
                    size=entry.query.size,
                    distinct_labels=len(entry.query.distinct_labels()),
                    filter_time_s=entry.filter_time_s,
                    verify_time_s=entry.verify_time_s,
                )
            )
        self._serial = max(
            [entry.serial for entry in entries]
            + [entry.serial for entry in window_entries]
        )
        self._engine.rebuild_scores()

    def _resolve_containment_matcher(
        self, matcher: Optional[SubgraphMatcher]
    ) -> SubgraphMatcher:
        """Resolve the containment matcher in one place (shared by all stages)."""
        if matcher is not None:
            return matcher
        if self._config.containment_matcher is not None:
            return matcher_by_name(self._config.containment_matcher)
        return self._method.matcher

    # ------------------------------------------------------------------ #
    @property
    def method(self) -> Method:
        """The wrapped Method M."""
        return self._method

    @property
    def config(self) -> GraphCacheConfig:
        """The active configuration."""
        return self._config

    @property
    def statistics_manager(self) -> StatisticsManager:
        """The Statistics Manager (exposed for inspection and tests)."""
        return self._statistics

    @property
    def window_manager(self) -> WindowManager:
        """The Window Manager (exposed for inspection and tests)."""
        return self._window_manager

    @property
    def maintenance_engine(self) -> MaintenanceEngine:
        """The maintenance engine (decide/apply rounds, utility heap)."""
        return self._engine

    @property
    def maintenance_scheduler(self) -> MaintenanceScheduler:
        """The scheduler deciding where maintenance rounds execute."""
        return self._scheduler

    @property
    def plan_journal(self) -> PlanJournal:
        """The append-only journal of every applied maintenance plan."""
        return self._scheduler.journal

    @property
    def runtime_statistics(self) -> CacheRuntimeStatistics:
        """Aggregate counters since the cache was created."""
        return self._runtime

    @property
    def pipeline(self) -> QueryPipeline:
        """The staged query pipeline (exposed for inspection and tests)."""
        return self._pipeline

    @property
    def containment_matcher(self) -> SubgraphMatcher:
        """The single matcher shared by the GC processors' containment checks."""
        return self._containment_matcher

    @property
    def cached_serials(self) -> List[int]:
        """Serial numbers of the currently cached queries."""
        return self._cache_store.serials()

    @property
    def current_serial(self) -> int:
        """The last serial number assigned to a query (0 on a fresh cache).

        Snapshots persist this so a restored cache continues numbering where
        the saved one stopped — window queries hold serials too, so this is
        *not* derivable from ``queries_processed``.
        """
        with self._serial_lock:
            return self._serial

    def cached_entry(self, serial: int) -> CacheEntry:
        """Return a cached entry by serial number."""
        return self._cache_store.get(serial)

    def window_entries(self) -> List[WindowEntry]:
        """The current window contents (copies, in arrival order)."""
        return self._window_store.entries()

    @property
    def query_index(self) -> QueryGraphIndex:
        """The GCindex (exposed for inspection; its ``version`` is the
        publication counter the replica-identity checks compare)."""
        return self._index

    def __len__(self) -> int:
        return len(self._cache_store)

    def cache_size_bytes(self) -> int:
        """Approximate memory footprint of GC's data (index + answer sets)."""
        answers = sum(
            64 + 8 * len(entry.answer_ids) + 32 * entry.query.order
            for entry in self._cache_store
        )
        return self._index.approximate_size_bytes() + answers

    # ------------------------------------------------------------------ #
    def query(self, query: Graph) -> CacheQueryResult:
        """Answer a subgraph (or supergraph) query through the cache."""
        return self._pipeline.execute(self._new_context(query))

    def execute_prefiltered(
        self,
        query: Graph,
        method_candidates: FrozenSet[int],
        filter_time_s: float = 0.0,
    ) -> CacheQueryResult:
        """Answer a query whose Mfilter stage was already computed elsewhere.

        This is the entry point of the batched service facade: Mfilter is
        cache-state independent, so candidate sets prefetched concurrently
        feed the remaining (serially executed) GC stages with answers and
        work counters byte-identical to :meth:`query`.
        """
        ctx = self._new_context(
            query,
            method_candidates=frozenset(method_candidates),
            filter_time_s=filter_time_s,
        )
        return self._pipeline.execute(ctx)

    def _new_context(
        self,
        query: Graph,
        method_candidates: Optional[FrozenSet[int]] = None,
        filter_time_s: float = 0.0,
    ) -> StageContext:
        with self._serial_lock:
            self._serial += 1
            serial = self._serial
        return StageContext(
            query=query,
            serial=serial,
            method_candidates=method_candidates,
            filter_time_s=filter_time_s,
        )

    def _commit(self, ctx: StageContext) -> None:
        """CommitStage body: statistics, window admission, result construction.

        Runs under the pipeline's GC lock (one commit at a time), so window
        maintenance, replacement decisions and counters stay deterministic.
        """
        started = time.perf_counter()
        outcome, pruning = ctx.outcome, ctx.pruning
        answer_ids = frozenset(ctx.verified_answers | pruning.direct_answers)

        # Statistics monitoring: credit contributing cached queries.
        self._record_contributions(ctx.query, ctx.serial, outcome, pruning)

        # Window admission: the executed query joins the Window with its
        # first-execution costs (measured against Method M's own candidate
        # set semantics: filtering time + its verification effort).
        maintenance_time = 0.0
        report = self._window_manager.add_query(
            WindowEntry(
                serial=ctx.serial,
                query=ctx.query,
                answer_ids=answer_ids,
                filter_time_s=ctx.filter_time_s + outcome.elapsed_s,
                verify_time_s=ctx.verify_time_s,
            )
        )
        if report is not None:
            maintenance_time = report.elapsed_s
        ctx.maintenance_time_s = maintenance_time

        ctx.stage_times["commit"] = time.perf_counter() - started
        result = CacheQueryResult(
            serial=ctx.serial,
            answer_ids=answer_ids,
            method_candidates=len(ctx.method_candidates),
            final_candidates=len(pruning.final_candidates),
            direct_answers=len(pruning.direct_answers),
            subiso_tests=ctx.subiso_tests,
            filter_time_s=ctx.filter_time_s,
            gc_filter_time_s=outcome.elapsed_s,
            verify_time_s=ctx.verify_time_s,
            maintenance_time_s=maintenance_time,
            shortcut=pruning.shortcut,
            sub_hits=len(outcome.result_sub),
            super_hits=len(outcome.result_super),
            containment_tests=outcome.containment_tests,
            containment_memo_hits=outcome.memo_hits,
            stage_times=dict(ctx.stage_times),
            short_circuit_stage=ctx.short_circuit_stage,
            decode_avoided=1 if isinstance(ctx.query, PackedGraphView) else 0,
        )
        self._update_runtime(result, len(ctx.method_candidates))
        self._results.append(result)
        ctx.result = result

    def answer(self, query: Graph) -> FrozenSet[int]:
        """Convenience wrapper returning only the answer set."""
        return self.query(query).answer_ids

    def drain_maintenance(self) -> None:
        """Block until every scheduled maintenance round has been applied.

        A no-op under ``sync``/``barrier`` scheduling (rounds complete before
        the submitting query returns).  Under ``background`` scheduling this
        is the quiescence point: after it returns, every filled window has
        been decided, applied and journaled.  Callers must not hold the GC
        lock (a pending apply needs it briefly to finish).
        """
        self._scheduler.drain()

    def snapshot_state(
        self,
    ) -> Tuple[
        List[CacheEntry],
        List[CachedQueryStats],
        List[WindowEntry],
        int,
        Dict[str, object],
    ]:
        """Consistent view of the persistable state (the snapshot-save twin
        of :meth:`restore`).

        Taken under the GC lock, so a snapshot of a cache that is concurrently
        serving queries can never be torn: no entry can be evicted between
        listing and reading it, and no window entry can slip into the cache
        between the two sections.  Returns ``(entries, stats, window_entries,
        next_serial, maintenance)`` with statistics covering cached and
        window queries; ``maintenance`` is the engine's state record
        (admission calibration, adaptive-threshold history — snapshot format
        v3 carries it so a cache interrupted mid-calibration resumes exactly).

        **Drain-before-snapshot**: pending background maintenance rounds are
        applied first, so a snapshot never captures a half-executed plan —
        every journaled decision is either fully reflected in the persisted
        stores or not yet decided.  Drain and lock acquisition loop until
        the scheduler is idle *while the GC lock is held*: a round submitted
        by a concurrently committing query between the drain and the lock
        would otherwise race its store/index phases against the reads below.
        Once the lock is held with an idle scheduler, no new round can be
        submitted (submission happens in the commit stage, under this lock).
        """
        while True:
            self.drain_maintenance()
            with self._gc_lock:
                if not self._scheduler.idle():
                    continue  # a round slipped in before we took the lock
                entries = list(self._cache_store)
                window_entries = self._window_store.entries()
                stats = [
                    self._statistics.snapshot(entry.serial)
                    for entry in entries + window_entries
                ]
                return (
                    entries,
                    stats,
                    window_entries,
                    self.current_serial,
                    self._engine.state_record(),
                )

    def restore(
        self,
        entries: Iterable[CacheEntry],
        stats: Iterable[CachedQueryStats] = (),
        next_serial: int = 0,
        window_entries: Iterable[WindowEntry] = (),
        maintenance: Optional[Dict[str, object]] = None,
    ) -> None:
        """Install externally persisted state (the snapshot-load entry point).

        Replaces the cache contents with ``entries``, rebuilds the GCindex —
        the restore twin of the engine's delta path — registers the supplied
        per-query ``stats`` (cached *and* in-flight window queries), refills
        the window with ``window_entries``, re-seeds the engine's utility
        heap from the restored statistics, adopts the persisted
        ``maintenance`` state (admission calibration / adaptive-threshold
        history; ``None`` restarts those cold, as pre-v3 snapshots must) and
        resumes the serial counter at ``max(next_serial, highest restored
        serial)`` so replayed queries never collide with restored ones.

        This is the public API :func:`repro.core.persistence.load_cache`
        builds on; callers never need to reach into the private stores.
        """
        entries = list(entries)
        window_entries = sorted(window_entries, key=lambda entry: entry.serial)
        # Quiesce maintenance before swapping state in: drain, then verify
        # *under the same GC lock hold that performs the swap* that no round
        # slipped in meanwhile (same loop as snapshot_state — an in-flight
        # apply landing on the freshly restored stores would corrupt them).
        while True:
            self.drain_maintenance()
            with self._gc_lock:
                if not self._scheduler.idle():
                    continue  # a round slipped in before we took the lock
                self._cache_store.replace_contents(entries)
                self._index.rebuild(
                    (entry.serial, entry.query) for entry in entries
                )
                self._window_store.drain()  # discard pre-existing window contents
                for entry in window_entries:
                    self._window_store.add(entry)
                for snapshot in stats:
                    self._statistics.register_query(snapshot)
                self._engine.rebuild_scores()
                self._engine.restore_state(maintenance)
                restored_serials = [entry.serial for entry in entries] + [
                    entry.serial for entry in window_entries
                ]
                with self._serial_lock:
                    self._serial = max([next_serial] + restored_serials)
                return

    # ------------------------------------------------------------------ #
    # Replication / recovery: the replay side of the plan journal.
    # ------------------------------------------------------------------ #
    def replay_plan(
        self,
        plan: MaintenancePlan,
        admitted_entries: Sequence[WindowEntry],
        hits: Sequence[Tuple[int, int, float, float, bool]] = (),
        frame_bytes: int = 0,
    ) -> None:
        """Apply one journaled maintenance frame (replica/recovery path).

        The frame goes through
        :meth:`~repro.core.policies.engine.MaintenanceEngine.replay` — the
        sanctioned delta machinery (analyzer rule REPRO008) — under the GC
        lock, then the window store is scrubbed of the serials the round
        consumed and the serial counter advances past every serial the
        frame mentions, so a recovered cache resumes numbering exactly
        where the primary's round left it.  The scheduler and the journal
        are bypassed: a replayed round is never re-journaled.
        """
        started = time.perf_counter()
        with self._gc_lock:
            self._engine.replay(
                plan, admitted_entries, hits=hits, lock=self._gc_lock
            )
            consumed = set(plan.window_serials)
            if consumed:
                survivors = [
                    entry
                    for entry in self._window_store.drain()
                    if entry.serial not in consumed
                ]
                for entry in survivors:
                    self._window_store.add(entry)
            with self._serial_lock:
                self._serial = max(
                    [self._serial, plan.current_serial, *plan.window_serials]
                )
            self._runtime.replay_rounds += 1
            self._runtime.replay_bytes += frame_bytes
            self._runtime.replay_apply_time_s += time.perf_counter() - started

    def lookup(self, query: Graph) -> FrozenSet[int]:
        """Answer a query read-only: no serial, no window, no statistics.

        The replica serving path: Mfilter → GC processors → pruner →
        verification of the surviving candidates, returning exactly the
        answer set :meth:`query` would return — but without committing the
        query to the window or mutating any cache state, so N replicas can
        serve lookups while the primary alone owns admission.
        """
        candidates = frozenset(self._method.candidates(query))
        with self._gc_lock:
            outcome = self._processors.process(query)
            pruning = self._pruner.prune(candidates, outcome)
        verified: FrozenSet[int] = frozenset()
        if pruning.final_candidates:
            verified, _, _, _, _ = verify_candidates(
                self._method,
                query,
                pruning.final_candidates,
                query_mode=self._config.query_mode,
            )
        return frozenset(verified | pruning.direct_answers)

    @classmethod
    def recover(
        cls,
        snapshot: str,
        method: Method,
        journal: Optional[str] = None,
    ) -> "GraphCache":
        """Load a checkpoint and replay the journal rounds past its watermark.

        Convenience front end of
        :func:`repro.core.persistence.recover_cache` (which also handles
        sharded snapshots); see there for the recovery contract.
        """
        from .persistence import recover_cache

        return recover_cache(snapshot, method, journal=journal)

    def close(self) -> None:
        """Release pipeline and data-layer resources (thread pool, backends).

        **Drain-on-close**: the maintenance scheduler finishes every pending
        round (applying and journaling its plan) before the worker stops and
        the backends shut down — a closed cache never leaves a drained
        window undecided.
        """
        self._scheduler.close()
        self._pipeline.close()
        self._cache_store.close()
        self._window_store.close()

    def storage_backends(self) -> Tuple[StorageBackend, StorageBackend]:
        """The (cache, window) store backends — the public data-layer surface."""
        return (self._cache_store.backend, self._window_store.backend)

    def seal_storage(self) -> None:
        """Seal sealable storage backends to their segment files.

        For the mmap backend this compacts each store's arena into its
        read-only segment (atomic publish) so other processes can attach it;
        backends without a ``seal`` method are left untouched.  Call with
        maintenance quiescent (e.g. right before :meth:`close`, or between
        query batches in ``sync`` maintenance mode).
        """
        for backend in self.storage_backends():
            seal = getattr(backend, "seal", None)
            if seal is not None:
                seal()

    def seal_delta_storage(self) -> int:
        """Publish every store's arena tail as delta segments (append-only).

        The long-lived-pool re-seal tick: each mmap backend's
        :meth:`~repro.core.backends.mmapped.MmapBackend.seal_delta` appends
        one ``.deltaN`` file (extents never move).  Afterwards, if
        ``config.compaction_threshold`` is set, any backend whose
        ``dead_bytes / live_bytes`` ratio crossed it gets a full compacting
        fold *scheduled* through the maintenance scheduler — inline under
        ``sync``, on the worker thread (off the query path) under
        ``background``/``barrier``.  Returns the number of records
        published.
        """
        published = 0
        for backend in self.storage_backends():
            seal_delta = getattr(backend, "seal_delta", None)
            if seal_delta is not None:
                published += seal_delta()
        self._maybe_schedule_compaction()
        return published

    @property
    def compaction_events(self) -> List[Dict[str, object]]:
        """Completed automatic-compaction events (oldest first)."""
        return list(self._compaction_events)

    def _maybe_schedule_compaction(self) -> None:
        """Submit a compaction task for every backend over the dead/live threshold."""
        threshold = self._config.compaction_threshold
        if threshold is None:
            return
        for backend in self.storage_backends():
            compact = getattr(backend, "compact", None)
            arena_statistics = getattr(backend, "arena_statistics", None)
            if compact is None or arena_statistics is None:
                continue
            stats = arena_statistics()
            live, dead = stats["live_bytes"], stats["dead_bytes"]
            if dead <= 0:
                continue
            ratio = dead / live if live else float("inf")
            if ratio < threshold:
                continue
            key = id(backend)
            if key in self._compaction_pending:
                continue
            self._compaction_pending.add(key)

            def fold(backend=backend, ratio=ratio, key=key) -> None:
                try:
                    self._compaction_events.append(backend.compact(trigger_ratio=ratio))
                finally:
                    self._compaction_pending.discard(key)

            self._scheduler.submit_task(fold)

    def results(self) -> List[CacheQueryResult]:
        """Per-query results since the cache was created."""
        return list(self._results)

    # ------------------------------------------------------------------ #
    def _record_contributions(
        self,
        query: Graph,
        serial: int,
        outcome: ProcessorOutcome,
        pruning: PruningResult,
    ) -> None:
        """Feed the Statistics Manager with each cached query's contribution."""
        query_labels = max(1, len(query.distinct_labels()))
        for cached_serial, removed_ids in pruning.contributions.items():
            if cached_serial not in self._cache_store:
                continue
            cost_saving = 0.0
            for graph_id in removed_ids:
                target_order = self._method.dataset[graph_id].order
                cost_saving += estimate_subiso_cost(
                    query_order=query.order,
                    query_distinct_labels=query_labels,
                    target_order=target_order,
                )
            # The engine's hit hook feeds the statistics store *and* the
            # incremental utility heap in one call.
            self._engine.on_hit(
                serial=cached_serial,
                benefiting_serial=serial,
                cs_reduction=float(len(removed_ids)),
                cost_reduction=cost_saving,
                special=pruning.shortcut is not None
                and pruning.shortcut_serial == cached_serial,
            )
        # Cached queries that matched but removed nothing still count as hits
        # for the popularity statistics.
        contributing = set(pruning.contributions)
        for cached_serial in (outcome.result_sub | outcome.result_super) - contributing:
            if cached_serial in self._cache_store:
                self._engine.on_hit(
                    serial=cached_serial,
                    benefiting_serial=serial,
                    cs_reduction=0.0,
                    cost_reduction=0.0,
                )

    def _update_runtime(self, result: CacheQueryResult, method_candidates: int) -> None:
        self._runtime.queries_processed += 1
        self._runtime.subiso_tests += result.subiso_tests
        self._runtime.subiso_tests_alleviated += max(
            0, method_candidates - result.subiso_tests
        )
        self._runtime.containment_tests += result.containment_tests
        self._runtime.containment_memo_hits += result.containment_memo_hits
        self._runtime.decode_avoided += result.decode_avoided
        self._runtime.total_query_time_s += result.total_time_s
        self._runtime.total_maintenance_time_s += result.maintenance_time_s
        if result.cache_hit:
            self._runtime.cache_hits += 1
        if result.shortcut == "exact":
            self._runtime.exact_hits += 1
        elif result.shortcut == "empty":
            self._runtime.empty_shortcuts += 1
