"""Type B workloads: query pools with a controlled fraction of no-answer queries (§7.2).

Two query pools are built per dataset:

* an **answer pool** of queries extracted from dataset graphs by random walks
  (start node chosen uniformly over all nodes of all dataset graphs) — these
  are guaranteed to have a non-empty answer set;
* a **no-answer pool**: extracted queries whose node labels are repeatedly
  replaced by random labels from the dataset's alphabet until the query has a
  non-empty candidate set (it cannot be ruled out by cheap label-count
  filtering) but an empty answer set (no dataset graph actually contains it).

A workload is then a sequence of draws: first a biased coin selects the pool
(the no-answer pool with probability 0%, 20% or 50%), then a Zipf-distributed
index selects a query from the chosen pool — so popular queries repeat, which
is what gives a cache something to work with.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..exceptions import WorkloadError
from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..graphs.signatures import could_be_subgraph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.vf2_plus import VF2PlusMatcher
from .base import Workload, extract_query_random_walk
from .zipf import ZipfSampler

__all__ = ["QueryPools", "TypeBWorkloadGenerator", "generate_type_b"]


class QueryPools:
    """The answer / no-answer query pools behind Type B workloads."""

    def __init__(
        self,
        dataset: GraphDataset,
        query_sizes: Sequence[int],
        answer_pool_size: int = 100,
        no_answer_pool_size: int = 30,
        seed: int = 0,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        if not query_sizes:
            raise WorkloadError("query_sizes must not be empty")
        if answer_pool_size <= 0 or no_answer_pool_size <= 0:
            raise WorkloadError("pool sizes must be positive")
        self._dataset = dataset
        self._query_sizes = tuple(int(size) for size in query_sizes)
        self._rng = random.Random(seed)
        self._matcher = matcher or VF2PlusMatcher()
        self._labels = sorted(str(label) for label in dataset.label_alphabet())
        # Global node population: (graph_id, vertex) pairs for uniform start
        # node selection across all nodes of all dataset graphs.
        self._node_population: List[Tuple[int, int]] = [
            (graph.graph_id, vertex)
            for graph in dataset
            for vertex in graph.vertices()
        ]
        self.answer_pool: List[Graph] = self._build_answer_pool(answer_pool_size)
        self.no_answer_pool: List[Graph] = self._build_no_answer_pool(no_answer_pool_size)

    # ------------------------------------------------------------------ #
    def _extract(self) -> Optional[Graph]:
        graph_id, vertex = self._rng.choice(self._node_population)
        source = self._dataset[graph_id]
        size = min(self._rng.choice(self._query_sizes), source.size)
        if size <= 0:
            return None
        return extract_query_random_walk(source, vertex, size, self._rng)

    def _build_answer_pool(self, pool_size: int) -> List[Graph]:
        pool: List[Graph] = []
        attempts = 0
        while len(pool) < pool_size and attempts < 200 * pool_size:
            attempts += 1
            query = self._extract()
            if query is not None:
                pool.append(query)
        if len(pool) < pool_size:
            raise WorkloadError(
                f"could only extract {len(pool)} of {pool_size} answer-pool queries"
            )
        return pool

    def _has_empty_answer(self, query: Graph) -> Tuple[bool, bool]:
        """Return ``(candidate_set_non_empty, answer_set_empty)`` for ``query``."""
        candidates = [
            graph for graph in self._dataset if could_be_subgraph(query, graph)
        ]
        if not candidates:
            return False, True
        for graph in candidates:
            if self._matcher.is_subgraph(query, graph):
                return True, False
        return True, True

    def _build_no_answer_pool(self, pool_size: int) -> List[Graph]:
        pool: List[Graph] = []
        attempts = 0
        while len(pool) < pool_size and attempts < 500 * pool_size:
            attempts += 1
            base = self._extract()
            if base is None:
                continue
            # Relabel nodes with random dataset labels until the query keeps a
            # non-empty candidate set but loses every answer.
            query = base
            for _ in range(30):
                relabelled = query.relabelled(
                    {
                        vertex: self._rng.choice(self._labels)
                        for vertex in query.vertices()
                    }
                )
                non_empty_candidates, empty_answer = self._has_empty_answer(relabelled)
                if non_empty_candidates and empty_answer:
                    pool.append(relabelled)
                    break
                query = relabelled
        if len(pool) < pool_size:
            raise WorkloadError(
                f"could only build {len(pool)} of {pool_size} no-answer-pool queries"
            )
        return pool


class TypeBWorkloadGenerator:
    """Generator of Type B workloads from pre-built query pools."""

    def __init__(
        self,
        pools: QueryPools,
        no_answer_probability: float = 0.2,
        alpha: float = 1.4,
        seed: int = 0,
    ) -> None:
        if not (0.0 <= no_answer_probability <= 1.0):
            raise WorkloadError("no_answer_probability must be in [0, 1]")
        self._pools = pools
        self._probability = no_answer_probability
        self._alpha = alpha
        self._seed = seed
        self._rng = random.Random(seed)
        self._answer_sampler = ZipfSampler(len(pools.answer_pool), alpha, self._rng)
        self._no_answer_sampler = ZipfSampler(
            len(pools.no_answer_pool), alpha, self._rng
        )

    def generate(self, query_count: int, dataset_name: str = "dataset") -> Workload:
        """Generate a workload of ``query_count`` pool draws."""
        if query_count <= 0:
            raise WorkloadError("query_count must be positive")
        queries: List[Graph] = []
        for _ in range(query_count):
            if self._rng.random() < self._probability:
                index = self._no_answer_sampler.sample()
                queries.append(self._pools.no_answer_pool[index])
            else:
                index = self._answer_sampler.sample()
                queries.append(self._pools.answer_pool[index])
        label = f"{int(round(self._probability * 100))}%"
        return Workload(
            name=f"TypeB-{label}",
            queries=tuple(queries),
            dataset_name=dataset_name,
            parameters={
                "no_answer_probability": self._probability,
                "alpha": self._alpha,
                "seed": self._seed,
            },
        )


def generate_type_b(
    dataset: GraphDataset,
    no_answer_probability: float,
    query_count: int,
    query_sizes: Sequence[int],
    alpha: float = 1.4,
    seed: int = 0,
    pools: Optional[QueryPools] = None,
    answer_pool_size: int = 100,
    no_answer_pool_size: int = 30,
) -> Workload:
    """Convenience wrapper: build pools (if not supplied) and a Type B workload."""
    pools = pools or QueryPools(
        dataset,
        query_sizes=query_sizes,
        answer_pool_size=answer_pool_size,
        no_answer_pool_size=no_answer_pool_size,
        seed=seed,
    )
    generator = TypeBWorkloadGenerator(
        pools, no_answer_probability=no_answer_probability, alpha=alpha, seed=seed
    )
    return generator.generate(query_count, dataset_name=dataset.name)
