"""Workload containers and shared query-extraction helpers.

A *workload* is an ordered sequence of query graphs, generated from a dataset
by one of the paper's two generators (Type A, Type B).  The shared extraction
primitives live here: BFS-based query extraction (Type A) and random-walk
extraction (Type B pools).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..exceptions import WorkloadError
from ..graphs.graph import Graph

__all__ = ["Workload", "extract_query_bfs", "extract_query_random_walk"]


@dataclass(frozen=True)
class Workload:
    """An ordered list of query graphs plus descriptive metadata."""

    name: str
    queries: Tuple[Graph, ...]
    dataset_name: str
    parameters: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> Graph:
        return self.queries[index]

    def describe(self) -> str:
        """One-line description used in benchmark reports."""
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
        return f"{self.name} on {self.dataset_name} ({len(self.queries)} queries; {params})"


def extract_query_bfs(
    source: Graph,
    start_vertex: int,
    target_edges: int,
    rng: Optional[random.Random] = None,
) -> Optional[Graph]:
    """Extract a connected query of ``target_edges`` edges by BFS (Type A, §7.2).

    Starting from ``start_vertex`` a BFS visits the source graph; each newly
    visited vertex contributes the edges linking it to already-visited
    vertices, one at a time, until the requested number of edges is collected.
    Returns ``None`` if the start vertex's component is too small.

    Extraction is **deterministic** for a given ``(source, start_vertex,
    target_edges)`` unless an ``rng`` is supplied: the same popular
    (graph, node, size) triple always produces the same query graph, and
    queries of different sizes from the same start are nested.  This is what
    gives skewed workloads their exact-match and subgraph/supergraph cache
    hits — the very relationships GraphCache exploits (§1, §7.2).
    """
    if target_edges <= 0:
        raise WorkloadError("target_edges must be positive")
    if not source.has_vertex(start_vertex):
        raise WorkloadError(f"start vertex {start_vertex} not in source graph")

    visited = [start_vertex]
    visited_set = {start_vertex}
    chosen_edges: List[Tuple[int, int]] = []
    frontier = [start_vertex]

    while frontier and len(chosen_edges) < target_edges:
        current = frontier.pop(0)
        neighbours = sorted(source.neighbors(current))
        if rng is not None:
            rng.shuffle(neighbours)
        for neighbour in neighbours:
            if neighbour in visited_set:
                continue
            # Add the edges connecting the new vertex to visited vertices.
            connecting = [
                (neighbour, other)
                for other in visited
                if source.has_edge(neighbour, other)
            ]
            if rng is not None:
                rng.shuffle(connecting)
            visited.append(neighbour)
            visited_set.add(neighbour)
            frontier.append(neighbour)
            for edge in connecting:
                if len(chosen_edges) >= target_edges:
                    break
                chosen_edges.append(edge)
            if len(chosen_edges) >= target_edges:
                break

    if len(chosen_edges) < target_edges:
        return None
    return source.edge_subgraph(chosen_edges)


def extract_query_random_walk(
    source: Graph,
    start_vertex: int,
    target_edges: int,
    rng: random.Random,
    max_steps: Optional[int] = None,
) -> Optional[Graph]:
    """Extract a connected query of ``target_edges`` edges by random walk (Type B, §7.2).

    A random walk starts at ``start_vertex``; every traversed edge that is not
    yet part of the query is added until the requested size is reached.
    Returns ``None`` if the walk cannot collect enough distinct edges within
    ``max_steps`` steps (dead ends in tiny components).
    """
    if target_edges <= 0:
        raise WorkloadError("target_edges must be positive")
    if not source.has_vertex(start_vertex):
        raise WorkloadError(f"start vertex {start_vertex} not in source graph")
    max_steps = max_steps if max_steps is not None else 50 * target_edges

    current = start_vertex
    chosen: List[Tuple[int, int]] = []
    chosen_set: set = set()
    for _ in range(max_steps):
        if len(chosen) >= target_edges:
            break
        neighbours = list(source.neighbors(current))
        if not neighbours:
            break
        nxt = rng.choice(neighbours)
        edge = (current, nxt) if current < nxt else (nxt, current)
        if edge not in chosen_set:
            chosen_set.add(edge)
            chosen.append(edge)
        current = nxt
    if len(chosen) < target_edges:
        return None
    return source.edge_subgraph(chosen)
