"""Zipf sampling over finite populations.

The paper's workload generators select source graphs, start nodes and pool
queries either uniformly or according to a Zipf distribution with skew
parameter ``α`` (1.1 / 1.4 / 1.7 in the evaluation; web page popularity is
``α ≈ 2.4`` for reference).  This module provides a small deterministic Zipf
sampler over ranks ``1..n`` where rank ``r`` has probability ``r^-α / H``.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from ..exceptions import WorkloadError

__all__ = ["ZipfSampler", "zipf_weights"]


def zipf_weights(population_size: int, alpha: float) -> List[float]:
    """Normalised Zipf probabilities for ranks ``1..population_size``."""
    if population_size <= 0:
        raise WorkloadError("population_size must be positive")
    if alpha < 0:
        raise WorkloadError("alpha must be non-negative")
    raw = [1.0 / (rank ** alpha) for rank in range(1, population_size + 1)]
    total = sum(raw)
    return [value / total for value in raw]


class ZipfSampler:
    """Samples indices ``0..n-1`` with Zipf-distributed popularity.

    Index 0 is the most popular item; an ``alpha`` of 0 degenerates to the
    uniform distribution.  Sampling uses the inverse-CDF method over the
    precomputed cumulative weights, so each draw costs ``O(log n)``.
    """

    def __init__(self, population_size: int, alpha: float, rng: random.Random) -> None:
        self._weights = zipf_weights(population_size, alpha)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in self._weights:
            running += weight
            self._cumulative.append(running)
        # Guard against floating-point drift at the top end.
        self._cumulative[-1] = 1.0
        self._rng = rng
        self._alpha = alpha

    @property
    def alpha(self) -> float:
        """Skew parameter of the distribution."""
        return self._alpha

    @property
    def population_size(self) -> int:
        """Number of items in the population."""
        return len(self._weights)

    def probability(self, index: int) -> float:
        """Probability of drawing ``index``."""
        return self._weights[index]

    def sample(self) -> int:
        """Draw one index."""
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` independent indices."""
        return [self.sample() for _ in range(count)]
