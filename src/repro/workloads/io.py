"""Workload serialisation.

Workload generation involves randomness (and, for Type B pools, sub-iso
testing), so being able to generate a workload once and replay it across
experiments and machines matters both for performance and for reproducibility
— the paper's evaluation reuses the same generated workloads across every
method and configuration.  Workloads are stored as a single JSON document
embedding each query graph in the same transaction text format used for
datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..exceptions import WorkloadError
from ..graphs.io import graph_from_text, graph_to_text
from .base import Workload

__all__ = ["save_workload", "load_workload"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path: PathLike) -> None:
    """Write ``workload`` to ``path`` as a JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": workload.name,
        "dataset_name": workload.dataset_name,
        "parameters": {key: _jsonable(value) for key, value in workload.parameters.items()},
        "queries": [graph_to_text(query) for query in workload.queries],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_workload(path: PathLike) -> Workload:
    """Read a workload previously written by :func:`save_workload`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkloadError(f"cannot read workload file {path}: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format version {payload.get('format_version')!r}"
        )
    queries = tuple(graph_from_text(text) for text in payload["queries"])
    if not queries:
        raise WorkloadError(f"workload file {path} contains no queries")
    return Workload(
        name=payload["name"],
        queries=queries,
        dataset_name=payload["dataset_name"],
        parameters=dict(payload.get("parameters", {})),
    )


def _jsonable(value: object) -> object:
    """Convert tuples (etc.) to JSON-friendly forms, preserving scalars."""
    if isinstance(value, tuple):
        return list(value)
    return value
