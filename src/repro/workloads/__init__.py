"""Workload generators: Type A (BFS/Zipf) and Type B (no-answer pools)."""

from .base import Workload, extract_query_bfs, extract_query_random_walk
from .io import load_workload, save_workload
from .type_a import (
    LARGE_DATASET_QUERY_SIZES,
    SMALL_DATASET_QUERY_SIZES,
    TypeAWorkloadGenerator,
    generate_type_a,
)
from .type_b import QueryPools, TypeBWorkloadGenerator, generate_type_b
from .zipf import ZipfSampler, zipf_weights

__all__ = [
    "Workload",
    "extract_query_bfs",
    "extract_query_random_walk",
    "load_workload",
    "save_workload",
    "TypeAWorkloadGenerator",
    "generate_type_a",
    "SMALL_DATASET_QUERY_SIZES",
    "LARGE_DATASET_QUERY_SIZES",
    "QueryPools",
    "TypeBWorkloadGenerator",
    "generate_type_b",
    "ZipfSampler",
    "zipf_weights",
]
