"""GraphCache reproduction: a semantic caching system for graph queries.

This library reproduces *"GraphCache: A Caching System for Graph Queries"*
(Wang, Ntarmos, Triantafillou — EDBT 2017) as a pure-Python system:

* :mod:`repro.graphs` — labelled-graph substrate, datasets, generators, I/O;
* :mod:`repro.isomorphism` — subgraph-isomorphism algorithms (VF2, VF2+,
  Ullmann, GraphQL-style) and the analytic cost model;
* :mod:`repro.ftv` — filter-then-verify methods (GraphGrepSX, Grapes,
  CT-Index);
* :mod:`repro.methods` — the pluggable "Method M" abstraction and SI methods;
* :mod:`repro.core` — GraphCache itself: the semantic cache, its query index,
  candidate-set pruning, replacement policies (LRU/POP/PIN/PINC/HD), window
  manager and admission control;
* :mod:`repro.workloads` — Type A / Type B query workload generators;
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  figures.

Quickstart
----------
>>> from repro import GraphCache, GraphCacheConfig
>>> from repro.graphs.generators import aids_like
>>> from repro.methods import SIMethod
>>> dataset = aids_like(scale=0.05)
>>> cache = GraphCache(SIMethod(dataset, matcher="vf2plus"))
>>> query = dataset[0].induced_subgraph(range(6))
>>> sorted(cache.answer(query))  # doctest: +SKIP
[0, 17, 23]
"""

from .core.cache import CacheQueryResult, GraphCache
from .core.config import GraphCacheConfig
from .exceptions import ReproError
from .graphs.dataset import GraphDataset
from .graphs.graph import Graph
from .methods.base import Method
from .methods.si import SIMethod

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphDataset",
    "GraphCache",
    "GraphCacheConfig",
    "CacheQueryResult",
    "Method",
    "SIMethod",
    "ReproError",
    "__version__",
]
