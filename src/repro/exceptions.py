"""Exception hierarchy for the GraphCache reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for invalid graph construction or manipulation."""


class GraphFormatError(ReproError):
    """Raised when parsing a graph dataset file fails."""


class DatasetError(ReproError):
    """Raised for invalid dataset operations (unknown graph IDs, empty sets)."""


class MatcherError(ReproError):
    """Raised for invalid use of a subgraph-isomorphism matcher."""


class MatchTimeout(ReproError):
    """Raised when a subgraph-isomorphism search exceeds its time budget."""

    def __init__(self, budget_s: float) -> None:
        super().__init__(f"subgraph isomorphism search exceeded {budget_s:.3f}s budget")
        self.budget_s = budget_s


class IndexError_(ReproError):
    """Raised for invalid FTV / cache index operations.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class CacheError(ReproError):
    """Raised for invalid GraphCache configuration or operation."""


class WorkloadError(ReproError):
    """Raised when a workload generator cannot satisfy its parameters."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for invalid experiment configuration."""
