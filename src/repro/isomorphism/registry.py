"""Registry of bundled subgraph-isomorphism algorithms.

The paper bundles three SI algorithms (VF2, VF2+, GraphQL); we additionally
ship Ullmann's algorithm.  New matchers can be registered at runtime, which is
how a downstream user would plug their own verifier into GraphCache or into an
FTV method's verification stage.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import MatcherError
from .base import SubgraphMatcher
from .graphql_match import GraphQLMatcher
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher
from .vf2_plus import VF2PlusMatcher

__all__ = ["matcher_by_name", "register_matcher", "available_matchers"]

_FACTORIES: Dict[str, Callable[[], SubgraphMatcher]] = {
    "vf2": VF2Matcher,
    "vf2plus": VF2PlusMatcher,
    "ullmann": UllmannMatcher,
    "graphql": GraphQLMatcher,
}


def register_matcher(name: str, factory: Callable[[], SubgraphMatcher]) -> None:
    """Register a matcher factory under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not key:
        raise MatcherError("matcher name must be non-empty")
    _FACTORIES[key] = factory


def matcher_by_name(name: str) -> SubgraphMatcher:
    """Instantiate a registered matcher by name."""
    key = name.strip().lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise MatcherError(f"unknown matcher {name!r}; known matchers: {known}") from None
    return factory()


def available_matchers() -> List[str]:
    """Names of all registered matchers, sorted."""
    return sorted(_FACTORIES)
