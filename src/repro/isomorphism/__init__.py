"""Subgraph-isomorphism algorithms (the "Mverifier" substrate)."""

from .base import MatchOutcome, SearchBudget, SubgraphMatcher
from .cost import estimate_query_cost, estimate_subiso_cost
from .enumeration import count_embeddings, find_all_embeddings, iter_embeddings
from .graphql_match import GraphQLMatcher
from .registry import available_matchers, matcher_by_name, register_matcher
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher
from .vf2_plus import VF2PlusMatcher

__all__ = [
    "MatchOutcome",
    "SearchBudget",
    "SubgraphMatcher",
    "VF2Matcher",
    "VF2PlusMatcher",
    "UllmannMatcher",
    "GraphQLMatcher",
    "estimate_query_cost",
    "estimate_subiso_cost",
    "count_embeddings",
    "find_all_embeddings",
    "iter_embeddings",
    "available_matchers",
    "matcher_by_name",
    "register_matcher",
]
