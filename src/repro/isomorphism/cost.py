"""Analytic sub-iso cost model used by the PINC replacement policy (§5.2).

The paper estimates the cost of a sub-iso test of query ``g`` (with ``n``
vertices and ``L`` distinct labels) against a dataset graph ``G`` (with ``N``
vertices) as::

    c(g, G) = N * N! / (L^(n+1) * (N - n)!)

i.e. the number of injective assignments of the ``n`` query vertices onto the
``N`` target vertices, discounted by label agreement, times a linear factor.
Factorials blow up quickly, so everything is computed in log-space with
``math.lgamma`` and only exponentiated at the end (clamped to ``float`` max).
"""

from __future__ import annotations

import math

from ..graphs.graph import Graph

__all__ = ["estimate_subiso_cost", "estimate_query_cost"]

_LOG_FLOAT_MAX = math.log(1.7976931348623157e308)


def estimate_subiso_cost(
    query_order: int,
    query_distinct_labels: int,
    target_order: int,
) -> float:
    """Estimated cost of one sub-iso test, per the paper's formula.

    Parameters
    ----------
    query_order:
        Number of vertices ``n`` in the query graph.
    query_distinct_labels:
        Number of distinct labels ``L`` in the query graph (at least 1).
    target_order:
        Number of vertices ``N`` in the dataset graph.

    Returns
    -------
    float
        ``N * N! / (L^(n+1) * (N-n)!)``, or ``0.0`` when ``N < n`` (the test
        is trivially negative and costs effectively nothing).
    """
    n = int(query_order)
    big_n = int(target_order)
    labels = max(1, int(query_distinct_labels))
    if n <= 0 or big_n <= 0 or big_n < n:
        return 0.0
    # log of N * N!/(N-n)!  ==  log N + lgamma(N+1) - lgamma(N-n+1)
    log_cost = (
        math.log(big_n)
        + math.lgamma(big_n + 1)
        - math.lgamma(big_n - n + 1)
        - (n + 1) * math.log(labels)
    )
    if log_cost >= _LOG_FLOAT_MAX:
        return float("inf")
    return math.exp(log_cost)


def estimate_query_cost(query: Graph, target: Graph) -> float:
    """Convenience wrapper taking :class:`Graph` objects."""
    return estimate_subiso_cost(
        query_order=query.order,
        query_distinct_labels=len(query.distinct_labels()),
        target_order=target.order,
    )
