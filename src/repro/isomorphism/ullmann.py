"""Ullmann's subgraph-isomorphism algorithm (Ullmann, 1976).

Ullmann's algorithm maintains a boolean compatibility matrix ``M`` where
``M[i][j] = 1`` means pattern vertex ``i`` may still map onto target vertex
``j``.  Before each branching step the matrix is *refined*: a pair ``(i, j)``
survives only if every pattern neighbour of ``i`` still has at least one
compatible target neighbour of ``j``.  Refinement to a fixpoint is exactly the
arc-consistency propagation that modern CP solvers use, and it is what makes
Ullmann competitive on densely-constrained patterns despite its age.

This implementation decides the non-induced, vertex-labelled variant used
throughout the library.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graphs.graph import Graph
from .base import SearchBudget, SubgraphMatcher

__all__ = ["UllmannMatcher"]


class UllmannMatcher(SubgraphMatcher):
    """Ullmann's algorithm with arc-consistency refinement."""

    name = "ullmann"

    def _initial_domains(self, pattern: Graph, target: Graph) -> List[set]:
        domains: List[set] = []
        for p_vertex in pattern.vertices():
            label = pattern.label(p_vertex)
            degree = pattern.degree(p_vertex)
            domain = {
                t_vertex
                for t_vertex in target.vertices_with_label(label)
                if target.degree(t_vertex) >= degree
            }
            domains.append(domain)
        return domains

    @staticmethod
    def _refine(pattern: Graph, target: Graph, domains: List[set]) -> bool:
        """Propagate neighbourhood constraints until a fixpoint.

        Returns ``False`` if some domain becomes empty (no embedding possible).
        """
        changed = True
        while changed:
            changed = False
            for p_vertex in pattern.vertices():
                survivors = set()
                for t_candidate in domains[p_vertex]:
                    ok = True
                    for p_neighbour in pattern.neighbors(p_vertex):
                        t_neighbourhood = target.neighbors(t_candidate)
                        if not (domains[p_neighbour] & t_neighbourhood):
                            ok = False
                            break
                    if ok:
                        survivors.add(t_candidate)
                if len(survivors) != len(domains[p_vertex]):
                    domains[p_vertex] = survivors
                    changed = True
                    if not survivors:
                        return False
        return True

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        domains = self._initial_domains(pattern, target)
        if any(not d for d in domains):
            return None
        if not self._refine(pattern, target, domains):
            return None

        n = pattern.order
        mapping: Dict[int, int] = {}
        used: set = set()

        def backtrack(depth: int, domains: List[set]) -> bool:
            if depth == n:
                return True
            # Choose the unassigned pattern vertex with the smallest domain
            # (fail-first heuristic).
            unassigned = [v for v in range(n) if v not in mapping]
            vertex = min(unassigned, key=lambda v: len(domains[v]))
            for candidate in sorted(domains[vertex]):
                if candidate in used:
                    continue
                budget.tick()
                # Copy-and-restrict domains for the recursive call.
                next_domains = [set(d) for d in domains]
                next_domains[vertex] = {candidate}
                for other in range(n):
                    if other != vertex:
                        next_domains[other].discard(candidate)
                # Pattern neighbours of ``vertex`` must map to target
                # neighbours of ``candidate``.
                feasible = True
                for neighbour in pattern.neighbors(vertex):
                    if neighbour in mapping:
                        if not target.has_edge(candidate, mapping[neighbour]):
                            feasible = False
                            break
                    else:
                        next_domains[neighbour] &= target.neighbors(candidate)
                        if not next_domains[neighbour]:
                            feasible = False
                            break
                if not feasible:
                    continue
                if not self._refine(pattern, target, next_domains):
                    continue
                mapping[vertex] = candidate
                used.add(candidate)
                if backtrack(depth + 1, next_domains):
                    return True
                del mapping[vertex]
                used.discard(candidate)
            return False

        if backtrack(0, domains):
            return dict(mapping)
        return None
