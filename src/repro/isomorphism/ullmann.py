"""Ullmann's subgraph-isomorphism algorithm (Ullmann, 1976).

Ullmann's algorithm maintains a boolean compatibility matrix ``M`` where
``M[i][j] = 1`` means pattern vertex ``i`` may still map onto target vertex
``j``.  Before each branching step the matrix is *refined*: a pair ``(i, j)``
survives only if every pattern neighbour of ``i`` still has at least one
compatible target neighbour of ``j``.  Refinement to a fixpoint is exactly the
arc-consistency propagation that modern CP solvers use, and it is what makes
Ullmann competitive on densely-constrained patterns despite its age.

This implementation decides the non-induced, vertex-labelled variant used
throughout the library.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graphs.graph import Graph
from .base import SearchBudget, SubgraphMatcher

__all__ = ["UllmannMatcher"]


class UllmannMatcher(SubgraphMatcher):
    """Ullmann's algorithm with arc-consistency refinement."""

    name = "ullmann"

    def _initial_domains(self, pattern: Graph, target: Graph) -> List[set]:
        domains: List[set] = []
        for p_vertex in pattern.vertices():
            label = pattern.label(p_vertex)
            degree = pattern.degree(p_vertex)
            domain = {
                t_vertex
                for t_vertex in target.vertices_with_label(label)
                if target.degree(t_vertex) >= degree
            }
            domains.append(domain)
        return domains

    @staticmethod
    def _refine(pattern: Graph, target: Graph, domains: List[set]) -> bool:
        """Propagate neighbourhood constraints until a fixpoint.

        Returns ``False`` if some domain becomes empty (no embedding possible).
        """
        changed = True
        while changed:
            changed = False
            for p_vertex in pattern.vertices():
                survivors = set()
                for t_candidate in domains[p_vertex]:
                    ok = True
                    for p_neighbour in pattern.neighbors(p_vertex):
                        t_neighbourhood = target.neighbors(t_candidate)
                        if not (domains[p_neighbour] & t_neighbourhood):
                            ok = False
                            break
                    if ok:
                        survivors.add(t_candidate)
                if len(survivors) != len(domains[p_vertex]):
                    domains[p_vertex] = survivors
                    changed = True
                    if not survivors:
                        return False
        return True

    # ------------------------------------------------------------------ #
    # Bitmask twin of ``_initial_domains``: the search operates on integer
    # domain masks (one bit per target vertex) so that copy-and-restrict and
    # arc-consistency propagation are plain ``&`` operations.  (The set-based
    # helpers above are kept as the inspectable/reference API.)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _initial_domain_masks(pattern: Graph, target: Graph) -> List[int]:
        return [
            target.label_id_mask(pattern.label_id(p_vertex))
            & target.degree_ge_mask(pattern.degree(p_vertex))
            for p_vertex in pattern.vertices()
        ]

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        domains = self._initial_domain_masks(pattern, target)
        if any(not d for d in domains):
            return None

        n = pattern.order
        target_masks = target.neighbor_masks
        pattern_neighbors = [list(pattern.neighbors(v)) for v in pattern.vertices()]
        mapping: Dict[int, int] = {}

        def refine(domains: List[int], dirty: set) -> bool:
            """Worklist arc-consistency: re-check only vertices whose
            neighbourhood constraints may have changed."""
            while dirty:
                p_vertex = dirty.pop()
                survivors = 0
                probe = domains[p_vertex]
                while probe:
                    low = probe & -probe
                    probe ^= low
                    t_neighbourhood = target_masks[low.bit_length() - 1]
                    for p_neighbour in pattern_neighbors[p_vertex]:
                        if not domains[p_neighbour] & t_neighbourhood:
                            break
                    else:
                        survivors |= low
                if survivors != domains[p_vertex]:
                    if not survivors:
                        return False
                    domains[p_vertex] = survivors
                    dirty.update(pattern_neighbors[p_vertex])
            return True

        if not refine(domains, set(range(n))):
            return None

        def backtrack(depth: int, domains: List[int], used_mask: int) -> bool:
            if depth == n:
                return True
            # Choose the unassigned pattern vertex with the smallest domain
            # (fail-first heuristic).
            unassigned = [v for v in range(n) if v not in mapping]
            vertex = min(unassigned, key=lambda v: domains[v].bit_count())
            pool = domains[vertex] & ~used_mask
            while pool:
                low = pool & -pool
                pool ^= low
                candidate = low.bit_length() - 1
                budget.tick()
                # Copy-and-restrict domains for the recursive call, tracking
                # which domains actually shrank: the parent state is already
                # arc-consistent, so only neighbours of shrunk domains can
                # lose support and need re-checking.
                next_domains = list(domains)
                next_domains[vertex] = low
                changed = [vertex]
                for other in range(n):
                    if other != vertex:
                        restricted = next_domains[other] & ~low
                        if restricted != next_domains[other]:
                            next_domains[other] = restricted
                            changed.append(other)
                # Pattern neighbours of ``vertex`` must map to target
                # neighbours of ``candidate``.
                feasible = True
                candidate_neighbourhood = target_masks[candidate]
                for neighbour in pattern_neighbors[vertex]:
                    if neighbour in mapping:
                        if not candidate_neighbourhood & (1 << mapping[neighbour]):
                            feasible = False
                            break
                    else:
                        restricted = next_domains[neighbour] & candidate_neighbourhood
                        if not restricted:
                            feasible = False
                            break
                        if restricted != next_domains[neighbour]:
                            next_domains[neighbour] = restricted
                            changed.append(neighbour)
                if not feasible:
                    continue
                dirty: set = set()
                for c in changed:
                    dirty.update(pattern_neighbors[c])
                if not refine(next_domains, dirty):
                    continue
                mapping[vertex] = candidate
                if backtrack(depth + 1, next_domains, used_mask | low):
                    return True
                del mapping[vertex]
            return False

        if backtrack(0, domains, 0):
            return dict(mapping)
        return None
