"""VF2+: VF2 with frequency- and degree-aware pattern vertex ordering.

The paper's "VF2+" is the modified VF2 shipped with CT-Index [14]: the search
is the same backtracking procedure as VF2, but pattern vertices are visited in
an order that maps the most constrained vertices first — those whose label is
rare in the target and whose degree is high.  This typically shrinks the
search tree dramatically on label-rich datasets such as AIDS.
"""

from __future__ import annotations

from typing import List

from ..graphs.graph import Graph
from .vf2 import VF2Matcher, connectivity_order

__all__ = ["VF2PlusMatcher"]


class VF2PlusMatcher(VF2Matcher):
    """VF2 with rarity-first, highest-degree-first vertex ordering."""

    name = "vf2plus"

    def _order(self, pattern: Graph, target: Graph) -> List[int]:
        total = max(1, target.order)
        priorities = []
        for vertex in pattern.vertices():
            # Label frequency via the interned-label vertex masks: counting a
            # popcount is cheaper than hashing the label object itself.
            frequency = target.label_id_mask(pattern.label_id(vertex)).bit_count() / total
            # Rare labels and high degrees are the most selective; the small
            # frequency term dominates, degree breaks ties.
            priorities.append((1.0 - frequency) * 1000.0 + pattern.degree(vertex))
        return connectivity_order(pattern, priority=priorities)
