"""GraphQL-style subgraph matching (He & Singh, 2008).

GraphQL (the *graph query language* system, not the web API) is one of the SI
methods evaluated by the paper.  Its matcher differs from VF2 in two ways that
we reproduce here:

1. **Neighbourhood-signature pruning.**  Before search, every pattern vertex
   gets a candidate set of target vertices whose label matches and whose
   *neighbour-label multiset* covers the pattern vertex's neighbour-label
   multiset (a 1-hop profile test).  Candidate sets are then refined by
   iterative pseudo-isomorphism checking: a candidate survives only if there
   is a semi-perfect matching between the pattern vertex's neighbours and the
   candidate's neighbours' candidate sets (approximated here by bipartite
   feasibility via Hall-style counting).
2. **Search-order optimisation.**  The backtracking search maps pattern
   vertices in ascending order of candidate-set size (most selective first),
   refined at each level.

Candidate sets are carried as integer bitmasks (one bit per target vertex) so
that refinement and the per-level adjacency restriction are single ``&``
operations; see :class:`repro.graphs.graph.Graph` for the precomputed masks.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..graphs.graph import Graph
from .base import SearchBudget, SubgraphMatcher

__all__ = ["GraphQLMatcher"]


def _neighbour_label_counter(graph: Graph, vertex: int) -> Counter:
    label_ids = graph.label_ids
    mask = graph.neighbor_mask(vertex)
    counter: Counter = Counter()
    while mask:
        low = mask & -mask
        mask ^= low
        counter[label_ids[low.bit_length() - 1]] += 1
    return counter


def _counter_covers(big: Counter, small: Counter) -> bool:
    """Return True if multiset ``big`` contains multiset ``small``."""
    return all(big.get(label, 0) >= count for label, count in small.items())


def _mask_bits(mask: int) -> List[int]:
    """Vertex ids of the set bits of ``mask``, ascending."""
    bits: List[int] = []
    while mask:
        low = mask & -mask
        mask ^= low
        bits.append(low.bit_length() - 1)
    return bits


class GraphQLMatcher(SubgraphMatcher):
    """GraphQL-style matcher: profile pruning + selectivity-ordered search."""

    name = "graphql"

    #: Number of global refinement sweeps applied before search.
    refinement_rounds = 2

    def _initial_candidate_masks(self, pattern: Graph, target: Graph) -> List[int]:
        """Per-pattern-vertex candidate bitmasks after the 1-hop profile test.

        The neighbour-label multiset coverage test runs entirely on the
        target's cached per-label threshold masks: a candidate needs at least
        ``count`` neighbours of label ``l`` for every ``(l, count)`` in the
        pattern vertex's profile, which is one ``&`` per profile entry.
        """
        masks: List[int] = []
        for p_vertex in pattern.vertices():
            pool = target.label_id_mask(pattern.label_id(p_vertex)) & target.degree_ge_mask(
                pattern.degree(p_vertex)
            )
            if pool:
                for label_id, count in _neighbour_label_counter(pattern, p_vertex).items():
                    pool &= target.neighbor_label_ge_mask(label_id, count)
                    if not pool:
                        break
            masks.append(pool)
        return masks

    def _initial_candidates(self, pattern: Graph, target: Graph) -> List[set]:
        """Set view of :meth:`_initial_candidate_masks` (kept for inspection)."""
        return [set(_mask_bits(mask)) for mask in self._initial_candidate_masks(pattern, target)]

    def _refine(self, pattern: Graph, target: Graph, candidates: List[int]) -> bool:
        """Pseudo-isomorphism refinement: neighbours must be coverable.

        A candidate ``t`` for pattern vertex ``p`` survives a round if every
        pattern neighbour of ``p`` has at least one of its own candidates
        inside the target neighbourhood of ``t``.  (This is the 1-round
        approximation of GraphQL's bipartite semi-perfect matching test; it is
        sound — it never removes a true match.)  ``candidates`` is a list of
        bitmasks, mutated in place.
        """
        target_masks = target.neighbor_masks
        pattern_neighbors = [list(pattern.neighbors(v)) for v in pattern.vertices()]
        for _ in range(self.refinement_rounds):
            changed = False
            for p_vertex in pattern.vertices():
                survivors = 0
                probe = candidates[p_vertex]
                while probe:
                    low = probe & -probe
                    probe ^= low
                    t_neighbourhood = target_masks[low.bit_length() - 1]
                    for p_neighbour in pattern_neighbors[p_vertex]:
                        if not candidates[p_neighbour] & t_neighbourhood:
                            break
                    else:
                        survivors |= low
                if survivors != candidates[p_vertex]:
                    candidates[p_vertex] = survivors
                    changed = True
                    if not survivors:
                        return False
            if not changed:
                break
        return True

    @staticmethod
    def _candidate_count(candidates: object) -> int:
        """Size of a candidate set given as a bitmask or a plain set."""
        if isinstance(candidates, int):
            return candidates.bit_count()
        return len(candidates)

    def _search_order(self, pattern: Graph, candidates: List) -> List[int]:
        """Order pattern vertices by increasing candidate-set size, keeping
        connectivity: after the first vertex, prefer vertices adjacent to the
        already-ordered prefix.  Accepts bitmask or set candidate lists."""
        n = pattern.order
        sizes = [self._candidate_count(c) for c in candidates]
        ordered: List[int] = []
        placed = set()
        remaining = set(range(n))
        while remaining:
            adjacent = {
                v
                for v in remaining
                if any(nb in placed for nb in pattern.neighbors(v))
            }
            pool = adjacent if adjacent else remaining
            vertex = min(pool, key=lambda v: (sizes[v], v))
            ordered.append(vertex)
            placed.add(vertex)
            remaining.discard(vertex)
        return ordered

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        candidates = self._initial_candidate_masks(pattern, target)
        if any(not c for c in candidates):
            return None
        if not self._refine(pattern, target, candidates):
            return None

        order = self._search_order(pattern, candidates)
        n = len(order)
        target_masks = target.neighbor_masks
        position_of = {vertex: pos for pos, vertex in enumerate(order)}
        anchor_positions: List[List[int]] = [
            [position_of[nb] for nb in pattern.neighbors(vertex) if position_of[nb] < pos]
            for pos, vertex in enumerate(order)
        ]

        images: List[int] = [0] * n
        used_mask = 0

        def backtrack(pos: int) -> bool:
            nonlocal used_mask
            if pos == n:
                return True
            # Restrict by adjacency to already-mapped neighbours; bits are
            # consumed in ascending vertex order (the previous sorted() order).
            pool = candidates[order[pos]] & ~used_mask
            for anchor in anchor_positions[pos]:
                pool &= target_masks[images[anchor]]
                if not pool:
                    return False
            while pool:
                low = pool & -pool
                pool ^= low
                budget.tick()
                images[pos] = low.bit_length() - 1
                used_mask |= low
                if backtrack(pos + 1):
                    return True
                used_mask &= ~low
            return False

        if backtrack(0):
            return {vertex: images[position_of[vertex]] for vertex in order}
        return None
