"""GraphQL-style subgraph matching (He & Singh, 2008).

GraphQL (the *graph query language* system, not the web API) is one of the SI
methods evaluated by the paper.  Its matcher differs from VF2 in two ways that
we reproduce here:

1. **Neighbourhood-signature pruning.**  Before search, every pattern vertex
   gets a candidate set of target vertices whose label matches and whose
   *neighbour-label multiset* covers the pattern vertex's neighbour-label
   multiset (a 1-hop profile test).  Candidate sets are then refined by
   iterative pseudo-isomorphism checking: a candidate survives only if there
   is a semi-perfect matching between the pattern vertex's neighbours and the
   candidate's neighbours' candidate sets (approximated here by bipartite
   feasibility via Hall-style counting).
2. **Search-order optimisation.**  The backtracking search maps pattern
   vertices in ascending order of candidate-set size (most selective first),
   refined at each level.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..graphs.graph import Graph
from .base import SearchBudget, SubgraphMatcher

__all__ = ["GraphQLMatcher"]


def _neighbour_label_counter(graph: Graph, vertex: int) -> Counter:
    return Counter(graph.label(n) for n in graph.neighbors(vertex))


def _counter_covers(big: Counter, small: Counter) -> bool:
    """Return True if multiset ``big`` contains multiset ``small``."""
    return all(big.get(label, 0) >= count for label, count in small.items())


class GraphQLMatcher(SubgraphMatcher):
    """GraphQL-style matcher: profile pruning + selectivity-ordered search."""

    name = "graphql"

    #: Number of global refinement sweeps applied before search.
    refinement_rounds = 2

    def _initial_candidates(self, pattern: Graph, target: Graph) -> List[set]:
        pattern_profiles = [
            _neighbour_label_counter(pattern, v) for v in pattern.vertices()
        ]
        target_profiles = [
            _neighbour_label_counter(target, v) for v in target.vertices()
        ]
        candidates: List[set] = []
        for p_vertex in pattern.vertices():
            label = pattern.label(p_vertex)
            degree = pattern.degree(p_vertex)
            profile = pattern_profiles[p_vertex]
            cset = {
                t_vertex
                for t_vertex in target.vertices_with_label(label)
                if target.degree(t_vertex) >= degree
                and _counter_covers(target_profiles[t_vertex], profile)
            }
            candidates.append(cset)
        return candidates

    def _refine(self, pattern: Graph, target: Graph, candidates: List[set]) -> bool:
        """Pseudo-isomorphism refinement: neighbours must be coverable.

        A candidate ``t`` for pattern vertex ``p`` survives a round if every
        pattern neighbour of ``p`` has at least one of its own candidates
        inside the target neighbourhood of ``t``.  (This is the 1-round
        approximation of GraphQL's bipartite semi-perfect matching test; it is
        sound — it never removes a true match.)
        """
        for _ in range(self.refinement_rounds):
            changed = False
            for p_vertex in pattern.vertices():
                survivors = set()
                for t_candidate in candidates[p_vertex]:
                    ok = True
                    t_neighbourhood = target.neighbors(t_candidate)
                    for p_neighbour in pattern.neighbors(p_vertex):
                        if not (candidates[p_neighbour] & t_neighbourhood):
                            ok = False
                            break
                    if ok:
                        survivors.add(t_candidate)
                if len(survivors) != len(candidates[p_vertex]):
                    candidates[p_vertex] = survivors
                    changed = True
                    if not survivors:
                        return False
            if not changed:
                break
        return True

    def _search_order(self, pattern: Graph, candidates: List[set]) -> List[int]:
        """Order pattern vertices by increasing candidate-set size, keeping
        connectivity: after the first vertex, prefer vertices adjacent to the
        already-ordered prefix."""
        n = pattern.order
        ordered: List[int] = []
        placed = set()
        remaining = set(range(n))
        while remaining:
            adjacent = {
                v
                for v in remaining
                if any(nb in placed for nb in pattern.neighbors(v))
            }
            pool = adjacent if adjacent else remaining
            vertex = min(pool, key=lambda v: (len(candidates[v]), v))
            ordered.append(vertex)
            placed.add(vertex)
            remaining.discard(vertex)
        return ordered

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        candidates = self._initial_candidates(pattern, target)
        if any(not c for c in candidates):
            return None
        if not self._refine(pattern, target, candidates):
            return None

        order = self._search_order(pattern, candidates)
        n = len(order)
        mapping: Dict[int, int] = {}
        used: set = set()

        def backtrack(pos: int) -> bool:
            if pos == n:
                return True
            vertex = order[pos]
            pool = candidates[vertex]
            # Restrict by adjacency to already-mapped neighbours.
            for neighbour in pattern.neighbors(vertex):
                image = mapping.get(neighbour)
                if image is not None:
                    pool = pool & target.neighbors(image)
                    if not pool:
                        return False
            for candidate in sorted(pool):
                if candidate in used:
                    continue
                budget.tick()
                mapping[vertex] = candidate
                used.add(candidate)
                if backtrack(pos + 1):
                    return True
                del mapping[vertex]
                used.discard(candidate)
            return False

        if backtrack(0):
            return dict(mapping)
        return None
