"""VF2: backtracking subgraph-isomorphism search (Cordella et al., 2004).

This is the "vanilla VF2" verifier that most FTV implementations bundle
(GraphGrepSX, Grapes) and one of the SI methods evaluated in the paper.  The
implementation solves the *non-induced* decision problem on vertex-labelled
undirected graphs:

* pattern vertices are mapped in a connectivity-preserving static order
  (each vertex after the first of its component has an already-mapped
  neighbour);
* a candidate target vertex must carry the same label, have sufficient
  degree, not be used already, and be adjacent to the images of all mapped
  pattern neighbours;
* a standard one-step look-ahead prunes candidates whose unmapped
  neighbourhood cannot cover the pattern vertex's unmapped neighbourhood.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..graphs.graph import Graph
from .base import SearchBudget, SubgraphMatcher

__all__ = ["VF2Matcher"]


def connectivity_order(pattern: Graph, priority: Optional[Sequence[float]] = None) -> List[int]:
    """Return a vertex order where each vertex has a previously-ordered neighbour.

    ``priority`` (higher = earlier) breaks ties among frontier vertices; by
    default vertices are taken in id order, which reproduces the behaviour of
    the original VF2 on its input ordering.
    """
    n = pattern.order
    if n == 0:
        return []
    if priority is None:
        priority = [0.0] * n
    ordered: List[int] = []
    placed = [False] * n
    remaining = set(range(n))
    while remaining:
        # Start a new component at the highest-priority remaining vertex.
        start = max(remaining, key=lambda v: (priority[v], -v))
        component_frontier = {start}
        while component_frontier:
            vertex = max(component_frontier, key=lambda v: (priority[v], -v))
            component_frontier.discard(vertex)
            if placed[vertex]:
                continue
            placed[vertex] = True
            ordered.append(vertex)
            remaining.discard(vertex)
            for neighbour in pattern.neighbors(vertex):
                if not placed[neighbour]:
                    component_frontier.add(neighbour)
    return ordered


class VF2Matcher(SubgraphMatcher):
    """Vanilla VF2 for non-induced, vertex-labelled subgraph isomorphism."""

    name = "vf2"

    def _order(self, pattern: Graph, target: Graph) -> List[int]:
        """Pattern vertex processing order; subclasses override to reorder."""
        return connectivity_order(pattern)

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        order = self._order(pattern, target)
        n = len(order)
        mapping: Dict[int, int] = {}
        used_targets: set = set()

        # Precompute, for each position, the pattern neighbours already mapped
        # when that position is reached: they drive candidate generation.
        position_of = {vertex: pos for pos, vertex in enumerate(order)}
        mapped_neighbors: List[List[int]] = []
        for pos, vertex in enumerate(order):
            mapped_neighbors.append(
                [nb for nb in pattern.neighbors(vertex) if position_of[nb] < pos]
            )

        def candidates(pos: int) -> List[int]:
            vertex = order[pos]
            anchors = mapped_neighbors[pos]
            if anchors:
                # Intersect neighbourhoods of the images of mapped neighbours.
                sets = sorted(
                    (target.neighbors(mapping[a]) for a in anchors), key=len
                )
                result = set(sets[0])
                for other in sets[1:]:
                    result &= other
                    if not result:
                        break
                pool = result
            else:
                pool = range(target.order)
            label = pattern.label(vertex)
            degree = pattern.degree(vertex)
            return [
                t
                for t in pool
                if t not in used_targets
                and target.label(t) == label
                and target.degree(t) >= degree
            ]

        def feasible(vertex: int, candidate: int) -> bool:
            # Adjacency consistency with every already-mapped pattern neighbour.
            for neighbour in pattern.neighbors(vertex):
                image = mapping.get(neighbour)
                if image is not None and not target.has_edge(candidate, image):
                    return False
            # One-step look-ahead: the candidate must have at least as many
            # unmapped neighbours as the pattern vertex (necessary condition
            # for extending the mapping later).
            unmapped_pattern = sum(
                1 for nb in pattern.neighbors(vertex) if nb not in mapping
            )
            unmapped_target = sum(
                1 for nb in target.neighbors(candidate) if nb not in used_targets
            )
            return unmapped_target >= unmapped_pattern

        def backtrack(pos: int) -> bool:
            if pos == n:
                return True
            vertex = order[pos]
            for candidate in candidates(pos):
                budget.tick()
                if not feasible(vertex, candidate):
                    continue
                mapping[vertex] = candidate
                used_targets.add(candidate)
                if backtrack(pos + 1):
                    return True
                del mapping[vertex]
                used_targets.discard(candidate)
            return False

        if backtrack(0):
            return dict(mapping)
        return None
