"""VF2: backtracking subgraph-isomorphism search (Cordella et al., 2004).

This is the "vanilla VF2" verifier that most FTV implementations bundle
(GraphGrepSX, Grapes) and one of the SI methods evaluated in the paper.  The
implementation solves the *non-induced* decision problem on vertex-labelled
undirected graphs:

* pattern vertices are mapped in a connectivity-preserving static order
  (each vertex after the first of its component has an already-mapped
  neighbour);
* a candidate target vertex must carry the same label, have sufficient
  degree, not be used already, and be adjacent to the images of all mapped
  pattern neighbours;
* a standard one-step look-ahead prunes candidates whose unmapped
  neighbourhood cannot cover the pattern vertex's unmapped neighbourhood.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from .base import SearchBudget, SubgraphMatcher

__all__ = ["VF2Matcher"]


def connectivity_order(pattern: Graph, priority: Optional[Sequence[float]] = None) -> List[int]:
    """Return a vertex order where each vertex has a previously-ordered neighbour.

    ``priority`` (higher = earlier) breaks ties among frontier vertices; by
    default vertices are taken in id order, which reproduces the behaviour of
    the original VF2 on its input ordering.  Implemented with lazy-deletion
    heaps over ``(-priority, vertex)`` so each step costs ``O(log n)`` instead
    of a linear scan; the selection rule (highest priority, then lowest vertex
    id, new components seeded from the best remaining vertex) is unchanged.
    """
    n = pattern.order
    if n == 0:
        return []
    if priority is None:
        priority = [0.0] * n
    neighbor_masks = pattern.neighbor_masks
    ordered: List[int] = []
    placed_mask = 0
    remaining_heap = [(-priority[v], v) for v in range(n)]
    heapq.heapify(remaining_heap)
    frontier: List[tuple] = []
    while len(ordered) < n:
        # Prefer the component frontier; fall back to the best remaining
        # vertex (starting a new component).  Stale heap entries (vertices
        # placed since they were pushed) are skipped lazily.
        heap = frontier if frontier else remaining_heap
        vertex = heapq.heappop(heap)[1]
        if placed_mask >> vertex & 1:
            continue
        placed_mask |= 1 << vertex
        ordered.append(vertex)
        fresh = neighbor_masks[vertex] & ~placed_mask
        while fresh:
            low = fresh & -fresh
            fresh ^= low
            neighbour = low.bit_length() - 1
            heapq.heappush(frontier, (-priority[neighbour], neighbour))
    return ordered


class VF2Matcher(SubgraphMatcher):
    """Vanilla VF2 for non-induced, vertex-labelled subgraph isomorphism.

    The per-pair search *plan* — vertex order, per-position anchor positions,
    look-ahead degrees and label/degree-qualified base candidate masks — is
    cached on the matcher instance keyed by the ``(pattern, target)`` pair:
    workloads match the same query against many dataset graphs and repeat
    query structures, so plan construction (which otherwise dominates cheap
    searches) amortises to a dict lookup.
    """

    name = "vf2"

    #: Upper bound on cached plans; the cache is cleared when it fills (a
    #: safety valve — at reproduction scale it never does).
    PLAN_CACHE_LIMIT = 65536

    def __init__(self) -> None:
        self._plan_cache: Dict[Tuple[Graph, Graph], tuple] = {}

    def _order(self, pattern: Graph, target: Graph) -> List[int]:
        """Pattern vertex processing order; subclasses override to reorder."""
        return connectivity_order(pattern)

    def _plan(self, pattern: Graph, target: Graph) -> tuple:
        """Cached (order, anchor_positions, unmapped_degrees, base_masks)."""
        key = (pattern, target)
        plan = self._plan_cache.get(key)
        if plan is not None:
            return plan
        order = self._order(pattern, target)
        # Per position: the positions of the pattern neighbours already mapped
        # when that position is reached (they drive candidate generation), the
        # number of pattern neighbours still unmapped there (for the one-step
        # look-ahead), and the label/degree-qualified base candidate mask.
        position_of = {vertex: pos for pos, vertex in enumerate(order)}
        anchor_positions: List[List[int]] = []
        unmapped_pattern_degree: List[int] = []
        base_masks: List[int] = []
        for pos, vertex in enumerate(order):
            anchors = [
                position_of[nb] for nb in pattern.neighbors(vertex) if position_of[nb] < pos
            ]
            anchor_positions.append(anchors)
            unmapped_pattern_degree.append(pattern.degree(vertex) - len(anchors))
            base_masks.append(
                target.label_id_mask(pattern.label_id(vertex))
                & target.degree_ge_mask(pattern.degree(vertex))
            )
        plan = (order, anchor_positions, unmapped_pattern_degree, base_masks)
        if len(self._plan_cache) >= self.PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = plan
        return plan

    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        order, anchor_positions, unmapped_pattern_degree, base_masks = self._plan(
            pattern, target
        )
        n = len(order)
        target_masks = target.neighbor_masks

        images: List[int] = [0] * n  # target image of the vertex at each position
        used_mask = 0

        def backtrack(pos: int) -> bool:
            nonlocal used_mask
            if pos == n:
                return True
            # Candidate pool: label- and degree-compatible target vertices,
            # unused, adjacent to the image of every already-mapped pattern
            # neighbour (which also enforces adjacency consistency).
            pool = base_masks[pos] & ~used_mask
            for anchor in anchor_positions[pos]:
                pool &= target_masks[images[anchor]]
                if not pool:
                    return False
            lookahead = unmapped_pattern_degree[pos]
            while pool:
                low = pool & -pool
                pool ^= low
                candidate = low.bit_length() - 1
                budget.tick()
                # One-step look-ahead: the candidate must have at least as
                # many unmapped neighbours as the pattern vertex (necessary
                # condition for extending the mapping later).
                if (target_masks[candidate] & ~used_mask).bit_count() < lookahead:
                    continue
                images[pos] = candidate
                used_mask |= low
                if backtrack(pos + 1):
                    return True
                used_mask &= ~low
            return False

        if backtrack(0):
            return {vertex: images[pos] for pos, vertex in enumerate(order)}
        return None
