"""Embedding enumeration: find every occurrence of a pattern in a target.

Subgraph *queries* only need the decision problem, but the matching problem
(all occurrences) is useful for analytics on top of the answer set, for the
Grapes-style "stop after first match" comparison the paper mentions, and for
tests (the number of embeddings is an isomorphism invariant that all matchers
must agree on).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..graphs.graph import Graph
from .base import SearchBudget
from .vf2_plus import VF2PlusMatcher

__all__ = ["iter_embeddings", "count_embeddings", "find_all_embeddings"]


def iter_embeddings(
    pattern: Graph,
    target: Graph,
    budget: Optional[SearchBudget] = None,
) -> Iterator[Dict[int, int]]:
    """Yield every injective, label-preserving, edge-preserving embedding.

    Embeddings are yielded as ``pattern vertex -> target vertex`` dictionaries.
    Two embeddings that differ only by an automorphism of the pattern are
    reported separately (standard "all distinct injections" semantics).
    """
    if pattern.order == 0:
        yield {}
        return
    budget = budget or SearchBudget()
    budget.start()

    matcher = VF2PlusMatcher()
    order = matcher._order(pattern, target)
    n = len(order)
    target_masks = target.neighbor_masks
    position_of = {vertex: pos for pos, vertex in enumerate(order)}
    anchor_positions: List[List[int]] = [
        [position_of[nb] for nb in pattern.neighbors(vertex) if position_of[nb] < pos]
        for pos, vertex in enumerate(order)
    ]
    base_masks: List[int] = [
        target.label_id_mask(pattern.label_id(vertex))
        & target.degree_ge_mask(pattern.degree(vertex))
        for vertex in order
    ]

    images: List[int] = [0] * n

    def backtrack(pos: int, used_mask: int) -> Iterator[Dict[int, int]]:
        if pos == n:
            yield {vertex: images[position_of[vertex]] for vertex in order}
            return
        # Candidates: label/degree-compatible, unused, adjacent to the images
        # of every already-mapped pattern neighbour.  Bits are consumed in
        # ascending vertex order, matching the previous sorted() behaviour.
        pool = base_masks[pos] & ~used_mask
        for anchor in anchor_positions[pos]:
            pool &= target_masks[images[anchor]]
            if not pool:
                return
        while pool:
            low = pool & -pool
            pool ^= low
            budget.tick()
            images[pos] = low.bit_length() - 1
            yield from backtrack(pos + 1, used_mask | low)

    yield from backtrack(0, 0)


def count_embeddings(
    pattern: Graph,
    target: Graph,
    limit: Optional[int] = None,
    budget: Optional[SearchBudget] = None,
) -> int:
    """Count embeddings of ``pattern`` in ``target`` (up to ``limit`` if given)."""
    count = 0
    for _ in iter_embeddings(pattern, target, budget=budget):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def find_all_embeddings(
    pattern: Graph,
    target: Graph,
    limit: Optional[int] = None,
    budget: Optional[SearchBudget] = None,
) -> List[Dict[int, int]]:
    """Materialise embeddings of ``pattern`` in ``target`` (up to ``limit``)."""
    result: List[Dict[int, int]] = []
    for embedding in iter_embeddings(pattern, target, budget=budget):
        result.append(embedding)
        if limit is not None and len(result) >= limit:
            break
    return result
