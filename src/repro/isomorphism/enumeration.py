"""Embedding enumeration: find every occurrence of a pattern in a target.

Subgraph *queries* only need the decision problem, but the matching problem
(all occurrences) is useful for analytics on top of the answer set, for the
Grapes-style "stop after first match" comparison the paper mentions, and for
tests (the number of embeddings is an isomorphism invariant that all matchers
must agree on).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..graphs.graph import Graph
from .base import SearchBudget
from .vf2_plus import VF2PlusMatcher

__all__ = ["iter_embeddings", "count_embeddings", "find_all_embeddings"]


def iter_embeddings(
    pattern: Graph,
    target: Graph,
    budget: Optional[SearchBudget] = None,
) -> Iterator[Dict[int, int]]:
    """Yield every injective, label-preserving, edge-preserving embedding.

    Embeddings are yielded as ``pattern vertex -> target vertex`` dictionaries.
    Two embeddings that differ only by an automorphism of the pattern are
    reported separately (standard "all distinct injections" semantics).
    """
    if pattern.order == 0:
        yield {}
        return
    budget = budget or SearchBudget()
    budget.start()

    matcher = VF2PlusMatcher()
    order = matcher._order(pattern, target)
    position_of = {vertex: pos for pos, vertex in enumerate(order)}
    mapped_neighbors: List[List[int]] = [
        [nb for nb in pattern.neighbors(vertex) if position_of[nb] < pos]
        for pos, vertex in enumerate(order)
    ]

    mapping: Dict[int, int] = {}
    used: set = set()

    def candidates(pos: int) -> List[int]:
        vertex = order[pos]
        anchors = mapped_neighbors[pos]
        if anchors:
            sets = sorted((target.neighbors(mapping[a]) for a in anchors), key=len)
            pool = set(sets[0])
            for other in sets[1:]:
                pool &= other
                if not pool:
                    break
        else:
            pool = set(range(target.order))
        label = pattern.label(vertex)
        degree = pattern.degree(vertex)
        return sorted(
            t
            for t in pool
            if t not in used
            and target.label(t) == label
            and target.degree(t) >= degree
        )

    def backtrack(pos: int) -> Iterator[Dict[int, int]]:
        if pos == len(order):
            yield dict(mapping)
            return
        vertex = order[pos]
        for candidate in candidates(pos):
            budget.tick()
            ok = True
            for neighbour in pattern.neighbors(vertex):
                image = mapping.get(neighbour)
                if image is not None and not target.has_edge(candidate, image):
                    ok = False
                    break
            if not ok:
                continue
            mapping[vertex] = candidate
            used.add(candidate)
            yield from backtrack(pos + 1)
            del mapping[vertex]
            used.discard(candidate)

    yield from backtrack(0)


def count_embeddings(
    pattern: Graph,
    target: Graph,
    limit: Optional[int] = None,
    budget: Optional[SearchBudget] = None,
) -> int:
    """Count embeddings of ``pattern`` in ``target`` (up to ``limit`` if given)."""
    count = 0
    for _ in iter_embeddings(pattern, target, budget=budget):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def find_all_embeddings(
    pattern: Graph,
    target: Graph,
    limit: Optional[int] = None,
    budget: Optional[SearchBudget] = None,
) -> List[Dict[int, int]]:
    """Materialise embeddings of ``pattern`` in ``target`` (up to ``limit``)."""
    result: List[Dict[int, int]] = []
    for embedding in iter_embeddings(pattern, target, budget=budget):
        result.append(embedding)
        if limit is not None and len(result) >= limit:
            break
    return result
