"""Common interface for subgraph-isomorphism (SI) algorithms.

GraphCache treats the verifier as a pluggable component ("Mverifier" in the
paper's architecture): any algorithm able to decide non-induced subgraph
isomorphism between two labelled graphs can be used.  This module defines the
abstract interface shared by the bundled implementations (VF2, VF2+, Ullmann,
GraphQL-style) plus the result record returned by a decision call.

All matchers answer the *decision* problem used by subgraph queries: "does the
target contain at least one subgraph isomorphic to the pattern?"  They can
also return one witness embedding and count embeddings up to a limit, which
the tests use for cross-validation.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import MatchTimeout
from ..graphs.graph import Graph
from ..graphs.signatures import could_be_subgraph

__all__ = ["SubgraphMatcher", "MatchOutcome", "SearchBudget"]


@dataclass
class SearchBudget:
    """Optional resource budget for a single sub-iso search.

    Attributes
    ----------
    time_limit_s:
        Wall-clock budget; exceeded searches raise :class:`MatchTimeout`.
    node_limit:
        Maximum number of search-tree nodes to expand (``None`` = unlimited).
    """

    time_limit_s: Optional[float] = None
    node_limit: Optional[int] = None
    _started_at: float = field(default=0.0, repr=False)
    _nodes: int = field(default=0, repr=False)

    def start(self) -> None:
        """Reset counters at the beginning of a search."""
        self._started_at = time.perf_counter()
        self._nodes = 0

    def tick(self) -> None:
        """Account for one expanded search node; raise if the budget is blown."""
        self._nodes += 1
        if self.node_limit is not None and self._nodes > self.node_limit:
            raise MatchTimeout(self.time_limit_s or 0.0)
        if self.time_limit_s is not None and (self._nodes & 0x3F) == 0:
            if time.perf_counter() - self._started_at > self.time_limit_s:
                raise MatchTimeout(self.time_limit_s)

    @property
    def nodes_expanded(self) -> int:
        """Number of search-tree nodes expanded so far."""
        return self._nodes


@dataclass(frozen=True)
class MatchOutcome:
    """Result of one sub-iso decision call.

    Attributes
    ----------
    matched:
        ``True`` iff the pattern is (non-induced) subgraph-isomorphic to the target.
    embedding:
        One witness mapping ``pattern vertex -> target vertex`` when matched
        and the caller requested it, else ``None``.
    nodes_expanded:
        Search effort, used by benchmarks as a hardware-independent cost proxy.
    elapsed_s:
        Wall-clock time of the call.
    """

    matched: bool
    embedding: Optional[Dict[int, int]]
    nodes_expanded: int
    elapsed_s: float


class SubgraphMatcher(abc.ABC):
    """Abstract base class for non-induced subgraph-isomorphism algorithms."""

    #: Short algorithm name used in reports and registries.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # The single method subclasses must implement.
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _search(
        self,
        pattern: Graph,
        target: Graph,
        budget: SearchBudget,
        want_embedding: bool,
    ) -> Optional[Dict[int, int]]:
        """Return an embedding if one exists, else ``None``.

        Implementations must call ``budget.tick()`` once per search-tree node.
        When ``want_embedding`` is ``False`` they may return any non-``None``
        sentinel mapping upon success.
        """

    # ------------------------------------------------------------------ #
    # Public API shared by all matchers.
    # ------------------------------------------------------------------ #
    def match(
        self,
        pattern: Graph,
        target: Graph,
        budget: Optional[SearchBudget] = None,
        want_embedding: bool = True,
    ) -> MatchOutcome:
        """Decide whether ``pattern ⊆ target`` and report search effort."""
        budget = budget or SearchBudget()
        budget.start()
        started = time.perf_counter()
        if pattern.order == 0:
            # The empty pattern is trivially contained in every graph.
            return MatchOutcome(True, {} if want_embedding else None, 0, 0.0)
        if not could_be_subgraph(pattern, target):
            elapsed = time.perf_counter() - started
            return MatchOutcome(False, None, 0, elapsed)
        embedding = self._search(pattern, target, budget, want_embedding)
        elapsed = time.perf_counter() - started
        if embedding is None:
            return MatchOutcome(False, None, budget.nodes_expanded, elapsed)
        return MatchOutcome(
            True,
            embedding if want_embedding else None,
            budget.nodes_expanded,
            elapsed,
        )

    def is_subgraph(
        self,
        pattern: Graph,
        target: Graph,
        budget: Optional[SearchBudget] = None,
    ) -> bool:
        """Return ``True`` iff ``pattern`` is subgraph-isomorphic to ``target``."""
        return self.match(pattern, target, budget=budget, want_embedding=False).matched

    def find_embedding(
        self,
        pattern: Graph,
        target: Graph,
        budget: Optional[SearchBudget] = None,
    ) -> Optional[Dict[int, int]]:
        """Return one witness embedding, or ``None`` if no embedding exists."""
        return self.match(pattern, target, budget=budget, want_embedding=True).embedding

    # ------------------------------------------------------------------ #
    @staticmethod
    def verify_embedding(pattern: Graph, target: Graph, embedding: Dict[int, int]) -> bool:
        """Check that ``embedding`` is a valid non-induced label-preserving injection."""
        if len(embedding) != pattern.order:
            return False
        if len(set(embedding.values())) != len(embedding):
            return False
        for p_vertex, t_vertex in embedding.items():
            if not target.has_vertex(t_vertex):
                return False
            if pattern.label(p_vertex) != target.label(t_vertex):
                return False
        for u, v in pattern.edges:
            if not target.has_edge(embedding[u], embedding[v]):
                return False
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
