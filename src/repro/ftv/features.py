"""Feature extraction for filter-then-verify (FTV) indexing.

FTV methods decompose graphs into small *features* and index which dataset
graph contains which feature (and how many times).  A query can only be
contained in dataset graphs that contain every feature of the query at least
as many times — this is the filtering stage.  The methods bundled with
GraphCache use three feature families:

* **label paths** (GraphGrepSX, Grapes): sequences of vertex labels along
  simple paths of up to ``max_length`` edges;
* **trees** (CT-Index): here represented by the same bounded label paths,
  which are the degenerate trees that dominate CT-Index fingerprints on
  sparse molecule graphs;
* **cycles** (CT-Index): label sequences along simple cycles of bounded size.

All extraction functions return a :class:`collections.Counter` keyed by a
*canonical* feature key so that a path read in either direction (or a cycle
read from any starting point / direction) maps to the same key.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Tuple

from ..graphs.graph import Graph

__all__ = [
    "canonical_path_key",
    "canonical_cycle_key",
    "extract_label_paths",
    "extract_label_cycles",
    "path_features",
    "cycle_features",
]

FeatureKey = Tuple[str, ...]


def canonical_path_key(labels: Iterable[object]) -> FeatureKey:
    """Canonical key of a label path: the lexicographically smaller direction."""
    forward = tuple(str(label) for label in labels)
    backward = tuple(reversed(forward))
    return forward if forward <= backward else backward


def canonical_cycle_key(labels: Iterable[object]) -> FeatureKey:
    """Canonical key of a label cycle: minimal rotation over both directions."""
    ring = tuple(str(label) for label in labels)
    if not ring:
        return ("cycle",)
    best: FeatureKey | None = None
    for sequence in (ring, tuple(reversed(ring))):
        for shift in range(len(sequence)):
            rotation = sequence[shift:] + sequence[:shift]
            if best is None or rotation < best:
                best = rotation
    return ("cycle",) + best  # tag distinguishes cycles from paths of equal labels


def extract_label_paths(graph: Graph, max_length: int) -> Counter:
    """Count all simple label paths with 0..``max_length`` edges.

    A path with 0 edges is a single vertex (its label alone); each undirected
    path is counted once (not once per direction).
    """
    counts: Counter = Counter()
    if max_length < 0:
        return counts
    for vertex in graph.vertices():
        counts[canonical_path_key([graph.label(vertex)])] += 1
    if max_length == 0:
        return counts

    # Enumerate simple paths by DFS from every start vertex.  Every undirected
    # path of >= 1 edge is discovered exactly twice (once from each endpoint),
    # so the per-path counts are halved at the end.  The DFS keeps a single
    # shared path buffer (append/pop) to avoid per-node list copies — path
    # enumeration dominates FTV index construction on dense graphs.
    double_counts: Counter = Counter()
    labels = graph.labels
    in_path = [False] * graph.order
    path_labels: List[str] = []

    def dfs(current: int, depth: int) -> None:
        for neighbour in graph.neighbors(current):
            if in_path[neighbour]:
                continue
            path_labels.append(str(labels[neighbour]))
            forward = tuple(path_labels)
            backward = forward[::-1]
            double_counts[forward if forward <= backward else backward] += 1
            if depth + 1 < max_length:
                in_path[neighbour] = True
                dfs(neighbour, depth + 1)
                in_path[neighbour] = False
            path_labels.pop()

    for start in graph.vertices():
        in_path[start] = True
        path_labels.append(str(labels[start]))
        dfs(start, 0)
        path_labels.pop()
        in_path[start] = False

    for key, value in double_counts.items():
        counts[key] += value // 2
    return counts


def extract_label_cycles(graph: Graph, max_size: int) -> Counter:
    """Count all simple label cycles with 3..``max_size`` vertices.

    Each cycle is counted once regardless of starting vertex or direction.
    """
    counts: Counter = Counter()
    if max_size < 3:
        return counts
    seen_cycles: set = set()
    for start in graph.vertices():
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        while stack:
            current, path = stack.pop()
            for neighbour in graph.neighbors(current):
                if neighbour == start and len(path) >= 3:
                    # Found a cycle; canonicalise its vertex ring (minimal
                    # rotation over both directions) so each simple cycle is
                    # counted exactly once.
                    ring = tuple(path)
                    best = None
                    for sequence in (ring, tuple(reversed(ring))):
                        for shift in range(len(sequence)):
                            rotation = sequence[shift:] + sequence[:shift]
                            if best is None or rotation < best:
                                best = rotation
                    if best in seen_cycles:
                        continue
                    seen_cycles.add(best)
                    counts[canonical_cycle_key(graph.label(v) for v in path)] += 1
                elif (
                    neighbour not in path
                    and len(path) < max_size
                    and neighbour > start
                ):
                    # Restricting to vertices > start ensures each cycle is
                    # discovered only from its minimum vertex.
                    stack.append((neighbour, path + [neighbour]))
    return counts


def path_features(graph: Graph, max_length: int) -> Counter:
    """Public alias for :func:`extract_label_paths` (GGSX / Grapes features)."""
    return extract_label_paths(graph, max_length)


def cycle_features(graph: Graph, max_size: int) -> Counter:
    """Public alias for :func:`extract_label_cycles` (CT-Index cycle features)."""
    return extract_label_cycles(graph, max_size)
