"""Feature extraction for filter-then-verify (FTV) indexing.

FTV methods decompose graphs into small *features* and index which dataset
graph contains which feature (and how many times).  A query can only be
contained in dataset graphs that contain every feature of the query at least
as many times — this is the filtering stage.  The methods bundled with
GraphCache use three feature families:

* **label paths** (GraphGrepSX, Grapes): sequences of vertex labels along
  simple paths of up to ``max_length`` edges;
* **trees** (CT-Index): here represented by the same bounded label paths,
  which are the degenerate trees that dominate CT-Index fingerprints on
  sparse molecule graphs;
* **cycles** (CT-Index): label sequences along simple cycles of bounded size.

All extraction functions return a :class:`collections.Counter` keyed by a
*canonical* feature key so that a path read in either direction (or a cycle
read from any starting point / direction) maps to the same key.

Two extraction routes produce Counter-identical results:

* the **decoded route** (:func:`extract_label_paths` /
  :func:`extract_label_cycles`) walks a fully materialised
  :class:`~repro.graphs.graph.Graph` — the reference implementation the
  property tests oracle against;
* the **CSR-native route** (:func:`packed_path_features` /
  :func:`packed_cycle_features`) walks a
  :class:`~repro.graphs.packed.PackedGraph` record directly over its
  ``indptr``/``indices`` slices.  Canonicalisation runs on small integers:
  every per-graph label code is mapped once to its *rank* in the
  sorted distinct ``str(label)`` universe of the record's label table
  (:func:`label_rank_map`), so comparing rank tuples is order-equivalent to
  comparing the string tuples the canonical keys are built from — equal
  strings get equal ranks, smaller strings get smaller ranks — and the
  chosen canonical sequence is decoded back through the table only at the
  index boundary.  This is also the fix for the label canonicalisation
  asymmetry: int-labelled and str-labelled datasets produce identical keys
  through both routes because both reduce over ``str(label)`` order.

The public :func:`path_features` / :func:`cycle_features` entry points
dispatch on the input: packed records and
:class:`~repro.graphs.packed.PackedGraphView` objects take the CSR-native
route without materialising a ``Graph``; everything else takes the decoded
route.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.packed import PackedGraph, PackedGraphView

__all__ = [
    "canonical_path_key",
    "canonical_cycle_key",
    "label_rank_map",
    "extract_label_paths",
    "extract_label_cycles",
    "packed_path_features",
    "packed_cycle_features",
    "path_features",
    "cycle_features",
]

FeatureKey = Tuple[str, ...]


def canonical_path_key(labels: Iterable[object]) -> FeatureKey:
    """Canonical key of a label path: the lexicographically smaller direction."""
    forward = tuple(str(label) for label in labels)
    backward = tuple(reversed(forward))
    return forward if forward <= backward else backward


def canonical_cycle_key(labels: Iterable[object]) -> FeatureKey:
    """Canonical key of a label cycle: minimal rotation over both directions."""
    ring = tuple(str(label) for label in labels)
    if not ring:
        return ("cycle",)
    return ("cycle",) + _minimal_rotation(ring)  # tag distinguishes cycles from paths


def _minimal_rotation(ring: Tuple) -> Tuple:
    """Lexicographically minimal rotation of ``ring`` over both directions."""
    best = None
    for sequence in (ring, tuple(reversed(ring))):
        for shift in range(len(sequence)):
            rotation = sequence[shift:] + sequence[:shift]
            if best is None or rotation < best:
                best = rotation
    return best


@lru_cache(maxsize=4096)
def label_rank_map(label_table: Tuple[object, ...]) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
    """Per-table integer canonicalisation: ``(code -> rank, rank -> string)``.

    The rank of a label code is the index of its ``str(label)`` in the sorted
    distinct-string universe of the table, so rank comparison is
    order-equivalent to string comparison (labels whose strings collide —
    e.g. ``1`` and ``"1"`` — share a rank, exactly as they share a canonical
    key).  Memoised on the table tuple: dataset records repeat a handful of
    distinct label tables across millions of graphs.
    """
    strings = [str(label) for label in label_table]
    ordered = tuple(sorted(set(strings)))
    rank_of = {s: rank for rank, s in enumerate(ordered)}
    return tuple(rank_of[s] for s in strings), ordered


def extract_label_paths(graph: Graph, max_length: int) -> Counter:
    """Count all simple label paths with 0..``max_length`` edges.

    A path with 0 edges is a single vertex (its label alone); each undirected
    path is counted once (not once per direction).
    """
    counts: Counter = Counter()
    if max_length < 0:
        return counts
    for vertex in graph.vertices():
        counts[canonical_path_key([graph.label(vertex)])] += 1
    if max_length == 0:
        return counts

    # Enumerate simple paths by DFS from every start vertex.  Every undirected
    # path of >= 1 edge is discovered exactly twice (once from each endpoint),
    # so the per-path counts are halved at the end.  The DFS keeps a single
    # shared path buffer (append/pop) to avoid per-node list copies — path
    # enumeration dominates FTV index construction on dense graphs.
    double_counts: Counter = Counter()
    labels = graph.labels
    in_path = [False] * graph.order
    path_labels: List[str] = []

    def dfs(current: int, depth: int) -> None:
        for neighbour in graph.neighbors(current):
            if in_path[neighbour]:
                continue
            path_labels.append(str(labels[neighbour]))
            forward = tuple(path_labels)
            backward = forward[::-1]
            double_counts[forward if forward <= backward else backward] += 1
            if depth + 1 < max_length:
                in_path[neighbour] = True
                dfs(neighbour, depth + 1)
                in_path[neighbour] = False
            path_labels.pop()

    for start in graph.vertices():
        in_path[start] = True
        path_labels.append(str(labels[start]))
        dfs(start, 0)
        path_labels.pop()
        in_path[start] = False

    for key, value in double_counts.items():
        counts[key] += value // 2
    return counts


def extract_label_cycles(graph: Graph, max_size: int) -> Counter:
    """Count all simple label cycles with 3..``max_size`` vertices.

    Each cycle is counted once regardless of starting vertex or direction.
    """
    counts: Counter = Counter()
    if max_size < 3:
        return counts
    seen_cycles: set = set()
    for start in graph.vertices():
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        while stack:
            current, path = stack.pop()
            for neighbour in graph.neighbors(current):
                if neighbour == start and len(path) >= 3:
                    # Found a cycle; canonicalise its vertex ring (minimal
                    # rotation over both directions) so each simple cycle is
                    # counted exactly once.
                    best = _minimal_rotation(tuple(path))
                    if best in seen_cycles:
                        continue
                    seen_cycles.add(best)
                    counts[canonical_cycle_key(graph.label(v) for v in path)] += 1
                elif (
                    neighbour not in path
                    and len(path) < max_size
                    and neighbour > start
                ):
                    # Restricting to vertices > start ensures each cycle is
                    # discovered only from its minimum vertex.
                    stack.append((neighbour, path + [neighbour]))
    return counts


# --------------------------------------------------------------------------- #
# CSR-native extraction over packed records
# --------------------------------------------------------------------------- #
def packed_path_features(packed: PackedGraph, max_length: int) -> Counter:
    """CSR-native :func:`extract_label_paths` over a packed record.

    Level-synchronous frontier expansion instead of a per-path DFS: level
    ``L`` holds every directed simple path of ``L`` edges as parallel numpy
    arrays — its end vertex, its visited-vertex set, and two integer *path
    codes* (the base-``W`` digit strings of the forward and reversed label
    ranks, ``W`` = rank universe size, see :func:`label_rank_map`).  One
    CSR gather extends all paths at once, one elementwise minimum picks
    each path's canonical code (integer comparison of equal-length base-W
    numbers is exactly the lexicographic comparison the decoded extractor
    does on string tuples), and one ``np.unique`` counts the level.  Every
    undirected path appears twice (once per direction), so the unique
    counts are halved; the surviving canonical codes — a far smaller set
    than the paths — are decoded to string keys only when the Counter is
    filled.  Visited sets are single ``uint64`` bitsets when the graph has
    at most 64 vertices (the common case for molecule records), otherwise
    a per-level column comparison against the stored path matrix.
    Counter-identical to the decoded extractor on the same graph.
    """
    counts: Counter = Counter()
    if max_length < 0:
        return counts
    n = packed.order
    if n == 0:
        return counts
    code_ranks, strings = label_rank_map(packed.label_table)
    rank_arr = np.asarray(code_ranks, dtype=np.int64)[packed.label_codes]

    # 0-edge paths (single vertices): one vectorised histogram over ranks.
    occupancy = np.bincount(rank_arr, minlength=len(strings))
    for rank in np.nonzero(occupancy)[0].tolist():
        counts[(strings[rank],)] = int(occupancy[rank])
    if max_length == 0 or not len(packed.indices):
        return counts

    indptr = packed.indptr.astype(np.int64)
    indices = packed.indices.astype(np.int64)
    width = len(strings)
    powers = [width**i for i in range(max_length + 1)]
    small = n <= 64

    last = np.arange(n, dtype=np.int64)
    forward = rank_arr.copy()
    backward = rank_arr.copy()
    if small:
        bit_table = np.uint64(1) << np.arange(n, dtype=np.uint64)
        visited = bit_table.copy()
        paths: Optional[np.ndarray] = None
    else:
        bit_table = None
        visited = None
        paths = last.reshape(n, 1)
    for edges in range(1, max_length + 1):
        starts = indptr[last]
        degrees = indptr[last + 1] - starts
        total = int(degrees.sum())
        if not total:
            break
        parent = np.repeat(np.arange(len(last), dtype=np.int64), degrees)
        neighbour = indices[
            np.repeat(starts - (np.cumsum(degrees) - degrees), degrees)
            + np.arange(total, dtype=np.int64)
        ]
        if small:
            keep = (visited[parent] & bit_table[neighbour]) == 0
        else:
            keep = np.ones(total, dtype=bool)
            for column in range(paths.shape[1]):
                keep &= neighbour != paths[parent, column]
        parent = parent[keep]
        neighbour = neighbour[keep]
        if not len(parent):
            break
        step_rank = rank_arr[neighbour]
        forward = forward[parent] * width + step_rank
        backward = backward[parent] + step_rank * powers[edges]
        if small:
            visited = visited[parent] | bit_table[neighbour]
        else:
            paths = np.concatenate([paths[parent], neighbour[:, None]], axis=1)
        last = neighbour
        uniques, pair_counts = np.unique(
            np.minimum(forward, backward), return_counts=True
        )
        length = edges + 1
        halved = pair_counts // 2  # each undirected path found once per direction
        digits = np.empty((len(uniques), length), dtype=np.int64)
        codes = uniques.copy()
        for position in range(length - 1, -1, -1):
            digits[:, position] = codes % width
            codes //= width
        for row, value in zip(digits.tolist(), halved.tolist(), strict=True):
            counts[tuple(strings[digit] for digit in row)] += value
    return counts


def packed_cycle_features(packed: PackedGraph, max_size: int) -> Counter:
    """CSR-native :func:`extract_label_cycles` over a packed record.

    Same min-vertex discovery and vertex-ring dedup as the decoded
    extractor; the label ring is canonicalised as a rank tuple and decoded
    to strings at the boundary.
    """
    counts: Counter = Counter()
    if max_size < 3 or packed.order == 0:
        return counts
    code_ranks, strings = label_rank_map(packed.label_table)
    codes = packed.label_codes.tolist()
    vertex_rank = [code_ranks[code] for code in codes]
    ptr = packed.indptr.tolist()
    idx = packed.indices.tolist()
    rows = [idx[ptr[v] : ptr[v + 1]] for v in range(len(codes))]
    seen_cycles: set = set()
    for start in range(len(codes)):
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        while stack:
            current, path = stack.pop()
            for neighbour in rows[current]:
                if neighbour == start and len(path) >= 3:
                    best = _minimal_rotation(tuple(path))
                    if best in seen_cycles:
                        continue
                    seen_cycles.add(best)
                    ring = _minimal_rotation(tuple(vertex_rank[v] for v in path))
                    counts[("cycle",) + tuple(strings[r] for r in ring)] += 1
                elif (
                    neighbour not in path
                    and len(path) < max_size
                    and neighbour > start
                ):
                    stack.append((neighbour, path + [neighbour]))
    return counts


def _packed_source(graph: Graph) -> Optional[PackedGraph]:
    """The CSR record behind ``graph``, when extraction can skip decoding."""
    if isinstance(graph, PackedGraphView):
        return graph.packed
    if isinstance(graph, PackedGraph):
        return graph
    return None


def path_features(graph: Graph, max_length: int) -> Counter:
    """Bounded label-path features (GGSX / Grapes / CT-Index tree features).

    Dispatches on the input representation: packed records and
    :class:`PackedGraphView` objects are walked CSR-natively (no ``Graph``
    is constructed); plain graphs take the decoded reference extractor.
    """
    packed = _packed_source(graph)
    if packed is not None:
        return packed_path_features(packed, max_length)
    return extract_label_paths(graph, max_length)


def cycle_features(graph: Graph, max_size: int) -> Counter:
    """Bounded label-cycle features (CT-Index), same dispatch as paths."""
    packed = _packed_source(graph)
    if packed is not None:
        return packed_cycle_features(packed, max_size)
    return extract_label_cycles(graph, max_size)
