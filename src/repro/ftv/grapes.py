"""Grapes: path-index FTV method with parallel verification (Giugno et al., 2013).

Grapes indexes the same bounded label-path features as GraphGrepSX but also
records *where* each path occurs, which lets its verifier restrict the sub-iso
search to the neighbourhood of matching locations and, importantly, run
verification across multiple threads.  The paper evaluates Grapes with 1 and
with 6 threads ("Grapes1" / "Grapes6") and alters it to stop after the first
match in each dataset graph (decision semantics) — which is the semantics all
verifiers in this library already use.

Reproduction notes
------------------
* Filtering is the same counted-path filtering as GGSX, plus a per-graph
  *location hint*: the set of dataset-graph vertices that start at least one
  maximal query path.  The hints are exposed via :meth:`candidate_regions` for
  inspection and example applications.
* Thread-level parallelism is simulated: :attr:`verify_parallelism` is carried
  on the method object and the query executor divides verification wall-clock
  time by it (see DESIGN.md, substitutions).  This preserves the *relative*
  behaviour the paper reports (Grapes6 is faster than Grapes1, hence the
  cache's relative benefit is smaller).
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, FrozenSet, Optional

from ..exceptions import CacheError
from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.vf2 import VF2Matcher
from .base import FTVMethod, PathLike
from .features import canonical_path_key, path_features
from .index_arena import FeatureIndexArena, dataset_content_hash
from .trie import PathTrie

__all__ = ["Grapes"]


class Grapes(FTVMethod):
    """Grapes: counted path filtering with location hints and parallel verify.

    Parameters
    ----------
    dataset:
        Dataset to index.
    matcher:
        Verifier (defaults to vanilla VF2, as in the original implementation).
    max_path_length:
        Maximum path length (in edges) to index; the paper uses 4.
    threads:
        Simulated verification parallelism (1 for "Grapes1", 6 for "Grapes6").
    """

    name = "grapes"

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: Optional[SubgraphMatcher] = None,
        max_path_length: int = 4,
        threads: int = 1,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self._max_path_length = max_path_length
        self._trie: PathTrie | None = None
        self._locations: Dict[int, Dict[tuple, FrozenSet[int]]] = {}
        # The original Grapes bundles vanilla VF2 as its verifier.
        super().__init__(dataset, matcher or VF2Matcher())
        self.verify_parallelism = threads
        self.name = f"grapes{threads}"

    # ------------------------------------------------------------------ #
    @property
    def max_path_length(self) -> int:
        """Maximum indexed path length in edges."""
        return self._max_path_length

    @property
    def threads(self) -> int:
        """Simulated verification thread count."""
        return self.verify_parallelism

    def _build_index(self) -> None:
        trie = PathTrie()
        locations: Dict[int, Dict[tuple, FrozenSet[int]]] = {}
        for graph in self.dataset:
            features = path_features(graph, self._max_path_length)
            trie.insert_features(features, graph.graph_id)
            locations[graph.graph_id] = self._single_vertex_locations(graph)
        self._trie = trie
        self._locations = locations

    @staticmethod
    def _single_vertex_locations(graph: Graph) -> Dict[tuple, FrozenSet[int]]:
        """Map each single-vertex feature key to the vertices carrying it."""
        result: Dict[tuple, set] = {}
        for vertex in graph.vertices():
            key = canonical_path_key([graph.label(vertex)])
            result.setdefault(key, set()).add(vertex)
        return {key: frozenset(vertices) for key, vertices in result.items()}

    def _query_features(self, query: Graph) -> Counter:
        return path_features(query, self._max_path_length)

    def _filter(self, query: Graph) -> frozenset:
        features = self._query_features(query)
        if self._findex is not None:
            return self._findex.filter_counted(features)
        assert self._trie is not None, "index not built"
        return self._trie.filter(features)

    # ------------------------------------------------------------------ #
    def _index_family(self) -> str:
        return "paths"

    def _index_params(self) -> Dict[str, object]:
        # Same family and parameters as GraphGrepSX: the sealed postings are
        # the flattened counted trie both methods filter with, so one sealed
        # segment serves either method at equal max_path_length.
        return {"max_path_length": self._max_path_length}

    def seal_feature_index(self, path: PathLike) -> Path:
        """Compile the built path trie into a sealed ``*.ftv.arena`` segment."""
        if self._trie is None:
            raise CacheError("cannot seal a feature index that was not built here")
        return FeatureIndexArena.seal(
            path,
            family=self._index_family(),
            params=self._index_params(),
            dataset_hash=dataset_content_hash(self.dataset),
            postings=self._trie.iter_features(),
        )

    def _adopt_index(self, arena: FeatureIndexArena) -> None:
        # Location hints are not part of the sealed postings; refill lazily,
        # per dataset graph, on first candidate_regions() call — the packed
        # dataset's views answer label() CSR-natively, so this stays cheap
        # and touches only the graphs a caller actually inspects.
        self._trie = None
        self._locations = {}

    # ------------------------------------------------------------------ #
    def candidate_regions(self, query: Graph, graph_id: int) -> FrozenSet[int]:
        """Vertices of dataset graph ``graph_id`` where query labels occur.

        This is Grapes' location information: the union over the query's
        vertex labels of the dataset-graph vertices carrying those labels.
        An empty result proves the graph cannot contain the query.
        """
        graph_locations = self._locations.get(graph_id)
        if graph_locations is None:
            if self._findex is None or graph_id not in self.dataset.graph_ids:
                graph_locations = {}
            else:
                graph_locations = self._single_vertex_locations(self.dataset[graph_id])
                self._locations[graph_id] = graph_locations
        region: set = set()
        for label in query.distinct_labels():
            key = canonical_path_key([label])
            region.update(graph_locations.get(key, frozenset()))
        return frozenset(region)

    def index_size_bytes(self) -> int:
        location_bytes = sum(
            16 * sum(len(vertices) for vertices in per_graph.values())
            for per_graph in self._locations.values()
        )
        if self._findex is not None:
            return self._findex.nbytes + location_bytes
        assert self._trie is not None, "index not built"
        return self._trie.approximate_size_bytes() + location_bytes
