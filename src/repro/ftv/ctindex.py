"""CT-Index: fingerprint-based FTV method combining trees and cycles (Klein et al., 2011).

CT-Index summarises every graph by a fixed-width hash fingerprint over two
feature families — bounded-size *trees* and bounded-size *cycles* — and
filters with a bitwise subset test.  Compared with the path-trie methods it
trades some filtering precision (hash collisions, no occurrence counts) for a
far smaller index, which is why the paper singles it out as having "by far the
smallest index" among the FTV methods it evaluates.

In this reproduction the tree features are the bounded label paths (the
dominant tree shape in sparse molecule graphs); cycle features are label
cycles up to ``max_cycle_size`` vertices.  Defaults follow the paper's
configuration scaled to the stand-in datasets: the paper indexes trees up to
size 6 and cycles up to size 8 in 4,096-bit fingerprints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from ..exceptions import CacheError
from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from .base import FTVMethod, PathLike
from .features import cycle_features, path_features
from .fingerprints import Fingerprint
from .index_arena import FeatureIndexArena, dataset_content_hash

__all__ = ["CTIndex"]


class CTIndex(FTVMethod):
    """CT-Index: hashed tree+cycle fingerprints with subset-test filtering.

    Parameters
    ----------
    dataset:
        Dataset to index.
    matcher:
        Verifier (defaults to VF2+; the paper pairs CT-Index with VF2+).
    max_tree_size:
        Maximum tree (path) feature size in edges.
    max_cycle_size:
        Maximum cycle feature size in vertices.
    fingerprint_bits:
        Width of the per-graph fingerprint bitmap.
    """

    name = "ctindex"

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: Optional[SubgraphMatcher] = None,
        max_tree_size: int = 4,
        max_cycle_size: int = 6,
        fingerprint_bits: int = 4096,
    ) -> None:
        self._max_tree_size = max_tree_size
        self._max_cycle_size = max_cycle_size
        self._fingerprint_bits = fingerprint_bits
        self._fingerprints: Dict[int, Fingerprint] = {}
        super().__init__(dataset, matcher)

    # ------------------------------------------------------------------ #
    @property
    def fingerprint_bits(self) -> int:
        """Width of each graph's fingerprint in bits."""
        return self._fingerprint_bits

    @property
    def max_tree_size(self) -> int:
        """Maximum indexed tree (path) feature size in edges."""
        return self._max_tree_size

    @property
    def max_cycle_size(self) -> int:
        """Maximum indexed cycle feature size in vertices."""
        return self._max_cycle_size

    def _graph_fingerprint(self, graph: Graph) -> Fingerprint:
        fingerprint = Fingerprint(self._fingerprint_bits)
        fingerprint.add_features(path_features(graph, self._max_tree_size).keys())
        fingerprint.add_features(cycle_features(graph, self._max_cycle_size).keys())
        return fingerprint

    def _build_index(self) -> None:
        self._fingerprints = {
            graph.graph_id: self._graph_fingerprint(graph) for graph in self.dataset
        }

    def _filter(self, query: Graph) -> frozenset:
        query_fingerprint = self._graph_fingerprint(query)
        if self._findex is not None:
            return self._findex.fingerprint_filter(query_fingerprint.bits)
        return frozenset(
            graph_id
            for graph_id, fingerprint in self._fingerprints.items()
            if fingerprint.contains(query_fingerprint)
        )

    # ------------------------------------------------------------------ #
    def _index_family(self) -> str:
        return "ctindex"

    def _index_params(self) -> Dict[str, object]:
        return {
            "max_tree_size": self._max_tree_size,
            "max_cycle_size": self._max_cycle_size,
            "fingerprint_bits": self._fingerprint_bits,
        }

    def seal_feature_index(self, path: PathLike) -> Path:
        """Compile the fingerprint map into a sealed ``*.ftv.arena`` segment."""
        if not self._fingerprints:
            raise CacheError("cannot seal a feature index that was not built here")
        return FeatureIndexArena.seal(
            path,
            family=self._index_family(),
            params=self._index_params(),
            dataset_hash=dataset_content_hash(self.dataset),
            fingerprints={
                graph_id: fingerprint.bits
                for graph_id, fingerprint in self._fingerprints.items()
            },
            fingerprint_bits=self._fingerprint_bits,
        )

    def _adopt_index(self, arena: FeatureIndexArena) -> None:
        self._fingerprints = {}

    def index_size_bytes(self) -> int:
        if self._findex is not None:
            return self._findex.nbytes
        return sum(fp.size_bytes() for fp in self._fingerprints.values())

    def fingerprint_of(self, graph_id: int) -> Fingerprint:
        """Return the stored fingerprint of a dataset graph (for inspection)."""
        if self._findex is not None and graph_id not in self._fingerprints:
            return Fingerprint(
                self._fingerprint_bits, bits=self._findex.fingerprint_row(graph_id)
            )
        return self._fingerprints[graph_id]
