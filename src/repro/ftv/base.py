"""Base class for filter-then-verify (FTV) methods.

An FTV method builds an index over the dataset graphs in a pre-processing
step; at query time the index prunes graphs that provably cannot contain the
query (filtering), and only the surviving candidate set is sub-iso tested
(verification).  The filtering must be *sound*: it may never prune a graph
that actually contains the query — the library's property tests check exactly
this invariant for every bundled method.
"""

from __future__ import annotations

import abc
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from ..exceptions import CacheError
from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.vf2_plus import VF2PlusMatcher
from ..methods.base import Method
from .index_arena import FeatureIndexArena, dataset_content_hash

__all__ = ["FTVMethod"]

PathLike = Union[str, "Path"]


class FTVMethod(Method):
    """A Method M with a dataset index and a filtering stage.

    Subclasses implement :meth:`_index_graph` (producing the per-graph feature
    representation at build time) and :meth:`_filter` (producing the candidate
    set from the query's features at query time).

    A built index can be compiled into a sealed, fork-shareable segment with
    :meth:`seal_feature_index` and adopted in another process with
    :meth:`attach_feature_index` — see
    :class:`~repro.ftv.index_arena.FeatureIndexArena`.  Attaching validates
    the recorded build parameters and dataset content hash; on any mismatch
    it warns and leaves the method on its in-process index (the caller falls
    back to :meth:`rebuild_index`).
    """

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        self._findex: Optional[FeatureIndexArena] = None
        super().__init__(dataset, matcher or VF2PlusMatcher())
        started = time.perf_counter()
        self._build_index()
        self._build_time_s = time.perf_counter() - started

    # ------------------------------------------------------------------ #
    @property
    def build_time_s(self) -> float:
        """Wall-clock time spent building the dataset index."""
        return self._build_time_s

    @property
    def feature_index(self) -> Optional[FeatureIndexArena]:
        """The attached sealed index, when the method serves from one."""
        return self._findex

    # ------------------------------------------------------------------ #
    # Sealed-index lifecycle
    # ------------------------------------------------------------------ #
    def _index_family(self) -> str:
        """Feature family tag recorded in (and required of) a sealed index."""
        raise CacheError(f"{type(self).__name__} does not support sealed feature indexes")

    def _index_params(self) -> Dict[str, object]:
        """Build parameters recorded in (and required of) a sealed index."""
        raise CacheError(f"{type(self).__name__} does not support sealed feature indexes")

    def seal_feature_index(self, path: PathLike) -> Path:
        """Compile the built index into a sealed segment at ``path``."""
        raise CacheError(f"{type(self).__name__} does not support sealed feature indexes")

    def _adopt_index(self, arena: FeatureIndexArena) -> None:
        """Subclass hook: switch filtering onto ``arena`` (drop built state)."""
        raise CacheError(f"{type(self).__name__} does not support sealed feature indexes")

    def attach_feature_index(self, path: PathLike) -> bool:
        """Adopt the sealed index at ``path`` if it matches this method.

        Returns ``False`` (with a warning, leaving the current index in
        place) when the file is unreadable, was built with different
        parameters, or is *stale* — its recorded dataset content hash no
        longer matches this method's dataset (e.g. the dataset segment was
        resealed after the index was built).
        """
        try:
            arena = FeatureIndexArena.attach(path)
        except (CacheError, OSError) as exc:
            warnings.warn(f"feature index {path}: attach failed ({exc}); rebuilding")
            return False
        if arena.family != self._index_family() or arena.params != self._index_params():
            warnings.warn(
                f"feature index {path}: built for {arena.family}{arena.params}, "
                f"need {self._index_family()}{self._index_params()}; rebuilding"
            )
            return False
        if arena.dataset_hash != dataset_content_hash(self.dataset):
            warnings.warn(
                f"feature index {path}: stale (dataset content changed since "
                "the index was sealed); rebuilding"
            )
            return False
        self._findex = arena
        self._adopt_index(arena)
        return True

    def rebuild_index(self) -> None:
        """Rebuild the in-process index over the current dataset (re-timed)."""
        self._findex = None
        started = time.perf_counter()
        self._build_index()
        self._build_time_s = time.perf_counter() - started

    @abc.abstractmethod
    def _build_index(self) -> None:
        """Build the dataset index (called once from ``__init__``)."""

    @abc.abstractmethod
    def _filter(self, query: Graph) -> frozenset:
        """Return the candidate set for ``query`` using the index."""

    # ------------------------------------------------------------------ #
    def candidates(self, query: Graph) -> frozenset:
        """Candidate set: never larger than the dataset, always ⊇ answer set."""
        return self._filter(query)

    @abc.abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate memory footprint of the dataset index."""
