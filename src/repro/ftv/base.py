"""Base class for filter-then-verify (FTV) methods.

An FTV method builds an index over the dataset graphs in a pre-processing
step; at query time the index prunes graphs that provably cannot contain the
query (filtering), and only the surviving candidate set is sub-iso tested
(verification).  The filtering must be *sound*: it may never prune a graph
that actually contains the query — the library's property tests check exactly
this invariant for every bundled method.
"""

from __future__ import annotations

import abc
import time
from typing import Optional

from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.vf2_plus import VF2PlusMatcher
from ..methods.base import Method

__all__ = ["FTVMethod"]


class FTVMethod(Method):
    """A Method M with a dataset index and a filtering stage.

    Subclasses implement :meth:`_index_graph` (producing the per-graph feature
    representation at build time) and :meth:`_filter` (producing the candidate
    set from the query's features at query time).
    """

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: Optional[SubgraphMatcher] = None,
    ) -> None:
        super().__init__(dataset, matcher or VF2PlusMatcher())
        started = time.perf_counter()
        self._build_index()
        self._build_time_s = time.perf_counter() - started

    # ------------------------------------------------------------------ #
    @property
    def build_time_s(self) -> float:
        """Wall-clock time spent building the dataset index."""
        return self._build_time_s

    @abc.abstractmethod
    def _build_index(self) -> None:
        """Build the dataset index (called once from ``__init__``)."""

    @abc.abstractmethod
    def _filter(self, query: Graph) -> frozenset:
        """Return the candidate set for ``query`` using the index."""

    # ------------------------------------------------------------------ #
    def candidates(self, query: Graph) -> frozenset:
        """Candidate set: never larger than the dataset, always ⊇ answer set."""
        return self._filter(query)

    @abc.abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate memory footprint of the dataset index."""
