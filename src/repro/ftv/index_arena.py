"""Sealed, fork-shareable FTV feature indexes (``*.ftv.arena`` segments).

The FTV methods build their dataset index by scanning every graph at
startup.  On the multi-process serving path that scan used to run once *per
forked worker* — the exact per-consumer rederivation the packed-storage
line of work removes everywhere else.  A :class:`FeatureIndexArena` is the
compiled form of a built index, published once by the pool owner and
attached read-only by every worker:

* **postings** (GraphGrepSX / Grapes): the counted trie flattens into CSR
  arrays — ``post_ptr`` (feature-id → slice), ``post_ids`` (sorted owner
  graph ids) and ``post_counts`` (parallel occurrence counts) — plus the
  feature-key table.  Filtering intersects the per-feature sorted id arrays
  with ``searchsorted``, reproducing :meth:`PathTrie.filter` exactly.
* **fingerprints** (CT-Index): one ``uint8`` matrix row per graph
  (little-endian bitmap bytes); filtering is a vectorised row-wise subset
  test.

The segment file reuses the :class:`~repro.core.backends.arena.GraphArena`
idiom byte for byte: fixed header (magic + version/payload/table offsets),
8-aligned numpy sections, trailing JSON table, atomic tempfile +
``os.replace`` publish, read-only ``np.memmap`` attach.  The JSON table
additionally records the *build parameters* and a *dataset content hash*
(:func:`dataset_content_hash`), so an attaching worker can prove the index
matches both its method configuration and the exact sealed dataset — a
stale index (dataset resealed after the build) fails the hash check and the
worker falls back to an in-process rebuild with a warning.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import CacheError

__all__ = ["FeatureIndexArena", "dataset_content_hash"]

PathLike = Union[str, "os.PathLike[str]"]

#: Segment-file header: 8-byte magic + four little-endian int64 fields
#: (version, payload length, table offset, table length) — the GraphArena
#: layout with a distinct magic.
_MAGIC = b"GCFTVIX1"
_HEADER_BYTES = 8 + 4 * 8
_VERSION = 1


def _pad8(length: int) -> int:
    return (-length) % 8


def dataset_content_hash(dataset) -> str:
    """Content hash of a dataset's packed record bytes, in graph-id order.

    Both sides of the seal→fork→attach handshake can compute it cheaply:
    an arena-backed dataset (:class:`~repro.core.packed_dataset.PackedGraphDataset`)
    hashes the raw record bytes straight out of its segment, while the
    owner's original ``Graph`` dataset packs each graph — ``seal`` copies
    record bytes verbatim, so the two digests agree exactly when the sealed
    file holds this dataset's graphs.
    """
    digest = hashlib.blake2b(digest_size=16)
    arena = getattr(dataset, "arena", None)
    if arena is not None:
        for extent in arena.extents():
            digest.update(arena.bytes_at(extent))
    else:
        for graph in dataset:
            digest.update(graph.to_packed().to_bytes())
    return digest.hexdigest()


class FeatureIndexArena:
    """One sealed FTV index segment (see module docstring)."""

    def __init__(
        self,
        path: Path,
        table: Dict[str, object],
        post_ptr: np.ndarray,
        post_ids: np.ndarray,
        post_counts: np.ndarray,
        fp_matrix: Optional[np.ndarray],
        nbytes: int,
    ) -> None:
        self._path = path
        self._table = table
        self._post_ptr = post_ptr
        self._post_ids = post_ids
        self._post_counts = post_counts
        self._fp_matrix = fp_matrix
        self._nbytes = nbytes
        self._features: List[Tuple[str, ...]] = [
            tuple(feature) for feature in table["features"]
        ]
        self._feature_ids: Optional[Dict[Tuple[str, ...], int]] = None
        self._owners = frozenset(table["owners"])
        self._graph_ids: List[int] = list(table["graph_ids"])

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Segment file this index was attached from."""
        return self._path

    @property
    def family(self) -> str:
        """Feature family the index was built for (``paths`` / ``ctindex``)."""
        return str(self._table["family"])

    @property
    def params(self) -> Dict[str, object]:
        """Build parameters recorded at seal time."""
        return dict(self._table["params"])

    @property
    def dataset_hash(self) -> str:
        """Content hash of the dataset the index was built over."""
        return str(self._table["dataset_hash"])

    @property
    def owners(self) -> frozenset:
        """Graph ids holding at least one posting (the no-feature answer set)."""
        return self._owners

    @property
    def feature_count(self) -> int:
        """Number of distinct features with postings."""
        return len(self._features)

    @property
    def fingerprint_bits(self) -> int:
        """Fingerprint width in bits (0 when no fingerprint section)."""
        return int(self._table.get("fingerprint_bits", 0))

    @property
    def nbytes(self) -> int:
        """Size of the sealed segment file."""
        return self._nbytes

    # ------------------------------------------------------------------ #
    # Sealing
    # ------------------------------------------------------------------ #
    @classmethod
    def seal(
        cls,
        path: PathLike,
        *,
        family: str,
        params: Mapping[str, object],
        dataset_hash: str,
        postings: Iterable[Tuple[Sequence[str], Mapping[int, int]]] = (),
        fingerprints: Optional[Mapping[int, int]] = None,
        fingerprint_bits: int = 0,
    ) -> Path:
        """Compile and atomically publish an index segment at ``path``.

        ``postings`` yields ``(feature, {owner: count})`` pairs (the shape
        of :meth:`PathTrie.iter_features`); ``fingerprints`` maps graph id →
        integer bitmap of ``fingerprint_bits`` width.  Features are stored
        sorted so the sealed bytes are deterministic for a given index.
        """
        target = Path(path)
        ordered = sorted(
            ((tuple(feature), dict(counts)) for feature, counts in postings),
            key=lambda item: item[0],
        )
        ptr: List[int] = [0]
        ids: List[int] = []
        counts: List[int] = []
        owners: set = set()
        for _, posting in ordered:
            for owner in sorted(posting):
                ids.append(int(owner))
                counts.append(int(posting[owner]))
            owners.update(posting)
            ptr.append(len(ids))
        post_ptr = np.asarray(ptr, dtype="<i8")
        post_ids = np.asarray(ids, dtype="<i4")
        post_counts = np.asarray(counts, dtype="<i4")

        graph_ids: List[int] = []
        if fingerprints:
            if fingerprint_bits <= 0 or fingerprint_bits % 8:
                raise CacheError("fingerprint_bits must be a positive multiple of 8")
            width_bytes = fingerprint_bits // 8
            graph_ids = sorted(int(graph_id) for graph_id in fingerprints)
            rows = b"".join(
                int(fingerprints[graph_id]).to_bytes(width_bytes, "little")
                for graph_id in graph_ids
            )
            fp_blob = rows
        else:
            fingerprint_bits = 0
            fp_blob = b""

        sections: List[Tuple[str, bytes]] = [
            ("post_ptr", post_ptr.tobytes()),
            ("post_ids", post_ids.tobytes()),
            ("post_counts", post_counts.tobytes()),
            ("fp_matrix", fp_blob),
        ]
        payload = bytearray()
        layout: Dict[str, List[int]] = {}
        for name, blob in sections:
            layout[name] = [len(payload), len(blob)]
            payload += blob
            payload += b"\x00" * _pad8(len(payload))
        table = {
            "version": _VERSION,
            "family": family,
            "params": dict(params),
            "dataset_hash": dataset_hash,
            "features": [list(feature) for feature, _ in ordered],
            "owners": sorted(int(owner) for owner in owners),
            "graph_ids": graph_ids,
            "fingerprint_bits": fingerprint_bits,
            "sections": layout,
        }
        cls._write_segment_file(target, bytes(payload), table)
        return target

    # ------------------------------------------------------------------ #
    # Attaching
    # ------------------------------------------------------------------ #
    @classmethod
    def attach(cls, path: PathLike) -> "FeatureIndexArena":
        """Open a sealed index segment read-only (shared pages across processes)."""
        target = Path(path)
        payload_length, table = cls._read_segment_table(target)
        buffer = np.memmap(target, dtype=np.uint8, mode="r")
        layout = table["sections"]

        def section(name: str, dtype: str) -> np.ndarray:
            offset, length = (int(x) for x in layout[name])
            return np.frombuffer(
                buffer, dtype=dtype, count=length // np.dtype(dtype).itemsize,
                offset=_HEADER_BYTES + offset,
            )

        post_ptr = section("post_ptr", "<i8")
        post_ids = section("post_ids", "<i4")
        post_counts = section("post_counts", "<i4")
        fp_matrix = None
        bits = int(table.get("fingerprint_bits", 0))
        if bits:
            flat = section("fp_matrix", "u1")
            fp_matrix = flat.reshape(len(table["graph_ids"]), bits // 8)
        nbytes = target.stat().st_size
        return cls(target, table, post_ptr, post_ids, post_counts, fp_matrix, nbytes)

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def _feature_id(self, feature: Tuple[str, ...]) -> Optional[int]:
        if self._feature_ids is None:
            self._feature_ids = {
                feature: fid for fid, feature in enumerate(self._features)
            }
        return self._feature_ids.get(feature)

    def posting(self, feature: Sequence[str]) -> Dict[int, int]:
        """``{owner: count}`` for one feature (:meth:`PathTrie.lookup` shape)."""
        fid = self._feature_id(tuple(feature))
        if fid is None:
            return {}
        lo, hi = int(self._post_ptr[fid]), int(self._post_ptr[fid + 1])
        return dict(
            zip(
                self._post_ids[lo:hi].tolist(),
                self._post_counts[lo:hi].tolist(),
                strict=True,
            )
        )

    def filter_counted(self, query_features: Mapping[Sequence[str], int]) -> frozenset:
        """Owners containing every query feature with sufficient multiplicity.

        Semantics are :meth:`PathTrie.filter` exactly (same evaluation
        order, same no-feature answer), but each step is a ``searchsorted``
        intersection of sorted id arrays instead of a trie walk.
        """
        if not query_features:
            return self._owners
        survivors: Optional[np.ndarray] = None
        ordered = sorted(query_features.items(), key=lambda item: -len(item[0]))
        for feature, needed in ordered:
            fid = self._feature_id(tuple(feature))
            if fid is None:
                return frozenset()
            lo, hi = int(self._post_ptr[fid]), int(self._post_ptr[fid + 1])
            matching = self._post_ids[lo:hi][self._post_counts[lo:hi] >= needed]
            if survivors is None:
                survivors = matching
            else:
                survivors = _intersect_sorted(survivors, matching)
            if not len(survivors):
                return frozenset()
        return frozenset(survivors.tolist())

    def fingerprint_row(self, graph_id: int) -> int:
        """The stored bitmap of ``graph_id`` as an integer."""
        if self._fp_matrix is None:
            raise CacheError(f"{self._path}: index has no fingerprint section")
        row = self._graph_ids.index(graph_id)
        return int.from_bytes(self._fp_matrix[row].tobytes(), "little")

    def fingerprint_filter(self, query_bits: int) -> frozenset:
        """Graph ids whose bitmap is a superset of ``query_bits`` (row-wise)."""
        if self._fp_matrix is None:
            raise CacheError(f"{self._path}: index has no fingerprint section")
        width_bytes = self.fingerprint_bits // 8
        query_row = np.frombuffer(
            int(query_bits).to_bytes(width_bytes, "little"), dtype=np.uint8
        )
        hits = ((self._fp_matrix & query_row) == query_row).all(axis=1)
        ids = np.asarray(self._graph_ids, dtype=np.int64)
        return frozenset(ids[hits].tolist())

    # ------------------------------------------------------------------ #
    # Segment-file plumbing (GraphArena idiom)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _write_segment_file(target: Path, payload: bytes, table: Dict[str, object]) -> None:
        table_blob = json.dumps(table).encode("utf-8")
        header = _MAGIC + np.array(
            [_VERSION, len(payload), _HEADER_BYTES + len(payload), len(table_blob)],
            dtype="<i8",
        ).tobytes()
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(header)
                stream.write(payload)
                stream.write(table_blob)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    @staticmethod
    def _read_segment_table(path: Path) -> Tuple[int, Dict[str, object]]:
        with open(path, "rb") as stream:
            raw = stream.read(_HEADER_BYTES)
            if len(raw) < _HEADER_BYTES or raw[:8] != _MAGIC:
                raise CacheError(f"{path}: not a feature-index segment file")
            version, payload_length, table_offset, table_length = np.frombuffer(
                raw, dtype="<i8", count=4, offset=8
            ).tolist()
            if version != _VERSION:
                raise CacheError(f"{path}: unsupported feature-index version {version}")
            stream.seek(int(table_offset))
            table = json.loads(stream.read(int(table_length)).decode("utf-8"))
        return int(payload_length), table

    def __repr__(self) -> str:
        return (
            f"<FeatureIndexArena {self.family!r} features={self.feature_count} "
            f"graphs={len(self._owners) or len(self._graph_ids)} path={str(self._path)!r}>"
        )


def _intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted int arrays via ``searchsorted``."""
    if not len(a) or not len(b):
        return a[:0]
    positions = np.searchsorted(b, a)
    positions[positions == len(b)] = len(b) - 1
    return a[b[positions] == a]
