"""Filter-then-verify (FTV) methods: GraphGrepSX, Grapes, CT-Index."""

from .base import FTVMethod
from .ctindex import CTIndex
from .features import (
    canonical_cycle_key,
    canonical_path_key,
    cycle_features,
    extract_label_cycles,
    extract_label_paths,
    label_rank_map,
    packed_cycle_features,
    packed_path_features,
    path_features,
)
from .fingerprints import Fingerprint, feature_bit
from .ggsx import GraphGrepSX
from .grapes import Grapes
from .index_arena import FeatureIndexArena, dataset_content_hash
from .supergraph import SupergraphFeatureIndex
from .trie import PathTrie

__all__ = [
    "FTVMethod",
    "GraphGrepSX",
    "Grapes",
    "CTIndex",
    "SupergraphFeatureIndex",
    "PathTrie",
    "Fingerprint",
    "FeatureIndexArena",
    "feature_bit",
    "canonical_cycle_key",
    "canonical_path_key",
    "cycle_features",
    "dataset_content_hash",
    "extract_label_cycles",
    "extract_label_paths",
    "label_rank_map",
    "packed_cycle_features",
    "packed_path_features",
    "path_features",
]
