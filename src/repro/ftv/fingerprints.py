"""Fixed-width hash fingerprints (bitmaps) used by CT-Index.

CT-Index does not store features explicitly: each graph is summarised by a
fixed-width bitmap where every extracted feature sets one bit (chosen by
hashing the feature key).  Filtering reduces to a bitwise subset test:
``query_bits & graph_bits == query_bits``.  The bitmap width trades filtering
power (fewer hash collisions) against index size — the paper uses 4,096 bits
by default and 8,192 bits in the enlarged-feature experiment of §7.3.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple

__all__ = ["Fingerprint", "feature_bit"]


def feature_bit(feature: Tuple[str, ...], width_bits: int) -> int:
    """Deterministically map a feature key to a bit position in [0, width)."""
    digest = hashlib.blake2b("\x1f".join(feature).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % width_bits


class Fingerprint:
    """A fixed-width bitmap over hashed features.

    The bitmap is stored as a Python integer, which makes the subset test a
    single ``&`` / ``==`` pair and keeps memory usage proportional to the
    number of set bits.
    """

    __slots__ = ("_bits", "_width")

    def __init__(self, width_bits: int = 4096, bits: int = 0) -> None:
        if width_bits <= 0:
            raise ValueError("width_bits must be positive")
        self._width = width_bits
        self._bits = bits

    # ------------------------------------------------------------------ #
    @property
    def width_bits(self) -> int:
        """Total number of bit positions."""
        return self._width

    @property
    def bits(self) -> int:
        """The raw bitmap as an integer."""
        return self._bits

    def popcount(self) -> int:
        """Number of set bits."""
        return bin(self._bits).count("1")

    # ------------------------------------------------------------------ #
    def add_feature(self, feature: Tuple[str, ...]) -> None:
        """Set the bit corresponding to ``feature``."""
        self._bits |= 1 << feature_bit(feature, self._width)

    def add_features(self, features: Iterable[Tuple[str, ...]]) -> None:
        """Set the bits of every feature in ``features``."""
        for feature in features:
            self.add_feature(feature)

    def contains(self, other: "Fingerprint") -> bool:
        """Return ``True`` if every bit of ``other`` is set in ``self``."""
        if other._width != self._width:
            raise ValueError("cannot compare fingerprints of different widths")
        return (self._bits & other._bits) == other._bits

    def size_bytes(self) -> int:
        """Memory footprint of the bitmap (width in bytes, as stored on disk)."""
        return self._width // 8

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return self._width == other._width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._width, self._bits))

    def __repr__(self) -> str:
        return f"<Fingerprint width={self._width} popcount={self.popcount()}>"
