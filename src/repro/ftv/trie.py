"""Prefix trie over label-path features (the GraphGrepSX index structure).

GraphGrepSX stores the label paths of every dataset graph in a suffix/prefix
trie whose nodes record, per graph, how many times the path ending at that
node occurs.  Filtering a query walks the trie once per query feature and
intersects the sets of graphs whose recorded count is at least the query's
count.

The same structure, with per-query metadata instead of per-dataset-graph
metadata, underpins GraphCache's own query index (``GCindex``), which is why
it lives in its own module.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = ["PathTrie"]


class _TrieNode:
    """Internal trie node: children by label plus per-owner occurrence counts."""

    __slots__ = ("children", "counts")

    def __init__(self) -> None:
        self.children: Dict[str, _TrieNode] = {}
        self.counts: Dict[int, int] = {}


class PathTrie:
    """A counted prefix trie mapping label sequences to ``{owner_id: count}``.

    ``owner_id`` is a dataset-graph id for FTV indexes and a cached-query id
    for GraphCache's query index.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._feature_count = 0
        self._owners: set = set()

    # ------------------------------------------------------------------ #
    @property
    def feature_count(self) -> int:
        """Number of distinct (feature, owner) postings inserted."""
        return self._feature_count

    @property
    def owners(self) -> frozenset:
        """Set of all owner ids present in the trie."""
        return frozenset(self._owners)

    def __len__(self) -> int:
        return self._feature_count

    # ------------------------------------------------------------------ #
    def insert(self, feature: Sequence[str], owner_id: int, count: int = 1) -> None:
        """Record that ``owner_id`` contains ``feature`` ``count`` times (additive)."""
        if count <= 0:
            return
        node = self._root
        for label in feature:
            child = node.children.get(label)
            if child is None:
                child = _TrieNode()
                node.children[label] = child
            node = child
        if owner_id not in node.counts:
            self._feature_count += 1
        node.counts[owner_id] = node.counts.get(owner_id, 0) + count
        self._owners.add(owner_id)

    def insert_features(self, features: Dict[Sequence[str], int], owner_id: int) -> None:
        """Bulk-insert a feature counter for a single owner."""
        for feature, count in features.items():
            self.insert(feature, owner_id, count)

    def remove_owner(self, owner_id: int) -> None:
        """Remove every posting of ``owner_id`` (used on cache eviction)."""
        if owner_id not in self._owners:
            return
        removed = self._remove_owner_recursive(self._root, owner_id)
        self._feature_count -= removed
        self._owners.discard(owner_id)

    def _remove_owner_recursive(self, node: _TrieNode, owner_id: int) -> int:
        removed = 0
        if owner_id in node.counts:
            del node.counts[owner_id]
            removed += 1
        empty_children = []
        for label, child in node.children.items():
            removed += self._remove_owner_recursive(child, owner_id)
            if not child.counts and not child.children:
                empty_children.append(label)
        for label in empty_children:
            del node.children[label]
        return removed

    # ------------------------------------------------------------------ #
    def lookup(self, feature: Sequence[str]) -> Dict[int, int]:
        """Return ``{owner_id: count}`` for owners containing ``feature``."""
        node: Optional[_TrieNode] = self._root
        for label in feature:
            node = node.children.get(label) if node is not None else None
            if node is None:
                return {}
        return dict(node.counts)

    def owners_with_feature(self, feature: Sequence[str], min_count: int = 1) -> frozenset:
        """Owners containing ``feature`` at least ``min_count`` times."""
        return frozenset(
            owner for owner, count in self.lookup(feature).items() if count >= min_count
        )

    def filter(self, query_features: Dict[Sequence[str], int]) -> frozenset:
        """Owners containing *every* query feature with sufficient multiplicity.

        Returns the full owner set when the query has no features (no
        filtering power).
        """
        if not query_features:
            return frozenset(self._owners)
        survivors: Optional[set] = None
        # Evaluate rare features first: they shrink the survivor set fastest.
        ordered = sorted(query_features.items(), key=lambda item: -len(item[0]))
        for feature, needed in ordered:
            matching = {
                owner
                for owner, count in self.lookup(feature).items()
                if count >= needed
            }
            if survivors is None:
                survivors = matching
            else:
                survivors &= matching
            if not survivors:
                return frozenset()
        return frozenset(survivors if survivors is not None else self._owners)

    # ------------------------------------------------------------------ #
    def iter_features(self) -> Iterator[Tuple[Tuple[str, ...], Dict[int, int]]]:
        """Yield ``(feature, {owner: count})`` for every stored feature."""
        stack: list = [((), self._root)]
        while stack:
            prefix, node = stack.pop()
            if node.counts:
                yield prefix, dict(node.counts)
            for label, child in node.children.items():
                stack.append((prefix + (label,), child))

    def approximate_size_bytes(self) -> int:
        """Rough memory footprint estimate, used for space-overhead reports."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64  # node overhead
            total += 48 * len(node.children)
            total += 16 * len(node.counts)
            stack.extend(node.children.values())
        return total
