"""GraphGrepSX (GGSX): path-trie FTV method (Bonnici et al., 2010).

GGSX decomposes every dataset graph into all label paths of bounded length and
stores them, with occurrence counts, in a suffix trie.  A query graph is
decomposed the same way; a dataset graph survives filtering only if it
contains every query path at least as many times as the query does.

The paper configures GGSX (and Grapes) to index paths up to length 4, which is
also the default here.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, Optional

from ..exceptions import CacheError
from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from ..isomorphism.vf2 import VF2Matcher
from .base import FTVMethod, PathLike
from .features import path_features
from .index_arena import FeatureIndexArena, dataset_content_hash
from .trie import PathTrie

__all__ = ["GraphGrepSX"]


class GraphGrepSX(FTVMethod):
    """GraphGrepSX: counted label-path trie filtering.

    Parameters
    ----------
    dataset:
        Dataset to index.
    matcher:
        Verifier (defaults to vanilla VF2, as in the original implementation).
    max_path_length:
        Maximum path length (in edges) to index; the paper uses 4.
    """

    name = "ggsx"

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: Optional[SubgraphMatcher] = None,
        max_path_length: int = 4,
    ) -> None:
        self._max_path_length = max_path_length
        self._trie: PathTrie | None = None
        # The original GraphGrepSX bundles vanilla VF2 as its verifier.
        super().__init__(dataset, matcher or VF2Matcher())

    # ------------------------------------------------------------------ #
    @property
    def max_path_length(self) -> int:
        """Maximum indexed path length in edges."""
        return self._max_path_length

    def _build_index(self) -> None:
        trie = PathTrie()
        for graph in self.dataset:
            features = path_features(graph, self._max_path_length)
            trie.insert_features(features, graph.graph_id)
        self._trie = trie

    def _query_features(self, query: Graph) -> Counter:
        return path_features(query, self._max_path_length)

    def _filter(self, query: Graph) -> frozenset:
        features = self._query_features(query)
        if self._findex is not None:
            return self._findex.filter_counted(features)
        assert self._trie is not None, "index not built"
        return self._trie.filter(features)

    # ------------------------------------------------------------------ #
    def _index_family(self) -> str:
        return "paths"

    def _index_params(self) -> Dict[str, object]:
        return {"max_path_length": self._max_path_length}

    def seal_feature_index(self, path: PathLike) -> Path:
        """Compile the built path trie into a sealed ``*.ftv.arena`` segment."""
        if self._trie is None:
            raise CacheError("cannot seal a feature index that was not built here")
        return FeatureIndexArena.seal(
            path,
            family=self._index_family(),
            params=self._index_params(),
            dataset_hash=dataset_content_hash(self.dataset),
            postings=self._trie.iter_features(),
        )

    def _adopt_index(self, arena: FeatureIndexArena) -> None:
        self._trie = None

    def index_size_bytes(self) -> int:
        if self._findex is not None:
            return self._findex.nbytes
        assert self._trie is not None, "index not built"
        return self._trie.approximate_size_bytes()
