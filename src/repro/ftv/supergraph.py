"""An FTV method for *supergraph* queries.

GraphCache serves supergraph queries ("which dataset graphs are contained in
my query?") as well as subgraph queries (§5.1).  The subgraph FTV indexes
bundled with the library cannot act as Method M for that query type — their
filtering direction is wrong — so this module provides a feature-containment
index in the spirit of the supergraph-query literature the paper cites
(cIndex / IGQuery / the scalable supergraph search of Lyu et al.):

* at build time every dataset graph is decomposed into bounded label paths
  (its features) and the counters are stored;
* a dataset graph ``G`` can only be contained in a query ``g`` if every
  feature of ``G`` occurs in ``g`` at least as often, so filtering keeps
  exactly the graphs whose stored counter is dominated by the query's counter.

The method is sound for supergraph semantics: filtering never discards a
graph that is actually contained in the query.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from ..graphs.dataset import GraphDataset
from ..graphs.graph import Graph
from ..isomorphism.base import SubgraphMatcher
from .base import FTVMethod
from .features import path_features

__all__ = ["SupergraphFeatureIndex"]


class SupergraphFeatureIndex(FTVMethod):
    """Feature-containment FTV method for supergraph queries.

    Parameters
    ----------
    dataset:
        Dataset to index.
    matcher:
        Verifier (defaults to VF2+); verification tests each candidate dataset
        graph *inside* the query.
    max_path_length:
        Maximum label-path length (in edges) used as features.
    """

    name = "supergraph-ftv"
    supports_supergraph = True

    def __init__(
        self,
        dataset: GraphDataset,
        matcher: Optional[SubgraphMatcher] = None,
        max_path_length: int = 3,
    ) -> None:
        self._max_path_length = max_path_length
        self._graph_features: Dict[int, Counter] = {}
        super().__init__(dataset, matcher)

    # ------------------------------------------------------------------ #
    @property
    def max_path_length(self) -> int:
        """Maximum indexed label-path length in edges."""
        return self._max_path_length

    def _build_index(self) -> None:
        self._graph_features = {
            graph.graph_id: path_features(graph, self._max_path_length)
            for graph in self.dataset
        }

    def _filter(self, query: Graph) -> frozenset:
        query_features = path_features(query, self._max_path_length)
        survivors = []
        for graph_id, features in self._graph_features.items():
            graph = self.dataset[graph_id]
            if graph.order > query.order or graph.size > query.size:
                continue
            if all(
                query_features.get(feature, 0) >= count
                for feature, count in features.items()
            ):
                survivors.append(graph_id)
        return frozenset(survivors)

    def index_size_bytes(self) -> int:
        return sum(
            48 + 24 * len(counter) for counter in self._graph_features.values()
        )
