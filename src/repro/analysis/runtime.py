"""Named-lock factory with an opt-in runtime lock-order sanitizer.

All locks in the concurrent core are created through :func:`make_lock`,
:func:`make_rlock`, or :func:`make_condition` under a name from
:data:`repro.analysis.locks.LOCK_RANKS`.  Normally the factories return the
plain :mod:`threading` primitives — zero overhead, byte-for-byte the seed
behaviour.  When the environment variable ``REPRO_LOCK_SANITIZER=1`` is set
*at lock-creation time*, they return :class:`SanitizedLock` wrappers that
check the declared lock hierarchy on every acquisition, lockdep-style:

* **rank assertion** — a thread may only acquire a lock of strictly greater
  rank than every lock it already holds (re-entrant re-acquisition of the
  same lock object excepted).  Violations raise :class:`LockRankError` at the
  acquire site, with both acquisition stacks in the message.
* **order-graph cycle detection** — every observed "held A, acquired B"
  pair adds an ``A → B`` edge to a process-wide order graph; an acquisition
  whose reverse path already exists raises :class:`LockCycleError` *even if
  the two threads never actually collide in this run*.  This catches
  potential deadlocks from a single-threaded execution of each side.
* **per-thread acquisition stacks** — each held lock remembers where it was
  acquired (``file:line``), so a report names both sides of an inversion.

The sanitizer is deliberately strict about *names*, not objects: two shard
caches each own a ``gc`` lock, and holding shard 0's while taking shard 1's
is reported as a rank violation — exactly the cross-shard nesting the
sharded facade is designed to avoid.

Unranked locks (``rank=None``, i.e. names absent from the table) skip the
rank assertion but still participate in cycle detection — that is what the
unit tests use to provoke a pure A→B/B→A inversion.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from .locks import rank_of

__all__ = [
    "LockCycleError",
    "LockRankError",
    "LockSanitizerError",
    "SanitizedLock",
    "make_condition",
    "make_lock",
    "make_rlock",
    "sanitizer_enabled",
]

ENV_VAR = "REPRO_LOCK_SANITIZER"


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_LOCK_SANITIZER`` currently enables the sanitizer."""
    return os.environ.get(ENV_VAR, "").strip().lower() in {"1", "true", "yes", "on"}


class LockSanitizerError(RuntimeError):
    """A violation of the declared lock discipline, caught at runtime."""


class LockRankError(LockSanitizerError):
    """Acquired a lock whose rank is not above every lock already held."""


class LockCycleError(LockSanitizerError):
    """An acquisition order that closes a cycle in the global order graph."""


# --------------------------------------------------------------------------- #
# Process-wide sanitizer state.
#
# The order graph maps lock name -> names observed acquired while it was
# held.  It is guarded by a *raw* lock (the sanitizer must not recurse into
# itself).  Held stacks are per thread.
# --------------------------------------------------------------------------- #
_graph_lock = threading.Lock()
_order_graph: Dict[str, Set[str]] = {}
_edge_sites: Dict[Tuple[str, str], str] = {}
_held = threading.local()


def _held_stack() -> List["SanitizedLock"]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def _reset_for_tests() -> None:
    """Clear the order graph and this thread's held stack (test isolation)."""
    with _graph_lock:
        _order_graph.clear()
        _edge_sites.clear()
    _held.stack = []


def _call_site() -> str:
    """``file:line`` of the frame that called into the lock API."""
    frame = sys._getframe(2)
    # Walk out of this module so the report points at the acquiring code.
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _path_exists(src: str, dst: str) -> bool:
    """Depth-first reachability in the order graph (caller holds _graph_lock)."""
    seen: Set[str] = set()
    frontier = [src]
    while frontier:
        node = frontier.pop()
        if node == dst:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(_order_graph.get(node, ()))
    return False


class SanitizedLock:
    """A named, ranked wrapper over a :mod:`threading` lock primitive.

    Checks are performed *before* the underlying acquire, so a violation is
    reported instead of deadlocking the test process.
    """

    __slots__ = ("_lock", "name", "rank", "reentrant", "_owner", "_depth", "_sites")

    def __init__(
        self,
        name: str,
        rank: Optional[int],
        reentrant: bool,
    ) -> None:
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self.name = name
        self.rank = rank
        self.reentrant = reentrant
        self._owner: Optional[int] = None
        self._depth = 0
        self._sites: List[str] = []

    # -- checks --------------------------------------------------------- #
    def _check(self, site: str) -> None:
        stack = _held_stack()
        if self in stack:
            if self.reentrant:
                return  # re-entrant re-acquisition of the same object
            raise LockRankError(
                f"self-deadlock: non-reentrant lock '{self.name}' re-acquired "
                f"at {site} while already held at {self._sites[-1]}"
            )
        for held in stack:
            if (
                self.rank is not None
                and held.rank is not None
                and self.rank <= held.rank
            ):
                raise LockRankError(
                    f"lock rank violation: acquiring '{self.name}' "
                    f"(rank {self.rank}) at {site} while holding "
                    f"'{held.name}' (rank {held.rank}) acquired at "
                    f"{held._sites[-1]}; the hierarchy requires strictly "
                    f"increasing ranks (see repro.analysis.locks.LOCK_RANKS)"
                )
        # Order-graph edges: innermost held lock -> this lock.
        if stack:
            inner = stack[-1]
            if inner.name != self.name:
                with _graph_lock:
                    if _path_exists(self.name, inner.name):
                        back = _edge_sites.get((self.name, inner.name), "<elsewhere>")
                        raise LockCycleError(
                            f"potential deadlock: acquiring '{self.name}' at "
                            f"{site} while holding '{inner.name}' (acquired at "
                            f"{inner._sites[-1]}), but the opposite order "
                            f"'{self.name}' -> '{inner.name}' was observed at "
                            f"{back}"
                        )
                    _order_graph.setdefault(inner.name, set()).add(self.name)
                    _edge_sites.setdefault((inner.name, self.name), site)

    # -- lock protocol --------------------------------------------------- #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        site = _call_site()
        self._check(site)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            stack = _held_stack()
            stack.append(self)
            self._sites.append(site)
            self._owner = threading.get_ident()
            self._depth += 1
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        # Pop the most recent occurrence (re-entrant locks appear N times).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        if self._sites:
            self._sites.pop()
        self._depth -= 1
        if self._depth <= 0:
            self._depth = 0
            self._owner = None
        self._lock.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        """Whether any thread currently holds the lock."""
        return self._owner is not None

    def _is_owned(self) -> bool:
        """Owner check for :class:`threading.Condition` (avoids its
        ``acquire(0)`` probe fallback, which would itself be sanitized)."""
        return self._owner == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock(name={self.name!r}, rank={self.rank!r})"


def make_lock(name: str, rank: Optional[int] = None) -> Any:
    """A non-reentrant lock registered under ``name``.

    The rank comes from :data:`~repro.analysis.locks.LOCK_RANKS`; an explicit
    ``rank`` argument overrides it (ad-hoc/test locks).  With the sanitizer
    disabled this is exactly ``threading.Lock()``.
    """
    if not sanitizer_enabled():
        return threading.Lock()
    return SanitizedLock(name, rank if rank is not None else rank_of(name), False)


def make_rlock(name: str, rank: Optional[int] = None) -> Any:
    """A re-entrant lock registered under ``name`` (else ``threading.RLock()``)."""
    if not sanitizer_enabled():
        return threading.RLock()
    return SanitizedLock(name, rank if rank is not None else rank_of(name), True)


def make_condition(name: str, rank: Optional[int] = None) -> threading.Condition:
    """A condition variable over a sanitized (or plain) lock named ``name``."""
    return threading.Condition(make_lock(name, rank))
