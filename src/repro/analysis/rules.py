"""The REPRO rule checks over a program of extracted module models.

Rule catalog (see README "Static analysis & lock discipline"):

========  ==================================================================
REPRO001  lock-hierarchy violation: an acquisition edge ``A -> B`` whose
          declared ranks are not strictly increasing, a cycle in the
          acquisition-order graph, or a raw ``threading.Lock()``-family
          constructor bypassing the ``make_lock`` factory.
REPRO002  a blocking operation (file I/O, ``time.sleep``, ``Thread.join``,
          ``queue.get``, sqlite ``execute``/``commit``, ``Future.result``)
          performed while the GC lock is held.  Traversal is deliberately
          narrow — lexical regions plus same-class ``self.`` calls — so
          every finding is a hard fact; the runtime sanitizer covers the
          cross-object dynamic paths.
REPRO003  mutation of stores / the GCindex / the utility heap / statistics
          reachable from a ``decide()`` method on a class that also defines
          ``apply()`` (the PR-4 decide/apply purity split).
REPRO004  a mutating call or attribute write on a pinned ``IndexView``
          snapshot (bound by ``with idx.view() as v``, ``idx.acquire_view()``,
          or an ``IndexView``-annotated parameter).
REPRO005  an internal import of one of the four deprecated PR-4 shim
          modules (``repro.core.{window,admission,adaptive_admission,
          replacement}``).
REPRO006  a method call on ``self._backend`` outside the owning store's
          ``self._lock`` — compound store reads must happen under the store
          lock.
REPRO007  mutation of a ``PackedGraph`` (bound by a ``PackedGraph``
          annotation, ``graph.to_packed()``, ``arena.packed_at()`` or a
          ``PackedGraph.*`` constructor) — an attribute write, an element
          write through one of its numpy views, or an in-place numpy
          mutator call.  Packed graphs may alias a read-only arena mmap
          shared across processes, so *any* write is a violation (the
          arena-backed twin of REPRO004).
REPRO008  cache mutation reachable from a replica apply path (an ``apply*``
          method on a ``*Replica*`` class) outside the sanctioned delta
          machinery.  A replica must change state only by replaying frames
          through ``GraphCache.replay_plan`` /
          ``MaintenanceEngine.replay``/``apply`` — any other route to the
          stores, the GCindex, the heap or the statistics diverges it from
          the primary.
========  ==================================================================

Resolution is best-effort and *sound-where-it-claims*: a call that cannot
be resolved is dropped, never guessed, so every reported finding is backed
by an explicit chain the message names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .locks import GC_LOCK_NAME, rank_of
from .model import CallSite, ClassModel, FunctionModel, ModuleModel

__all__ = ["Finding", "Program", "run_rules"]

DEPRECATED_SHIMS = {
    "repro.core.window",
    "repro.core.admission",
    "repro.core.adaptive_admission",
    "repro.core.replacement",
}

#: Mutating methods per tracked shared-state type (REPRO003 / REPRO004).
TRACKED_MUTATORS: Dict[str, Set[str]] = {
    "CacheStore": {"add", "evict", "apply_delta", "replace_contents", "load", "close"},
    "WindowStore": {"add", "drain", "apply_delta", "replace_contents", "close"},
    "QueryGraphIndex": {"add", "remove", "rebuild", "batch", "clear"},
    "UtilityHeap": {"add", "remove", "rebuild", "record_hit"},
    "StatisticsManager": {
        "register_query",
        "record_hit",
        "remove",
        "rebuild",
        "clear",
    },
    "TripletStore": {"add", "remove", "clear", "update"},
    "InMemoryBackend": {"put", "delete", "clear", "replace_all", "close"},
    "SQLiteBackend": {"put", "delete", "clear", "replace_all", "close"},
    "MmapBackend": {"put", "delete", "clear", "replace_all", "seal", "close"},
}

#: The sanctioned replica delta path (REPRO008): the only methods through
#: which a replica apply path may reach tracked shared state.  The traversal
#: does not descend into them — everything they mutate is, by construction,
#: exactly what the primary's round mutated.
REPLICA_DELTA_PATH: Set[Tuple[str, str]] = {
    ("GraphCache", "replay_plan"),
    ("MaintenanceEngine", "replay"),
    ("MaintenanceEngine", "apply"),
}

#: Mutating surface of a pinned IndexView (REPRO004): a snapshot is
#: read-only, so *any* of these is a violation.
VIEW_MUTATORS = {
    "add",
    "remove",
    "rebuild",
    "clear",
    "update",
    "publish",
    "register",
    "apply_delta",
}

#: In-place numpy mutators (REPRO007): calling any of these on a
#: ``PackedGraph`` or one of its array views writes through storage that may
#: be a read-only arena mmap shared across processes.
PACKED_MUTATORS = {
    "fill",
    "sort",
    "put",
    "itemset",
    "setflags",
    "resize",
    "partition",
    "byteswap",
}

_THREADISH = re.compile(r"thread|worker|proc", re.IGNORECASE)
_QUEUEISH = re.compile(r"queue", re.IGNORECASE)
_CONNISH = re.compile(r"conn|cursor|db\b|database", re.IGNORECASE)
_FUTUREISH = re.compile(r"fut", re.IGNORECASE)

_BLOCKING_METHODS_ANY = {
    "read_text": "file I/O",
    "write_text": "file I/O",
    "read_bytes": "file I/O",
    "write_bytes": "file I/O",
}


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    symbol: str

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        return f"{self.rule}::{self.path}::{self.symbol}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class _Func:
    """A function in program context."""

    module: ModuleModel
    cls: Optional[ClassModel]
    fn: FunctionModel

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module.module, self.fn.qualname)


@dataclass
class Program:
    """All scanned modules plus the resolution indexes the rules share."""

    modules: List[ModuleModel]
    classes: Dict[str, List[Tuple[ModuleModel, ClassModel]]] = field(
        default_factory=dict
    )
    subclasses: Dict[str, Set[str]] = field(default_factory=dict)
    funcs: Dict[Tuple[str, str], _Func] = field(default_factory=dict)
    lock_reentrant: Dict[str, bool] = field(default_factory=dict)

    @classmethod
    def build(cls, modules: Iterable[ModuleModel]) -> "Program":
        prog = cls(modules=list(modules))
        for module in prog.modules:
            for klass in module.classes.values():
                prog.classes.setdefault(klass.name, []).append((module, klass))
                for base in klass.bases:
                    prog.subclasses.setdefault(base, set()).add(klass.name)
                for method in klass.methods.values():
                    prog.funcs[(module.module, method.qualname)] = _Func(
                        module, klass, method
                    )
                for decl in klass.attr_locks.values():
                    prog._register_lock(decl.name, decl.reentrant)
            for fn in module.functions.values():
                prog.funcs[(module.module, fn.qualname)] = _Func(module, None, fn)
            for decl in module.module_locks.values():
                prog._register_lock(decl.name, decl.reentrant)
        return prog

    def _register_lock(self, name: str, reentrant: bool) -> None:
        self.lock_reentrant[name] = self.lock_reentrant.get(name, False) or reentrant

    # -- resolution ------------------------------------------------------- #
    def all_subclasses(self, name: str) -> Set[str]:
        out: Set[str] = set()
        frontier = [name]
        while frontier:
            node = frontier.pop()
            for sub in self.subclasses.get(node, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def _method_in_class(self, class_name: str, method: str) -> List[_Func]:
        """Look up ``method`` on ``class_name`` (its MRO) and its overrides."""
        out: List[_Func] = []
        seen: Set[str] = set()
        frontier = [class_name]
        while frontier:  # walk up the bases until found
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for module, klass in self.classes.get(node, ()):
                if method in klass.methods:
                    out.append(self.funcs[(module.module, klass.methods[method].qualname)])
                else:
                    frontier.extend(klass.bases)
        # CHA: overrides in subclasses (the attr may hold any concrete impl)
        for sub in self.all_subclasses(class_name):
            for module, klass in self.classes.get(sub, ()):
                if method in klass.methods:
                    out.append(self.funcs[(module.module, klass.methods[method].qualname)])
        return out

    def receiver_types(self, ctx: _Func, recv: Tuple[str, ...]) -> Set[str]:
        """Possible class names of a call receiver path, "" when unknown."""
        if recv == ("self",) and ctx.cls is not None:
            return {ctx.cls.name}
        if len(recv) == 2 and recv[0] == "self" and ctx.cls is not None:
            raw = ctx.cls.attr_types.get(recv[1], set())
            out = {t for t in raw if not t.startswith("@call:")}
            # factory-call assignments: resolve through the factory's
            # return annotation if the factory is in the program.
            for tag in raw:
                if tag.startswith("@call:"):
                    out |= self._factory_return_types(tag[len("@call:"):])
            return out
        if len(recv) == 1 and recv[0] != "self":
            name = recv[0]
            types = set(ctx.fn.local_types.get(name, set()))
            types |= ctx.fn.param_types.get(name, set())
            return types
        return set()

    def _factory_return_types(self, factory: str) -> Set[str]:
        out: Set[str] = set()
        for func in self.funcs.values():
            if func.cls is None and func.fn.name == factory:
                out |= func.fn.return_types
        return out

    def resolve_call(self, ctx: _Func, call: CallSite) -> List[_Func]:
        """Callee candidates of one call site (empty when unresolvable)."""
        out: List[_Func] = []
        if call.recv == ("global",):
            # module-level function in the same module, else via import
            fn = ctx.module.functions.get(call.method)
            if fn is not None:
                return [self.funcs[(ctx.module.module, fn.qualname)]]
            # constructor call: ClassName(...) -> __init__
            if call.method[:1].isupper():
                for module, klass in self.classes.get(call.method, ()):
                    init = klass.methods.get("__init__")
                    if init is not None:
                        out.append(self.funcs[(module.module, init.qualname)])
            return out
        for type_name in self.receiver_types(ctx, call.recv):
            out.extend(self._method_in_class(type_name, call.method))
        return out


# --------------------------------------------------------------------------- #
# fixpoints
# --------------------------------------------------------------------------- #
def _acquires_star(prog: Program) -> Dict[Tuple[str, str], Set[str]]:
    """Transitive lock-name acquisition set of every function."""
    acq: Dict[Tuple[str, str], Set[str]] = {
        key: {a.lock for a in func.fn.acquisitions if a.lock != "?"}
        for key, func in prog.funcs.items()
    }
    changed = True
    while changed:
        changed = False
        for key, func in prog.funcs.items():
            for call in func.fn.calls:
                for callee in prog.resolve_call(func, call):
                    extra = acq.get(callee.key, set()) - acq[key]
                    if extra:
                        acq[key] |= extra
                        changed = True
    return acq


def _classify_blocking(call: CallSite) -> Optional[str]:
    """Human-readable reason when a call site is a blocking operation."""
    recv_tail = call.recv[-1] if call.recv else ""
    if call.recv == ("global",) and call.method == "open":
        return "open() file I/O"
    if call.method == "open" and call.recv != ("global",):
        return f"{recv_tail}.open() file I/O"
    if call.method in _BLOCKING_METHODS_ANY:
        return f".{call.method}() {_BLOCKING_METHODS_ANY[call.method]}"
    if call.method == "sleep" and recv_tail == "time":
        return "time.sleep()"
    if call.method == "join" and _THREADISH.search(recv_tail):
        return f"{recv_tail}.join() (thread join)"
    if call.method == "get" and _QUEUEISH.search(recv_tail):
        return f"{recv_tail}.get() (queue wait)"
    if (
        call.method in {"execute", "executemany", "commit", "rollback"}
        and _CONNISH.search(recv_tail)
    ):
        return f"{recv_tail}.{call.method}() (sqlite)"
    if call.method == "result" and _FUTUREISH.search(recv_tail):
        return f"{recv_tail}.result() (future wait)"
    return None


def _may_block(prog: Program) -> Dict[Tuple[str, str], Optional[str]]:
    """First blocking reason reachable via same-class ``self.`` calls."""
    reason: Dict[Tuple[str, str], Optional[str]] = {}
    for key, func in prog.funcs.items():
        direct = None
        for call in func.fn.calls:
            direct = _classify_blocking(call)
            if direct:
                break
        reason[key] = direct
    changed = True
    while changed:
        changed = False
        for key, func in prog.funcs.items():
            if reason[key] or func.cls is None:
                continue
            for call in func.fn.calls:
                if call.recv != ("self",):
                    continue
                callee = func.cls.methods.get(call.method)
                if callee is None:
                    continue
                sub = reason.get((func.module.module, callee.qualname))
                if sub:
                    reason[key] = f"{call.method}() -> {sub}"
                    changed = True
                    break
    return reason


# --------------------------------------------------------------------------- #
# rules
# --------------------------------------------------------------------------- #
def _rule_locks(prog: Program, findings: List[Finding]) -> None:
    """REPRO001: rank violations, order cycles, undeclared locks."""
    edges: Dict[Tuple[str, str], Tuple[_Func, int]] = {}
    acq = _acquires_star(prog)
    for func in prog.funcs.values():
        for site in func.fn.acquisitions:
            for held in site.held:
                edges.setdefault((held, site.lock), (func, site.line))
        for call in func.fn.calls:
            if not call.held:
                continue
            for callee in prog.resolve_call(func, call):
                for lock in acq.get(callee.key, ()):
                    for held in call.held:
                        edges.setdefault((held, lock), (func, call.line))

    for (src, dst), (func, line) in sorted(
        edges.items(), key=lambda kv: (kv[1][0].module.module, kv[1][1])
    ):
        if "?" in (src, dst):
            continue
        if src == dst:
            if not prog.lock_reentrant.get(src, False):
                findings.append(
                    Finding(
                        rule="REPRO001",
                        path=str(func.module.path),
                        line=line,
                        symbol=f"{func.fn.qualname}:reacquire:{src}",
                        message=(
                            f"non-reentrant lock '{src}' re-acquired while "
                            f"already held in {func.fn.qualname}"
                        ),
                    )
                )
            continue
        src_rank, dst_rank = rank_of(src), rank_of(dst)
        if src_rank is not None and dst_rank is not None and dst_rank <= src_rank:
            findings.append(
                Finding(
                    rule="REPRO001",
                    path=str(func.module.path),
                    line=line,
                    symbol=f"{func.fn.qualname}:{src}->{dst}",
                    message=(
                        f"lock hierarchy violation in {func.fn.qualname}: "
                        f"acquires '{dst}' (rank {dst_rank}) while holding "
                        f"'{src}' (rank {src_rank}); ranks must strictly "
                        f"increase (repro.analysis.locks.LOCK_RANKS)"
                    ),
                )
            )

    # cycles among distinct named locks (rank table aside)
    graph: Dict[str, Set[str]] = {}
    for (src, dst) in edges:
        if "?" not in (src, dst) and src != dst:
            graph.setdefault(src, set()).add(dst)
    for cycle in _find_cycles(graph):
        src, dst = cycle[0], cycle[1 % len(cycle)]
        func, line = edges[(src, dst)]
        findings.append(
            Finding(
                rule="REPRO001",
                path=str(func.module.path),
                line=line,
                symbol="cycle:" + "->".join(cycle),
                message=(
                    "acquisition-order cycle: " + " -> ".join(cycle + [cycle[0]])
                ),
            )
        )

    for func in prog.funcs.values():
        for line in func.fn.raw_lock_lines:
            findings.append(
                Finding(
                    rule="REPRO001",
                    path=str(func.module.path),
                    line=line,
                    symbol=f"{func.fn.qualname}:raw-lock:{line}",
                    message=(
                        "raw threading.Lock()/RLock()/Condition() bypasses the "
                        "named-lock factory; use repro.analysis.runtime."
                        "make_lock(name) so the rank table and sanitizer see it"
                    ),
                )
            )


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Cycles in the order graph, one representative per strongly
    connected component of size > 1 (Tarjan)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph.get(node, ()):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                out.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return out


def _rule_blocking(prog: Program, findings: List[Finding]) -> None:
    """REPRO002: blocking operations while the GC lock is held."""
    may_block = _may_block(prog)
    for func in prog.funcs.values():
        for call in func.fn.calls:
            if GC_LOCK_NAME not in call.held:
                continue
            reason = _classify_blocking(call)
            if reason is None and call.recv == ("self",) and func.cls is not None:
                callee = func.cls.methods.get(call.method)
                if callee is not None:
                    sub = may_block.get((func.module.module, callee.qualname))
                    if sub:
                        reason = f"{call.method}() -> {sub}"
            if reason:
                findings.append(
                    Finding(
                        rule="REPRO002",
                        path=str(func.module.path),
                        line=call.line,
                        symbol=f"{func.fn.qualname}:{call.method}",
                        message=(
                            f"blocking operation under the GC lock in "
                            f"{func.fn.qualname}: {reason}"
                        ),
                    )
                )


def _rule_decide_purity(prog: Program, findings: List[Finding]) -> None:
    """REPRO003: mutation of tracked shared state reachable from decide()."""
    for func in list(prog.funcs.values()):
        if func.cls is None or func.fn.name != "decide":
            continue
        if "apply" not in func.cls.methods:
            continue
        visited: Set[Tuple[str, str]] = set()
        frontier: List[Tuple[_Func, List[str]]] = [(func, [func.fn.qualname])]
        while frontier:
            current, trail = frontier.pop()
            if current.key in visited:
                continue
            visited.add(current.key)
            for call in current.fn.calls:
                types = prog.receiver_types(current, call.recv)
                for type_name in sorted(types):
                    mutators = TRACKED_MUTATORS.get(type_name)
                    if mutators and call.method in mutators:
                        findings.append(
                            Finding(
                                rule="REPRO003",
                                path=str(current.module.path),
                                line=call.line,
                                symbol=(
                                    f"{func.fn.qualname}:"
                                    f"{type_name}.{call.method}"
                                ),
                                message=(
                                    f"decide() must not mutate shared state: "
                                    f"{' -> '.join(trail)} calls "
                                    f"{type_name}.{call.method}() "
                                    f"(move it into apply())"
                                ),
                            )
                        )
                for callee in prog.resolve_call(current, call):
                    if callee.key not in visited:
                        frontier.append(
                            (callee, trail + [callee.fn.qualname])
                        )


def _rule_replica_delta_path(prog: Program, findings: List[Finding]) -> None:
    """REPRO008: replica apply paths must mutate only via the delta path.

    Entry points are ``apply*`` methods on classes whose name contains
    ``Replica``.  The traversal mirrors REPRO003's reachability walk but
    refuses to descend into :data:`REPLICA_DELTA_PATH` — replaying a frame
    through the sanctioned machinery is the *point*; any other reachable
    mutation of tracked shared state diverges the replica from the primary.
    """
    for func in list(prog.funcs.values()):
        if func.cls is None or "Replica" not in func.cls.name:
            continue
        if not func.fn.name.startswith("apply"):
            continue
        visited: Set[Tuple[str, str]] = set()
        frontier: List[Tuple[_Func, List[str]]] = [(func, [func.fn.qualname])]
        while frontier:
            current, trail = frontier.pop()
            if current.key in visited:
                continue
            visited.add(current.key)
            for call in current.fn.calls:
                types = prog.receiver_types(current, call.recv)
                for type_name in sorted(types):
                    mutators = TRACKED_MUTATORS.get(type_name)
                    if mutators and call.method in mutators:
                        findings.append(
                            Finding(
                                rule="REPRO008",
                                path=str(current.module.path),
                                line=call.line,
                                symbol=(
                                    f"{func.fn.qualname}:"
                                    f"{type_name}.{call.method}"
                                ),
                                message=(
                                    f"replica apply path mutates cache state "
                                    f"outside the delta path: "
                                    f"{' -> '.join(trail)} calls "
                                    f"{type_name}.{call.method}() "
                                    f"(replicas may only replay frames via "
                                    f"GraphCache.replay_plan / "
                                    f"MaintenanceEngine.replay)"
                                ),
                            )
                        )
                for callee in prog.resolve_call(current, call):
                    if callee.cls is not None and (
                        (callee.cls.name, callee.fn.name) in REPLICA_DELTA_PATH
                    ):
                        continue  # the sanctioned delta machinery
                    if callee.key not in visited:
                        frontier.append(
                            (callee, trail + [callee.fn.qualname])
                        )


def _rule_view_immutability(prog: Program, findings: List[Finding]) -> None:
    """REPRO004: mutating a pinned IndexView snapshot."""
    for func in prog.funcs.values():
        views = func.fn.view_vars
        if not views:
            continue
        for call in func.fn.calls:
            if (
                len(call.recv) == 1
                and call.recv[0] in views
                and call.method in VIEW_MUTATORS
            ):
                findings.append(
                    Finding(
                        rule="REPRO004",
                        path=str(func.module.path),
                        line=call.line,
                        symbol=f"{func.fn.qualname}:{call.recv[0]}.{call.method}",
                        message=(
                            f"mutating call {call.recv[0]}.{call.method}() on a "
                            f"pinned IndexView snapshot in {func.fn.qualname}; "
                            f"views are immutable — mutate through "
                            f"QueryGraphIndex.batch()"
                        ),
                    )
                )
        for write in func.fn.attr_writes:
            if write.recv and write.recv[0] in views:
                findings.append(
                    Finding(
                        rule="REPRO004",
                        path=str(func.module.path),
                        line=write.line,
                        symbol=f"{func.fn.qualname}:{write.recv[0]}.{write.attr}=",
                        message=(
                            f"attribute write {'.'.join(write.recv)}."
                            f"{write.attr} on a pinned IndexView snapshot in "
                            f"{func.fn.qualname}; views are immutable"
                        ),
                    )
                )


def _rule_packed_immutability(prog: Program, findings: List[Finding]) -> None:
    """REPRO007: mutating a PackedGraph or writing through its arena views."""
    for func in prog.funcs.values():
        packed = func.fn.packed_vars
        if not packed:
            continue
        for call in func.fn.calls:
            if (
                call.recv
                and call.recv[0] in packed
                and call.method in PACKED_MUTATORS
            ):
                findings.append(
                    Finding(
                        rule="REPRO007",
                        path=str(func.module.path),
                        line=call.line,
                        symbol=f"{func.fn.qualname}:{'.'.join(call.recv)}.{call.method}",
                        message=(
                            f"in-place numpy mutator {'.'.join(call.recv)}."
                            f"{call.method}() on a PackedGraph in "
                            f"{func.fn.qualname}; packed graphs may alias a "
                            f"read-only arena mmap — rebuild via "
                            f"Graph.to_packed() instead"
                        ),
                    )
                )
        for write in func.fn.attr_writes:
            if write.recv and write.recv[0] in packed:
                findings.append(
                    Finding(
                        rule="REPRO007",
                        path=str(func.module.path),
                        line=write.line,
                        symbol=f"{func.fn.qualname}:{'.'.join(write.recv)}.{write.attr}=",
                        message=(
                            f"write {'.'.join(write.recv)}.{write.attr} on a "
                            f"PackedGraph in {func.fn.qualname}; packed graphs "
                            f"are frozen and may alias a read-only arena mmap "
                            f"shared across processes"
                        ),
                    )
                )


def _rule_shim_imports(prog: Program, findings: List[Finding]) -> None:
    """REPRO005: internal imports of the deprecated PR-4 shim modules."""
    for module in prog.modules:
        if module.module in DEPRECATED_SHIMS:
            continue
        seen: Set[Tuple[str, int]] = set()
        for target, line in module.import_sites:
            if target in DEPRECATED_SHIMS and (target, line) not in seen:
                seen.add((target, line))
                findings.append(
                    Finding(
                        rule="REPRO005",
                        path=str(module.path),
                        line=line,
                        symbol=f"import:{target}",
                        message=(
                            f"internal import of deprecated shim '{target}'; "
                            f"import the repro.core.policies module instead"
                        ),
                    )
                )


def _rule_store_lock(prog: Program, findings: List[Finding]) -> None:
    """REPRO006: self._backend calls outside the owning store's lock."""
    for func in prog.funcs.values():
        cls = func.cls
        if cls is None:
            continue
        decl = cls.attr_locks.get("_lock")
        if decl is None or "_backend" not in cls.attr_names:
            continue
        if func.fn.name == "__init__":
            continue  # construction is single-threaded by contract
        for call in func.fn.calls:
            if call.recv != ("self", "_backend"):
                continue
            if decl.name in call.held or decl.name in func.fn.holds:
                continue
            findings.append(
                Finding(
                    rule="REPRO006",
                    path=str(func.module.path),
                    line=call.line,
                    symbol=f"{func.fn.qualname}:_backend.{call.method}",
                    message=(
                        f"self._backend.{call.method}() outside the store lock "
                        f"'{decl.name}' in {func.fn.qualname}; compound store "
                        f"access must run under self._lock"
                    ),
                )
            )


def run_rules(modules: Iterable[ModuleModel]) -> List[Finding]:
    """All REPRO findings over the given modules (unsuppressed, unsorted)."""
    prog = Program.build(modules)
    findings: List[Finding] = []
    _rule_locks(prog, findings)
    _rule_blocking(prog, findings)
    _rule_decide_purity(prog, findings)
    _rule_replica_delta_path(prog, findings)
    _rule_view_immutability(prog, findings)
    _rule_packed_immutability(prog, findings)
    _rule_shim_imports(prog, findings)
    _rule_store_lock(prog, findings)
    return findings
