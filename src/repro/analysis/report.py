"""Finding filtering (suppressions, baseline) and rendering."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Set

from .model import ModuleModel
from .rules import Finding

__all__ = [
    "apply_baseline",
    "apply_suppressions",
    "load_baseline",
    "render_json",
    "render_text",
    "write_baseline",
]


def apply_suppressions(
    findings: Iterable[Finding], modules: Iterable[ModuleModel]
) -> List[Finding]:
    """Drop findings covered by a ``# repro: allow[RULE]`` on the finding
    line (or the comment-only line directly above it)."""
    allows: Dict[str, Dict[int, Set[str]]] = {
        str(module.path): module.allows for module in modules
    }
    kept: List[Finding] = []
    for finding in findings:
        rules = allows.get(finding.path, {}).get(finding.line, set())
        if finding.rule in rules or "*" in rules:
            continue
        kept.append(finding)
    return kept


def load_baseline(path: Path) -> Set[str]:
    """The accepted-finding fingerprints of a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("accepted", []))


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    payload = {"accepted": sorted({f.fingerprint for f in findings})}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: Iterable[Finding], accepted: Set[str]) -> List[Finding]:
    return [f for f in findings if f.fingerprint not in accepted]


def _sorted(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.symbol))


def render_text(findings: Iterable[Finding]) -> str:
    ordered = _sorted(findings)
    lines = [f"{f.path}:{f.line}: {f.rule} {f.message}" for f in ordered]
    lines.append(
        f"{len(ordered)} finding{'s' if len(ordered) != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    ordered = _sorted(findings)
    return json.dumps(
        {"count": len(ordered), "findings": [f.to_dict() for f in ordered]},
        indent=2,
    )
