"""Per-module AST model extraction for the repro static analyzer.

One :class:`ModuleModel` per scanned file, capturing exactly the facts the
rules (:mod:`repro.analysis.rules`) reason over:

* **lock declarations** — ``make_lock``/``make_rlock``/``make_condition``
  calls bound to ``self._x`` attributes or module-level names, plus raw
  ``threading.Lock()``-family constructor calls (an undeclared-lock finding);
* **acquisition sites** — ``with <lockref>:`` statements and bare
  ``<lockref>.acquire()`` calls, each with the set of locks lexically held
  at that point;
* **call sites** — every call, as a receiver path (``self._store.add`` →
  ``("self", "_store")`` + method ``add``) with the lexically held locks,
  feeding the intra-package call graph;
* **attribute types** — a best-effort ``self._x`` → class-name map from
  ``__init__`` assignments (constructor calls, annotated parameters,
  ``a if c else b`` / ``a or b`` branches, annotated factory returns), so
  the rules can resolve cross-object dispatch;
* **view bindings** — variables pinned to ``IndexView`` snapshots
  (``with idx.view() as v`` / ``v = idx.acquire_view()`` / parameters
  annotated ``IndexView``) for the immutability rule;
* **comment annotations** — ``# repro: lock[NAME]`` (names a dynamic lock
  expression), ``# repro: holds[NAME]`` (function runs with NAME held), and
  ``# repro: allow[RULE] justification`` (suppression), parsed from source
  lines because the AST drops comments.

The model is purely syntactic: scanned code is never imported.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Acquisition",
    "CallSite",
    "ClassModel",
    "FunctionModel",
    "LockDecl",
    "ModuleModel",
    "extract_module",
]

FACTORY_NAMES = {"make_lock", "make_rlock", "make_condition"}
RAW_LOCK_CTORS = {"Lock", "RLock", "Condition"}

_ANNOTATION_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow|lock|holds)\[(?P<args>[^\]]+)\]"
)


@dataclass
class LockDecl:
    """One named lock created through the factory."""

    name: str
    reentrant: bool
    line: int


@dataclass
class Acquisition:
    """One ``with <lock>:`` (or ``.acquire()``) site."""

    lock: str  # resolved lock name, or "?" when unresolvable
    line: int
    held: Tuple[str, ...]  # lock names held when this acquisition happens


@dataclass
class CallSite:
    """One call expression, normalised to a receiver path + method name."""

    recv: Tuple[str, ...]  # ("self",), ("self","_attr"), ("name","x"), ("global",)
    method: str
    line: int
    held: Tuple[str, ...]


@dataclass
class AttrWrite:
    """``recv.attr = ...`` or ``recv[k] = ...`` / ``del recv.attr``."""

    recv: Tuple[str, ...]
    attr: str  # "[]" for subscript writes
    line: int


@dataclass
class FunctionModel:
    name: str
    qualname: str
    line: int
    param_types: Dict[str, Set[str]] = field(default_factory=dict)
    return_types: Set[str] = field(default_factory=set)
    local_types: Dict[str, Set[str]] = field(default_factory=dict)
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    attr_writes: List[AttrWrite] = field(default_factory=list)
    view_vars: Dict[str, int] = field(default_factory=dict)
    packed_vars: Dict[str, int] = field(default_factory=dict)
    holds: Set[str] = field(default_factory=set)
    raw_lock_lines: List[int] = field(default_factory=list)


@dataclass
class ClassModel:
    name: str
    line: int
    bases: List[str]
    methods: Dict[str, FunctionModel] = field(default_factory=dict)
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    attr_locks: Dict[str, LockDecl] = field(default_factory=dict)
    attr_names: Set[str] = field(default_factory=set)


@dataclass
class ModuleModel:
    module: str  # dotted name, e.g. "repro.core.stores"
    path: Path
    classes: Dict[str, ClassModel] = field(default_factory=dict)
    functions: Dict[str, FunctionModel] = field(default_factory=dict)
    module_locks: Dict[str, LockDecl] = field(default_factory=dict)
    import_sites: List[Tuple[str, int]] = field(default_factory=list)  # (dotted, line)
    imported_names: Dict[str, str] = field(default_factory=dict)  # local -> dotted
    allows: Dict[int, Set[str]] = field(default_factory=dict)  # line -> rule ids
    lock_hints: Dict[int, str] = field(default_factory=dict)  # line -> lock name
    holds_hints: Dict[int, Set[str]] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# comment annotations
# --------------------------------------------------------------------------- #
def _parse_annotations(source: str, model: ModuleModel) -> None:
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        for match in _ANNOTATION_RE.finditer(text):
            kind = match.group("kind")
            args = [a.strip() for a in match.group("args").split(",") if a.strip()]
            if kind == "allow":
                target = lineno
                # A comment-only line suppresses the next code line.
                if text.strip().startswith("#"):
                    target = lineno + 1
                model.allows.setdefault(target, set()).update(args)
            elif kind == "lock":
                model.lock_hints[lineno] = args[0]
            elif kind == "holds":
                model.holds_hints.setdefault(lineno, set()).update(args)


# --------------------------------------------------------------------------- #
# small AST helpers
# --------------------------------------------------------------------------- #
def _attr_path(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``self._a.b`` → ("self", "_a", "b"); ``x.y`` → ("x", "y"); else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_types(node: Optional[ast.expr]) -> Set[str]:
    """Class names out of an annotation, unwrapping Optional/Union/strings."""
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.Subscript):
        base = _annotation_types(node.value)
        if base & {"Optional", "Union"}:
            inner = node.slice
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            out: Set[str] = set()
            for elt in elts:
                out |= _annotation_types(elt)
            return out - {"None"}
        return base
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # X | None
        return (_annotation_types(node.left) | _annotation_types(node.right)) - {"None"}
    return set()


def _factory_lock(node: ast.expr) -> Optional[Tuple[str, bool]]:
    """``make_lock("x")``-family call → (name, reentrant), else None.

    Sees through ``a if c else b`` / ``a or b`` so the common
    ``self._lock = passed_lock if passed_lock is not None else make_rlock(...)``
    pattern still declares the lock.
    """
    if isinstance(node, ast.IfExp):
        return _factory_lock(node.body) or _factory_lock(node.orelse)
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            found = _factory_lock(value)
            if found is not None:
                return found
        return None
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    fname = None
    if isinstance(func, ast.Name):
        fname = func.id
    elif isinstance(func, ast.Attribute):
        fname = func.attr
    if fname not in FACTORY_NAMES:
        return None
    if node.args and isinstance(node.args[0], ast.Constant):
        name = str(node.args[0].value)
    else:
        name = "?"
    return name, fname == "make_rlock"


def _is_raw_lock_ctor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` family constructor call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in RAW_LOCK_CTORS:
        base = func.value
        return isinstance(base, ast.Name) and base.id == "threading"
    if isinstance(func, ast.Name) and func.id in RAW_LOCK_CTORS:
        return True
    return False


def _constructed_types(node: ast.expr, param_types: Dict[str, Set[str]]) -> Set[str]:
    """Best-effort types of an assigned expression (for attr/local type maps)."""
    if isinstance(node, ast.IfExp):
        return _constructed_types(node.body, param_types) | _constructed_types(
            node.orelse, param_types
        )
    if isinstance(node, ast.BoolOp):
        out: Set[str] = set()
        for value in node.values:
            out |= _constructed_types(value, param_types)
        return out
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id[:1].isupper():
                return {func.id}
            return set()  # lowercase factory: resolved later via return annotation
        if isinstance(func, ast.Attribute) and func.attr[:1].isupper():
            return {func.attr}
        return set()
    if isinstance(node, ast.Name):
        return set(param_types.get(node.id, set()))
    return set()


def _called_factories(node: ast.expr) -> Set[str]:
    """Names of lowercase factory functions called in an assigned expression."""
    out: Set[str] = set()
    if isinstance(node, ast.IfExp):
        return _called_factories(node.body) | _called_factories(node.orelse)
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            out |= _called_factories(value)
        return out
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and not func.id[:1].isupper():
            out.add(func.id)
        elif isinstance(func, ast.Attribute) and not func.attr[:1].isupper():
            out.add(func.attr)
    return out


# --------------------------------------------------------------------------- #
# function body walker
# --------------------------------------------------------------------------- #
class _FunctionWalker(ast.NodeVisitor):
    """Walks one function body tracking lexically held locks."""

    def __init__(
        self,
        model: ModuleModel,
        cls: Optional[ClassModel],
        fn: FunctionModel,
    ) -> None:
        self.model = model
        self.cls = cls
        self.fn = fn
        self.held: List[str] = sorted(fn.holds)

    # -- lock-reference resolution -------------------------------------- #
    def _lock_name_of(self, node: ast.expr) -> Optional[str]:
        hint = self.model.lock_hints.get(node.lineno)
        if hint is not None:
            return hint
        path = _attr_path(node)
        if path is None:
            return None
        if len(path) == 2 and path[0] == "self" and self.cls is not None:
            decl = self.cls.attr_locks.get(path[1])
            if decl is not None:
                return decl.name
        if len(path) == 1:
            decl = self.model.module_locks.get(path[0])
            if decl is not None:
                return decl.name
        return None

    # -- statements ------------------------------------------------------ #
    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            ctx = item.context_expr
            lock = self._lock_name_of(ctx)
            if lock is not None:
                self.fn.acquisitions.append(
                    Acquisition(lock=lock, line=ctx.lineno, held=tuple(self.held))
                )
                acquired.append(lock)
                self.held.append(lock)
            else:
                self.visit(ctx)
                self._bind_view_from_with(item)
            if item.optional_vars is not None and lock is None:
                pass  # view binding handled above; other aliases untyped
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    def _bind_view_from_with(self, item: ast.withitem) -> None:
        ctx = item.context_expr
        var = item.optional_vars
        if not (isinstance(var, ast.Name) and isinstance(ctx, ast.Call)):
            return
        func = ctx.func
        if isinstance(func, ast.Attribute) and func.attr == "view":
            self.fn.view_vars.setdefault(var.id, ctx.lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment([node.target], node.value)
        if isinstance(node.target, ast.Name):
            self.fn.local_types.setdefault(node.target.id, set()).update(
                _annotation_types(node.annotation)
            )
        self.generic_visit(node)

    def _record_assignment(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        lock = _factory_lock(value)
        for target in targets:
            path = _attr_path(target)
            if path is None:
                if isinstance(target, ast.Subscript):
                    base = _attr_path(target.value)
                    if base is not None:
                        self.fn.attr_writes.append(
                            AttrWrite(recv=base, attr="[]", line=target.lineno)
                        )
                continue
            # lock declarations
            if lock is not None:
                decl = LockDecl(name=lock[0], reentrant=lock[1], line=value.lineno)
                if len(path) == 2 and path[0] == "self" and self.cls is not None:
                    self.cls.attr_locks[path[1]] = decl
                elif len(path) == 1 and self.cls is None:
                    self.model.module_locks[path[0]] = decl
            # attribute types (self._x = ...) and writes
            if len(path) >= 2 and path[0] == "self" and self.cls is not None:
                self.cls.attr_names.add(path[1])
                if len(path) == 2:
                    types = _constructed_types(value, self.fn.param_types)
                    if types:
                        self.cls.attr_types.setdefault(path[1], set()).update(types)
                    for factory in _called_factories(value):
                        self.cls.attr_types.setdefault(path[1], set()).add(
                            f"@call:{factory}"
                        )
            if len(path) >= 2 and path[0] != "self":
                self.fn.attr_writes.append(
                    AttrWrite(recv=path[:-1], attr=path[-1], line=target.lineno)
                )
            # local variable types + view/packed bindings
            if len(path) == 1:
                types = _constructed_types(value, self.fn.param_types)
                if types:
                    self.fn.local_types.setdefault(path[0], set()).update(types)
                if "PackedGraph" in types or "PackedGraphView" in types:
                    self.fn.packed_vars.setdefault(path[0], value.lineno)
                if isinstance(value, ast.Call):
                    func = value.func
                    if isinstance(func, ast.Attribute) and func.attr == "acquire_view":
                        self.fn.view_vars.setdefault(path[0], value.lineno)
                    if isinstance(func, ast.Attribute) and (
                        func.attr in ("to_packed", "packed_at", "view_at")
                        or (
                            isinstance(func.value, ast.Name)
                            and func.value.id in ("PackedGraph", "PackedGraphView")
                        )
                    ):
                        self.fn.packed_vars.setdefault(path[0], value.lineno)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            path = _attr_path(target)
            if path is not None and len(path) >= 2 and path[0] != "self":
                self.fn.attr_writes.append(
                    AttrWrite(recv=path[:-1], attr=path[-1], line=node.lineno)
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        path = _attr_path(node.target)
        if path is not None and len(path) >= 2 and path[0] != "self":
            self.fn.attr_writes.append(
                AttrWrite(recv=path[:-1], attr=path[-1], line=node.lineno)
            )
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        if _is_raw_lock_ctor(node):
            self.fn.raw_lock_lines.append(node.lineno)
        func = node.func
        path = _attr_path(func)
        if path is not None:
            if len(path) >= 2:
                method = path[-1]
                recv = path[:-1]
                # bare .acquire() on a known lock is an acquisition site
                if method == "acquire":
                    lock = self._lock_name_of(func.value)  # type: ignore[union-attr]
                    if lock is not None:
                        self.fn.acquisitions.append(
                            Acquisition(
                                lock=lock, line=node.lineno, held=tuple(self.held)
                            )
                        )
                        for arg in node.args:
                            self.visit(arg)
                        return
                self.fn.calls.append(
                    CallSite(
                        recv=recv, method=method, line=node.lineno,
                        held=tuple(self.held),
                    )
                )
            else:
                self.fn.calls.append(
                    CallSite(
                        recv=("global",), method=path[0], line=node.lineno,
                        held=tuple(self.held),
                    )
                )
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        if path is None:
            self.visit(func)

    # don't descend into nested defs/lambdas with this walker's held state
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


# --------------------------------------------------------------------------- #
# module extraction
# --------------------------------------------------------------------------- #
def _extract_function(
    model: ModuleModel,
    cls: Optional[ClassModel],
    node: ast.FunctionDef,
) -> FunctionModel:
    qual = f"{cls.name}.{node.name}" if cls is not None else node.name
    fn = FunctionModel(name=node.name, qualname=qual, line=node.lineno)
    for arg in list(node.args.args) + list(node.args.kwonlyargs):
        types = _annotation_types(arg.annotation)
        if types:
            fn.param_types[arg.arg] = types
            if "IndexView" in types:
                fn.view_vars.setdefault(arg.arg, node.lineno)
            if "PackedGraph" in types or "PackedGraphView" in types:
                fn.packed_vars.setdefault(arg.arg, node.lineno)
    fn.return_types = _annotation_types(node.returns)
    for line in (node.lineno, node.lineno - 1):
        fn.holds |= model.holds_hints.get(line, set())
    walker = _FunctionWalker(model, cls, fn)
    for stmt in node.body:
        walker.visit(stmt)
    return fn


def _resolve_import_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted target of a ``from X import Y`` statement."""
    if node.level == 0:
        return node.module
    # level 1 = the containing package: the module itself when it is a
    # package __init__, else its parent; each extra level drops one more.
    package = module.split(".") if is_package else module.split(".")[:-1]
    base = package[: len(package) - (node.level - 1)]
    if not base and node.module is None:
        return None
    return ".".join(base + ([node.module] if node.module else []))


def extract_module(path: Path, module: str) -> ModuleModel:
    """Parse one file into its :class:`ModuleModel` (no imports executed)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    model = ModuleModel(module=module, path=path)
    _parse_annotations(source, model)

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                model.import_sites.append((alias.name, node.lineno))
                model.imported_names[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_import_from(module, path.name == "__init__.py", node)
            if target is not None:
                model.import_sites.append((target, node.lineno))
                for alias in node.names:
                    model.imported_names[alias.asname or alias.name] = (
                        f"{target}.{alias.name}"
                    )
                    # importing a submodule also counts as an import site
                    model.import_sites.append(
                        (f"{target}.{alias.name}", node.lineno)
                    )
        elif isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                base_path = _attr_path(base)
                if base_path is not None:
                    bases.append(base_path[-1])
            cls = ClassModel(name=node.name, line=node.lineno, bases=bases)
            model.classes[node.name] = cls
            # two passes: __init__ first so attr_locks/attr_types exist when
            # the other methods' lock references are resolved.
            methods = [
                child
                for child in node.body
                if isinstance(child, ast.FunctionDef)
            ]
            for child in sorted(methods, key=lambda m: m.name != "__init__"):
                cls.methods[child.name] = _extract_function(model, cls, child)
        elif isinstance(node, ast.FunctionDef):
            model.functions[node.name] = _extract_function(model, None, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            lock = _factory_lock(value)
            for target in targets:
                if isinstance(target, ast.Name) and lock is not None:
                    model.module_locks[target.id] = LockDecl(
                        name=lock[0], reentrant=lock[1], line=value.lineno
                    )
            if _is_raw_lock_ctor(value):
                # module-level raw lock constructor
                pseudo = model.functions.setdefault(
                    "<module>",
                    FunctionModel(name="<module>", qualname="<module>", line=1),
                )
                pseudo.raw_lock_lines.append(value.lineno)
    return model
