"""Entry point: scan paths, run the REPRO rules, report, gate.

``python -m repro.analysis [paths...] [--format text|json] [--baseline FILE]
[--write-baseline] [--no-baseline]`` — exits 0 when no unsuppressed,
non-baselined finding remains, 1 otherwise.  ``graphcache analyze`` is a thin
wrapper over the same :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .model import ModuleModel, extract_module
from .report import (
    apply_baseline,
    apply_suppressions,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from .rules import Finding, run_rules

__all__ = ["analyze_paths", "build_parser", "main"]

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _package_root() -> Path:
    """The installed ``repro`` package directory (the default scan target)."""
    return Path(__file__).resolve().parent.parent


def _module_name(path: Path) -> str:
    """Dotted module name of a file, anchored at the nearest ``repro`` (or
    topmost __init__.py-bearing) package root."""
    parts: List[str] = []
    current = path.with_suffix("")
    if current.name == "__init__":
        current = current.parent
    while True:
        parts.append(current.name)
        parent = current.parent
        if current.name == "repro" or not (parent / "__init__.py").exists():
            break
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts))


def _iter_files(paths: Sequence[Path]) -> List[Path]:
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    # the analyzer does not scan itself: runtime.py wraps raw threading
    # primitives by design, and the rule tables would read as their own
    # findings.  Everything else in src/repro is fair game.
    analysis_dir = Path(__file__).resolve().parent
    return [f for f in out if analysis_dir not in f.resolve().parents]


def analyze_paths(
    paths: Sequence[Path],
) -> Tuple[List[Finding], List[ModuleModel]]:
    """Extract models for all python files under ``paths`` and run the rules.

    Returns the *suppression-filtered* findings plus the models (the caller
    applies the baseline)."""
    modules = [_extract(path) for path in _iter_files(paths)]
    models = [m for m in modules if m is not None]
    findings = apply_suppressions(run_rules(models), models)
    return findings, models


def _extract(path: Path) -> Optional[ModuleModel]:
    try:
        return extract_module(path, _module_name(path))
    except SyntaxError as exc:  # report, keep scanning the rest
        print(f"repro.analysis: skipping {path}: {exc}", file=sys.stderr)
        return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static lock-discipline & plan-purity analyzer (rules "
            "REPRO001-REPRO006) for the repro package."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file of accepted finding fingerprints",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    paths = list(args.paths) or [_package_root()]
    findings, _models = analyze_paths(paths)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline: accepted {len(findings)} finding(s) -> {args.baseline}")
        return 0

    if not args.no_baseline and args.baseline.exists():
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
