"""Static analysis and runtime sanitizing for the repro concurrency rules.

Two halves share one rank table (:mod:`repro.analysis.locks`):

* :mod:`repro.analysis.runtime` — the ``make_lock``/``make_rlock``/
  ``make_condition`` factory every core module creates its locks through,
  with an opt-in lockdep-style order sanitizer (``REPRO_LOCK_SANITIZER=1``);
* the AST analyzer (``python -m repro.analysis`` or ``graphcache analyze``)
  in :mod:`repro.analysis.rules` / :mod:`repro.analysis.run`, enforcing
  rules REPRO001–REPRO006 statically.

This ``__init__`` intentionally re-exports only the runtime factory: the
core imports it at startup, so it must not drag the analyzer (ast walking,
reporting) into every process.
"""

from .locks import GC_LOCK_NAME, LOCK_RANKS, rank_of
from .runtime import (
    LockCycleError,
    LockRankError,
    LockSanitizerError,
    make_condition,
    make_lock,
    make_rlock,
    sanitizer_enabled,
)

__all__ = [
    "GC_LOCK_NAME",
    "LOCK_RANKS",
    "LockCycleError",
    "LockRankError",
    "LockSanitizerError",
    "make_condition",
    "make_lock",
    "make_rlock",
    "rank_of",
    "sanitizer_enabled",
]
