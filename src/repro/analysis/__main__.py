"""``python -m repro.analysis`` — run the static analyzer."""

from .run import main

raise SystemExit(main())
