"""The declared lock hierarchy: one rank table for static and runtime checks.

Every lock in the concurrent core is created through
:func:`repro.analysis.runtime.make_lock` under a *name* listed here.  The
rank is the lock's position in the acquisition hierarchy: a thread may only
acquire a lock whose rank is **strictly greater** than the rank of every
lock it already holds (re-entrant re-acquisition of the same lock excepted).
Lower rank therefore means "acquired earlier / held outermost".

This table is the single source of truth shared by

* the **static analyzer** (:mod:`repro.analysis.rules`, rule ``REPRO001``),
  which checks every lexical/call-graph acquisition edge against it, and
* the **runtime sanitizer** (:mod:`repro.analysis.runtime`), which asserts
  the same ordering at every ``acquire()`` when ``REPRO_LOCK_SANITIZER=1``.

Changing an ordering constraint means editing exactly one line here — both
checkers pick it up.  Adding a lock to the core without registering it is
itself a ``REPRO001`` finding (undeclared lock).

The hierarchy, outermost first:

======================  ====  =====================================================
name                    rank  guards
======================  ====  =====================================================
``gc``                     0  a cache's shared GC state (one commit/round at a time)
``scheduler.worker``      10  background worker lifecycle + submit/close exclusion
``store.cache``           20  the cache store facade's compound reads/mutations
``store.window``          21  the window store facade's compound reads/mutations
``index.write``           25  GCindex writers (standby-copy mutation + publish)
``heap``                  30  the utility heap's incremental statistics
``stats``                 35  the triplet store's rows
``backend``               40  one storage backend's record container / connection
``journal``               45  plan-journal append (count + write-through)
``scheduler.state``       46  scheduler reports/counters
``replication.state``     47  replica-set ship/apply counters (journal subscribers)
``replication.reader``    48  replica-set read fan-out (round-robin cursor)
``index.readers``         50  published-buffer pointer + per-buffer reader counts
``pipeline.filter_pool``  60  lazy Mfilter thread-pool creation vs. close
``serial``                61  the cache's serial counter
``index.memo``            70  the query-feature memo
``processors.memo``       71  the containment-verdict memo
``matcher.fallback``      75  lazy construction of the shared fallback matcher
``label.intern``          80  the process-wide label intern table
======================  ====  =====================================================
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["GC_LOCK_NAME", "LOCK_RANKS", "rank_of"]

#: Name → rank.  Strictly increasing ranks along every legal acquisition path.
LOCK_RANKS: Dict[str, int] = {
    "gc": 0,
    "scheduler.worker": 10,
    "store.cache": 20,
    "store.window": 21,
    "index.write": 25,
    "heap": 30,
    "stats": 35,
    "backend": 40,
    "journal": 45,
    "scheduler.state": 46,
    "replication.state": 47,
    "replication.reader": 48,
    "index.readers": 50,
    "pipeline.filter_pool": 60,
    "serial": 61,
    "index.memo": 70,
    "processors.memo": 71,
    "matcher.fallback": 75,
    "label.intern": 80,
}

#: The name of the cache-level GC lock (rule ``REPRO002`` keys on it).
GC_LOCK_NAME = "gc"


def rank_of(name: str) -> Optional[int]:
    """The declared rank of a lock name, or ``None`` for ad-hoc locks."""
    return LOCK_RANKS.get(name)
