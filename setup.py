"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file exists so that the
library can be installed in editable mode (``pip install -e .``) on
environments whose setuptools/pip combination lacks PEP 660 editable-wheel
support (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
