"""Golden fixture: exactly one REPRO001 acquisition-order cycle (a<->b).

The two lock names are not in the rank table, so only the cycle check —
not the rank check — can catch the inversion.
"""

from repro.analysis.runtime import make_lock


class CyclicOrder:
    def __init__(self) -> None:
        self._a = make_lock("fixture.cycle.a")
        self._b = make_lock("fixture.cycle.b")

    def forward(self) -> None:
        with self._a:
            with self._b:
                pass

    def backward(self) -> None:
        with self._b:
            with self._a:
                pass
