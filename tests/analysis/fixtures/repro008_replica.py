"""Golden fixture: exactly one REPRO008 mutation on a replica apply path.

The mutation hides behind a helper call, exercising the reachability
traversal (apply_frame -> _install -> CacheStore.add) — a replica writing
to a store directly instead of replaying the frame through the sanctioned
delta machinery.
"""


class CacheStore:
    def add(self, entry) -> None:
        pass


class BadReplica:
    def __init__(self, store: CacheStore) -> None:
        self._store = store

    def apply_frame(self, shard: int, frame) -> None:
        self._install(frame)

    def _install(self, frame) -> None:
        self._store.add(frame)
