"""Golden fixture: exactly one REPRO005 import of a deprecated PR-4 shim."""

from repro.core.window import WindowManager

__all__ = ["WindowManager"]
