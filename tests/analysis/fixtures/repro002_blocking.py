"""Golden fixture: exactly one REPRO002 blocking call under the GC lock.

The blocking file I/O sits one ``self.`` call away from the lock region, so
this also exercises the same-class transitive traversal.
"""

from repro.analysis.runtime import make_rlock


class BlocksUnderGc:
    def __init__(self) -> None:
        self._gc_lock = make_rlock("gc")

    def violate(self) -> None:
        with self._gc_lock:
            self._checkpoint()

    def _checkpoint(self) -> None:
        with open("/tmp/fixture-checkpoint", "w", encoding="utf-8") as handle:
            handle.write("state")
