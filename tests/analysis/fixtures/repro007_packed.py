"""Golden fixture: exactly one REPRO007 write through a PackedGraph view."""


class Graph:
    def to_packed(self):
        pass


class PackedMutator:
    def violate(self, graph: Graph) -> None:
        packed = graph.to_packed()
        packed.indices[0] = 1
