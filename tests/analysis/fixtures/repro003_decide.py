"""Golden fixture: exactly one REPRO003 mutation reachable from decide().

The mutation hides behind a helper call, exercising the reachability
traversal (decide -> _cleanup -> UtilityHeap.remove).
"""


class UtilityHeap:
    def remove(self, serial: int) -> None:
        pass


class ImpureEngine:
    def __init__(self, heap: UtilityHeap) -> None:
        self._heap = heap

    def decide(self, window_entries: list) -> list:
        self._cleanup()
        return window_entries

    def _cleanup(self) -> None:
        self._heap.remove(0)

    def apply(self, plan: list) -> None:
        pass
