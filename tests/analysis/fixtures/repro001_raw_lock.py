"""Golden fixture: exactly one REPRO001 undeclared (raw) lock constructor."""

import threading


class RawLockUser:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # bypasses the make_lock factory
