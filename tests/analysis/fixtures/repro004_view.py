"""Golden fixture: exactly one REPRO004 mutation of a pinned IndexView."""


class QueryGraphIndex:
    def view(self):
        pass


class ViewMutator:
    def __init__(self, index: QueryGraphIndex) -> None:
        self._index = index

    def violate(self) -> None:
        with self._index.view() as snapshot:
            snapshot.remove(3)
