"""Golden fixture: exactly one REPRO006 backend access outside the store lock."""

from repro.analysis.runtime import make_rlock


class LeakyStore:
    def __init__(self, backend) -> None:
        self._backend = backend
        self._lock = make_rlock("store.cache")

    def compliant(self) -> list:
        with self._lock:
            return self._backend.keys()

    def violate(self) -> list:
        return self._backend.keys()
