"""Golden fixture: exactly one REPRO001 lock-rank violation (heap -> gc)."""

from repro.analysis.runtime import make_rlock


class BadNesting:
    def __init__(self) -> None:
        self._heap_lock = make_rlock("heap")
        self._gc_lock = make_rlock("gc")

    def violate(self) -> None:
        with self._heap_lock:
            with self._gc_lock:  # rank 0 under rank 30: hierarchy violation
                pass
