"""Golden fixture: exactly one REPRO007 write through an arena's PackedGraphView."""


class Arena:
    def view_at(self, extent):
        pass


class ViewMutator:
    def violate(self, arena: Arena, extent) -> None:
        view = arena.view_at(extent)
        view.label_codes[0] = 3
