"""Tests for the static analyzer: golden fixtures, suppressions, the gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.run import analyze_paths, main
from repro.cli.main import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE = Path(repro.__file__).resolve().parent


def findings_of(*names: str):
    findings, _models = analyze_paths([FIXTURES / name for name in names])
    return findings


class TestGoldenFixtures:
    """Each fixture violates exactly one rule exactly once."""

    @pytest.mark.parametrize(
        ("fixture", "rule", "needle"),
        [
            ("repro001_rank.py", "REPRO001", "hierarchy"),
            ("repro001_raw_lock.py", "REPRO001", "raw threading"),
            ("repro002_blocking.py", "REPRO002", "GC lock"),
            ("repro003_decide.py", "REPRO003", "decide()"),
            ("repro004_view.py", "REPRO004", "IndexView"),
            ("repro005_shim.py", "REPRO005", "deprecated shim"),
            ("repro006_store.py", "REPRO006", "store lock"),
            ("repro007_packed.py", "REPRO007", "PackedGraph"),
            ("repro007_view.py", "REPRO007", "PackedGraph"),
            ("repro008_replica.py", "REPRO008", "delta path"),
        ],
    )
    def test_exactly_one_finding(self, fixture, rule, needle):
        findings = findings_of(fixture)
        assert [f.rule for f in findings] == [rule]
        assert needle in findings[0].message

    def test_cycle_fixture_reports_order_cycle(self):
        findings = findings_of("repro001_cycle.py")
        assert [f.rule for f in findings] == ["REPRO001"]
        assert "cycle" in findings[0].message

    def test_transitive_blocking_names_the_chain(self):
        (finding,) = findings_of("repro002_blocking.py")
        assert "_checkpoint" in finding.message

    def test_decide_finding_names_the_call_path(self):
        (finding,) = findings_of("repro003_decide.py")
        assert "UtilityHeap.remove" in finding.message

    def test_replica_finding_names_the_call_path(self):
        (finding,) = findings_of("repro008_replica.py")
        assert "CacheStore.add" in finding.message
        assert "_install" in finding.message


class TestSuppressions:
    def test_allow_comment_on_same_line(self, tmp_path):
        module = tmp_path / "suppressed.py"
        module.write_text(
            "from repro.core.window import WindowManager"
            "  # repro: allow[REPRO005] back-compat re-export\n"
        )
        findings, _ = analyze_paths([module])
        assert findings == []

    def test_allow_comment_on_preceding_line(self, tmp_path):
        module = tmp_path / "suppressed.py"
        module.write_text(
            "# repro: allow[REPRO005] back-compat re-export\n"
            "from repro.core.window import WindowManager\n"
        )
        findings, _ = analyze_paths([module])
        assert findings == []

    def test_allow_for_other_rule_does_not_suppress(self, tmp_path):
        module = tmp_path / "unsuppressed.py"
        module.write_text(
            "# repro: allow[REPRO001] wrong rule\n"
            "from repro.core.window import WindowManager\n"
        )
        findings, _ = analyze_paths([module])
        assert [f.rule for f in findings] == ["REPRO005"]

    def test_lock_hint_names_a_dynamic_lock(self, tmp_path):
        module = tmp_path / "hinted.py"
        module.write_text(
            "class Hinted:\n"
            "    def run(self, lock):\n"
            "        with lock:  # repro: lock[heap]\n"
            "            with lock:  # repro: lock[gc]\n"
            "                pass\n"
        )
        findings, _ = analyze_paths([module])
        assert [f.rule for f in findings] == ["REPRO001"]
        assert "'gc'" in findings[0].message


class TestRepoGate:
    def test_repo_is_clean(self):
        findings, _ = analyze_paths([PACKAGE])
        assert findings == [], [f.message for f in findings]

    def test_main_exits_zero_on_repo(self, capsys):
        assert main([]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_main_exits_nonzero_on_fixture(self, capsys):
        assert main([str(FIXTURES / "repro006_store.py"), "--no-baseline"]) == 1
        assert "REPRO006" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(
            [str(FIXTURES / "repro004_view.py"), "--format", "json",
             "--no-baseline"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "REPRO004"

    def test_baseline_accepts_known_findings(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "repro006_store.py")
        assert main([fixture, "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([fixture, "--baseline", str(baseline)]) == 0

    def test_checked_in_baseline_is_empty(self):
        baseline = PACKAGE / "analysis" / "baseline.json"
        assert json.loads(baseline.read_text()) == {"accepted": []}


class TestCliSubcommand:
    def test_graphcache_analyze_clean(self, capsys):
        assert cli_main(["analyze"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_graphcache_analyze_json_on_fixture(self, capsys):
        code = cli_main(
            ["analyze", str(FIXTURES / "repro005_shim.py"),
             "--format", "json", "--no-baseline"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "REPRO005"
