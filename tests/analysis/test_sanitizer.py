"""Tests for the runtime lock-order sanitizer (REPRO_LOCK_SANITIZER=1)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import runtime as rt


@pytest.fixture(autouse=True)
def sanitizer_on(monkeypatch):
    monkeypatch.setenv(rt.ENV_VAR, "1")
    rt._reset_for_tests()
    yield
    rt._reset_for_tests()


class TestRankAssertion:
    def test_out_of_rank_acquisition_raises(self):
        heap = rt.make_rlock("heap")
        gc = rt.make_rlock("gc")
        with heap:
            with pytest.raises(rt.LockRankError, match="rank"):
                gc.acquire()

    def test_increasing_ranks_are_allowed(self):
        gc = rt.make_rlock("gc")
        store = rt.make_rlock("store.cache")
        backend = rt.make_rlock("backend")
        with gc:
            with store:
                with backend:
                    pass

    def test_same_rank_sibling_is_rejected(self):
        shard_a = rt.make_rlock("gc")
        shard_b = rt.make_rlock("gc")
        with shard_a:
            with pytest.raises(rt.LockRankError):
                shard_b.acquire()

    def test_error_names_both_acquisition_sites(self):
        heap = rt.make_rlock("heap")
        gc = rt.make_rlock("gc")
        with heap:
            with pytest.raises(rt.LockRankError, match=r"test_sanitizer\.py"):
                gc.acquire()

    def test_held_stack_is_clean_after_violation(self):
        heap = rt.make_rlock("heap")
        gc = rt.make_rlock("gc")
        with heap:
            with pytest.raises(rt.LockRankError):
                gc.acquire()
        with gc:  # nothing held any more: must succeed
            with heap:
                pass


class TestReentrancy:
    def test_rlock_reacquire_is_allowed(self):
        gc = rt.make_rlock("gc")
        with gc:
            with gc:
                pass
        assert not gc.locked()

    def test_plain_lock_self_deadlock_is_reported(self):
        serial = rt.make_lock("serial")
        with serial:
            with pytest.raises(rt.LockRankError, match="self-deadlock"):
                serial.acquire()


class TestCycleDetection:
    def test_ab_ba_cycle_detected_single_threaded(self):
        a = rt.make_lock("fixture.cycle.a")
        b = rt.make_lock("fixture.cycle.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(rt.LockCycleError, match="potential deadlock"):
                a.acquire()

    def test_cross_thread_cycle_detected_without_deadlocking(self):
        a = rt.make_lock("fixture.xthread.a")
        b = rt.make_lock("fixture.xthread.b")

        def forward() -> None:
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()

        with b:
            with pytest.raises(rt.LockCycleError):
                a.acquire()

    def test_consistent_order_never_trips(self):
        a = rt.make_lock("fixture.order.a")
        b = rt.make_lock("fixture.order.b")
        for _ in range(3):
            with a:
                with b:
                    pass


class TestConditionIntegration:
    def test_condition_wait_notify_across_threads(self):
        cond = rt.make_condition("index.readers")
        ready = []

        def waiter() -> None:
            with cond:
                while not ready:
                    cond.wait(timeout=5)

        worker = threading.Thread(target=waiter)
        worker.start()
        with cond:
            ready.append(True)
            cond.notify_all()
        worker.join(timeout=5)
        assert not worker.is_alive()

    def test_condition_respects_rank_of_its_lock(self):
        write = rt.make_rlock("index.write")
        cond = rt.make_condition("index.readers")
        with write:  # rank 25 then 50: the publish-side pattern
            with cond:
                cond.notify_all()


class TestFactoryModes:
    def test_disabled_returns_raw_primitives(self, monkeypatch):
        monkeypatch.setenv(rt.ENV_VAR, "0")
        assert not isinstance(rt.make_lock("gc"), rt.SanitizedLock)
        assert not isinstance(rt.make_rlock("gc"), rt.SanitizedLock)

    def test_enabled_ranks_come_from_the_table(self):
        gc = rt.make_rlock("gc")
        heap = rt.make_rlock("heap")
        assert (gc.rank, heap.rank) == (0, 30)

    def test_explicit_rank_override(self):
        lock = rt.make_lock("fixture.custom", rank=7)
        assert lock.rank == 7

    def test_unranked_lock_skips_rank_check(self):
        custom = rt.make_lock("fixture.unranked")
        heap = rt.make_rlock("heap")
        with heap:
            with custom:  # no rank: only cycle detection applies
                pass
