"""CSR-native feature extraction: Counter identity against the decoded route.

The packed extractors (:func:`packed_path_features` /
:func:`packed_cycle_features`) must be *Counter-identical* to the decoded
reference extractors on every graph — same keys, same multiplicities — or
the sealed feature index silently diverges from the trie it replaces.  These
tests pin that identity with hypothesis over random labelled graphs (mixed
int/str label universes included, exercising the rank-based
canonicalisation), plus the dispatch contract of the public entry points and
the int-vs-str label regression through both extraction routes.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftv.features import (
    cycle_features,
    extract_label_cycles,
    extract_label_paths,
    label_rank_map,
    packed_cycle_features,
    packed_path_features,
    path_features,
)
from repro.ftv.ggsx import GraphGrepSX
from repro.ftv.grapes import Grapes
from repro.graphs.dataset import GraphDataset
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph, graph_constructions
from repro.graphs.packed import PackedGraphView

#: Mixed label universe: int labels, str labels, and a str/int collision
#: (``1`` vs ``"1"``) that must share a canonical key through every route.
MIXED_LABELS = [0, 1, "1", "C", "N", 7]


def _random_graph(seed: int) -> Graph:
    rng = random.Random(seed)
    order = rng.randint(1, 18)
    return random_connected_graph(order, rng.uniform(1.0, 3.0), MIXED_LABELS, rng)


class TestLabelRankMap:
    def test_ranks_follow_string_order(self):
        code_ranks, strings = label_rank_map(("N", "C", 1, "1"))
        assert strings == tuple(sorted({"N", "C", "1"}))
        # Rank comparison is order-equivalent to string comparison.
        assert [strings[rank] for rank in code_ranks] == ["N", "C", "1", "1"]

    def test_string_collisions_share_a_rank(self):
        code_ranks, _ = label_rank_map((1, "1"))
        assert code_ranks[0] == code_ranks[1]

    def test_memoised_on_table(self):
        assert label_rank_map(("C", "N")) is label_rank_map(("C", "N"))


class TestPackedPathIdentity:
    @given(seed=st.integers(0, 10_000), max_length=st.integers(0, 4))
    @settings(max_examples=150, deadline=None)
    def test_counter_identity_random_graphs(self, seed, max_length):
        graph = _random_graph(seed)
        decoded = extract_label_paths(graph, max_length)
        packed = packed_path_features(graph.to_packed(), max_length)
        assert packed == decoded

    @given(seed=st.integers(0, 10_000), max_size=st.integers(3, 6))
    @settings(max_examples=150, deadline=None)
    def test_cycle_counter_identity_random_graphs(self, seed, max_size):
        graph = _random_graph(seed)
        decoded = extract_label_cycles(graph, max_size)
        packed = packed_cycle_features(graph.to_packed(), max_size)
        assert packed == decoded

    @pytest.mark.parametrize(
        "graph",
        [
            Graph(labels=["C"], edges=()),
            Graph(labels=["C", "C"], edges=[(0, 1)]),
            Graph(labels=["C", "N", "O"], edges=[(0, 1), (1, 2), (0, 2)]),
            Graph(labels=[1, "1", 1], edges=[(0, 1), (1, 2), (0, 2)]),
        ],
        ids=["single", "edge", "triangle", "collision-triangle"],
    )
    def test_edge_cases(self, graph):
        for max_length in range(0, 4):
            assert packed_path_features(
                graph.to_packed(), max_length
            ) == extract_label_paths(graph, max_length)
        for max_size in range(3, 6):
            assert packed_cycle_features(
                graph.to_packed(), max_size
            ) == extract_label_cycles(graph, max_size)

    @given(seed=st.integers(0, 500), max_length=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_counter_identity_above_bitset_width(self, seed, max_length):
        # > 64 vertices: the frontier falls back from uint64 visited bitsets
        # to column comparisons against the stored path matrix.
        rng = random.Random(seed)
        graph = random_connected_graph(rng.randint(65, 90), 2.0, MIXED_LABELS, rng)
        assert packed_path_features(
            graph.to_packed(), max_length
        ) == extract_label_paths(graph, max_length)

    def test_degenerate_bounds(self):
        packed = _random_graph(3).to_packed()
        assert packed_path_features(packed, -1) == Counter()
        assert packed_cycle_features(packed, 2) == Counter()


class TestDispatch:
    def test_packed_input_skips_graph_decode(self):
        packed = _random_graph(5).to_packed()
        view = PackedGraphView(packed)
        before = graph_constructions()
        by_packed = path_features(packed, 3)
        by_view = path_features(view, 3)
        cycle_by_view = cycle_features(view, 5)
        assert graph_constructions() == before  # no Graph materialised
        graph = packed.to_graph()
        assert by_packed == by_view == extract_label_paths(graph, 3)
        assert cycle_by_view == extract_label_cycles(graph, 5)

    def test_plain_graph_takes_decoded_route(self):
        graph = _random_graph(6)
        assert path_features(graph, 3) == extract_label_paths(graph, 3)
        assert cycle_features(graph, 5) == extract_label_cycles(graph, 5)


class TestLabelCanonicalisationRegression:
    """Int-labelled and str-labelled datasets must filter identically.

    Regression for the label canonicalisation asymmetry: the decoded route
    reduces over ``str(label)`` while the packed route reduces over label
    ranks — the rank universe is *defined* by string order, so a dataset
    labelled ``[0, 1, 2]`` and its ``["0", "1", "2"]`` twin produce the
    same features, the same index and the same candidate sets through both
    extraction routes.
    """

    def _twin_datasets(self):
        rng = random.Random(11)
        int_graphs = [
            random_connected_graph(rng.randint(4, 10), 2.0, [0, 1, 2], rng)
            for _ in range(12)
        ]
        str_graphs = [
            Graph(
                labels=[str(label) for label in graph.labels],
                edges=graph.edges,
            )
            for graph in int_graphs
        ]
        return GraphDataset(int_graphs, name="ints"), GraphDataset(str_graphs, name="strs")

    @pytest.mark.parametrize("method_cls", [GraphGrepSX, Grapes])
    def test_candidate_sets_identical(self, method_cls):
        int_ds, str_ds = self._twin_datasets()
        int_method = method_cls(int_ds)
        str_method = method_cls(str_ds)
        rng = random.Random(23)
        queries = [
            random_connected_graph(rng.randint(2, 5), 1.5, [0, 1, 2], rng)
            for _ in range(10)
        ]
        for query in queries:
            str_query = Graph(
                labels=[str(label) for label in query.labels], edges=query.edges
            )
            assert int_method.candidates(query) == str_method.candidates(str_query)
            # Cross-labelled queries agree too: same canonical universe.
            assert int_method.candidates(str_query) == str_method.candidates(query)

    def test_feature_counters_identical_both_routes(self):
        int_ds, str_ds = self._twin_datasets()
        for int_graph, str_graph in zip(int_ds, str_ds, strict=True):
            decoded_int = extract_label_paths(int_graph, 3)
            decoded_str = extract_label_paths(str_graph, 3)
            packed_int = packed_path_features(int_graph.to_packed(), 3)
            packed_str = packed_path_features(str_graph.to_packed(), 3)
            assert decoded_int == decoded_str == packed_int == packed_str
